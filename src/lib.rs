//! Umbrella crate for the SC-DCNN reproduction workspace.
//!
//! This crate re-exports the workspace members so that the examples under
//! `examples/` and the integration tests under `tests/` can exercise the full
//! public API from a single dependency. Library users should depend on the
//! individual crates (`sc-core`, `sc-blocks`, `sc-hw`, `sc-nn`, `sc-dcnn`)
//! directly.

pub use sc_blocks as blocks;
pub use sc_core as core;
pub use sc_dcnn as dcnn;
pub use sc_hw as hw;
pub use sc_nn as nn;
pub use sc_serve as serve;
