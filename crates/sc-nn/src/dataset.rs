//! Deterministic synthetic MNIST-like digit dataset.
//!
//! The paper evaluates LeNet-5 on MNIST. The MNIST files are not
//! redistributable inside this repository and no network access is assumed,
//! so this module procedurally renders 28×28 grey-scale digits instead: each
//! class is drawn from a 7×5 seed glyph, scaled up, randomly translated,
//! thickness-jittered and corrupted with pixel noise. The generator is fully
//! deterministic for a given seed, which keeps every experiment reproducible.
//!
//! The substitution preserves what the experiments need: a 10-class image
//! classification task of the same input geometry, hard enough that accuracy
//! degrades when weights are quantized or stochastic-computing noise is
//! injected, yet learnable by LeNet-5 in a few epochs on a CPU.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Image side length (matching MNIST's 28×28).
pub const IMAGE_SIZE: usize = 28;

/// Number of digit classes.
pub const CLASSES: usize = 10;

/// 7×5 seed glyphs for the ten digits.
const GLYPHS: [[&str; 7]; 10] = [
    [
        "01110", "10001", "10011", "10101", "11001", "10001", "01110",
    ], // 0
    [
        "00100", "01100", "00100", "00100", "00100", "00100", "01110",
    ], // 1
    [
        "01110", "10001", "00001", "00110", "01000", "10000", "11111",
    ], // 2
    [
        "01110", "10001", "00001", "00110", "00001", "10001", "01110",
    ], // 3
    [
        "00010", "00110", "01010", "10010", "11111", "00010", "00010",
    ], // 4
    [
        "11111", "10000", "11110", "00001", "00001", "10001", "01110",
    ], // 5
    [
        "00110", "01000", "10000", "11110", "10001", "10001", "01110",
    ], // 6
    [
        "11111", "00001", "00010", "00100", "01000", "01000", "01000",
    ], // 7
    [
        "01110", "10001", "10001", "01110", "10001", "10001", "01110",
    ], // 8
    [
        "01110", "10001", "10001", "01111", "00001", "00010", "01100",
    ], // 9
];

/// A generated train/test split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticDigits {
    /// Training images, each a `(1, 28, 28)` tensor with values in `[0, 1]`.
    pub train_images: Vec<Tensor>,
    /// Training labels (0–9).
    pub train_labels: Vec<usize>,
    /// Test images.
    pub test_images: Vec<Tensor>,
    /// Test labels.
    pub test_labels: Vec<usize>,
}

impl SyntheticDigits {
    /// Generates a balanced dataset with `train_per_class` training samples
    /// per digit and one quarter as many test samples per digit.
    ///
    /// # Panics
    ///
    /// Panics if `train_per_class` is zero.
    pub fn generate(train_per_class: usize, seed: u64) -> Self {
        assert!(
            train_per_class > 0,
            "need at least one training sample per class"
        );
        let test_per_class = (train_per_class / 4).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train_images = Vec::new();
        let mut train_labels = Vec::new();
        let mut test_images = Vec::new();
        let mut test_labels = Vec::new();
        for digit in 0..CLASSES {
            for _ in 0..train_per_class {
                train_images.push(render_digit(digit, &mut rng));
                train_labels.push(digit);
            }
            for _ in 0..test_per_class {
                test_images.push(render_digit(digit, &mut rng));
                test_labels.push(digit);
            }
        }
        Self {
            train_images,
            train_labels,
            test_images,
            test_labels,
        }
    }

    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train_images.len()
    }

    /// Number of test samples.
    pub fn test_len(&self) -> usize {
        self.test_images.len()
    }
}

/// Renders one noisy digit image as a `(1, 28, 28)` tensor in `[0, 1]`.
pub fn render_digit(digit: usize, rng: &mut StdRng) -> Tensor {
    assert!(digit < CLASSES, "digit {digit} out of range");
    let glyph = &GLYPHS[digit];
    let mut image = Tensor::zeros(&[1, IMAGE_SIZE, IMAGE_SIZE]);
    // Random placement and per-sample stroke intensity.
    let scale: f32 = rng.gen_range(2.6..3.4);
    let offset_x: f32 = rng.gen_range(3.0..9.0);
    let offset_y: f32 = rng.gen_range(2.0..6.0);
    let intensity: f32 = rng.gen_range(0.75..1.0);
    let thickness: f32 = rng.gen_range(0.9..1.5);
    for y in 0..IMAGE_SIZE {
        for x in 0..IMAGE_SIZE {
            // Map the image pixel back into glyph coordinates.
            let gy = (y as f32 - offset_y) / scale;
            let gx = (x as f32 - offset_x) / scale;
            let mut value: f32 = 0.0;
            if gy >= -0.5 && gx >= -0.5 && gy < 7.5 && gx < 5.5 {
                // Soft-sample the glyph with a small neighbourhood so strokes
                // have anti-aliased edges whose width depends on `thickness`.
                for (dy, dx) in [(0.0, 0.0), (0.3, 0.0), (0.0, 0.3), (-0.3, 0.0), (0.0, -0.3)] {
                    let sy = (gy + dy * thickness).round();
                    let sx = (gx + dx * thickness).round();
                    if (0.0..7.0).contains(&sy) && (0.0..5.0).contains(&sx) {
                        let row = glyph[sy as usize].as_bytes();
                        if row[sx as usize] == b'1' {
                            value += 0.25;
                        }
                    }
                }
            }
            let noise: f32 = rng.gen_range(-0.06..0.06);
            *image.at3_mut(0, y, x) = (value.min(1.0) * intensity + noise).clamp(0.0, 1.0);
        }
    }
    image
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticDigits::generate(5, 42);
        let b = SyntheticDigits::generate(5, 42);
        assert_eq!(a.train_images[0].as_slice(), b.train_images[0].as_slice());
        assert_eq!(a.train_labels, b.train_labels);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticDigits::generate(2, 1);
        let b = SyntheticDigits::generate(2, 2);
        assert_ne!(a.train_images[0].as_slice(), b.train_images[0].as_slice());
    }

    #[test]
    fn dataset_is_balanced_and_sized() {
        let data = SyntheticDigits::generate(8, 3);
        assert_eq!(data.train_len(), 80);
        assert_eq!(data.test_len(), 20);
        for digit in 0..CLASSES {
            assert_eq!(data.train_labels.iter().filter(|&&l| l == digit).count(), 8);
            assert_eq!(data.test_labels.iter().filter(|&&l| l == digit).count(), 2);
        }
    }

    #[test]
    fn images_are_normalized_and_shaped() {
        let data = SyntheticDigits::generate(2, 9);
        for image in &data.train_images {
            assert_eq!(image.shape(), &[1, IMAGE_SIZE, IMAGE_SIZE]);
            assert!(image.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn digits_have_visible_strokes() {
        let mut rng = StdRng::seed_from_u64(5);
        for digit in 0..CLASSES {
            let image = render_digit(digit, &mut rng);
            let bright = image.as_slice().iter().filter(|&&v| v > 0.5).count();
            assert!(
                bright > 20,
                "digit {digit} renders only {bright} bright pixels"
            );
        }
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Average images of different digits should differ noticeably.
        let mut rng = StdRng::seed_from_u64(11);
        let zero = render_digit(0, &mut rng);
        let one = render_digit(1, &mut rng);
        let diff: f32 = zero
            .as_slice()
            .iter()
            .zip(one.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(
            diff > 10.0,
            "digits 0 and 1 are nearly identical (diff {diff})"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_digit_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = render_digit(10, &mut rng);
    }
}
