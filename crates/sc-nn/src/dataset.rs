//! Deterministic synthetic MNIST-like digit dataset.
//!
//! The paper evaluates LeNet-5 on MNIST. The MNIST files are not
//! redistributable inside this repository and no network access is assumed,
//! so this module procedurally renders 28×28 grey-scale digits instead: each
//! class is drawn from a 7×5 seed glyph, scaled up, randomly translated,
//! thickness-jittered and corrupted with pixel noise. The generator is fully
//! deterministic for a given seed, which keeps every experiment reproducible.
//!
//! The substitution preserves what the experiments need: a 10-class image
//! classification task of the same input geometry, hard enough that accuracy
//! degrades when weights are quantized or stochastic-computing noise is
//! injected, yet learnable by LeNet-5 in a few epochs on a CPU.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Image side length (matching MNIST's 28×28).
pub const IMAGE_SIZE: usize = 28;

/// Number of digit classes.
pub const CLASSES: usize = 10;

/// 7×5 seed glyphs for the ten digits.
const GLYPHS: [[&str; 7]; 10] = [
    [
        "01110", "10001", "10011", "10101", "11001", "10001", "01110",
    ], // 0
    [
        "00100", "01100", "00100", "00100", "00100", "00100", "01110",
    ], // 1
    [
        "01110", "10001", "00001", "00110", "01000", "10000", "11111",
    ], // 2
    [
        "01110", "10001", "00001", "00110", "00001", "10001", "01110",
    ], // 3
    [
        "00010", "00110", "01010", "10010", "11111", "00010", "00010",
    ], // 4
    [
        "11111", "10000", "11110", "00001", "00001", "10001", "01110",
    ], // 5
    [
        "00110", "01000", "10000", "11110", "10001", "10001", "01110",
    ], // 6
    [
        "11111", "00001", "00010", "00100", "01000", "01000", "01000",
    ], // 7
    [
        "01110", "10001", "10001", "01110", "10001", "10001", "01110",
    ], // 8
    [
        "01110", "10001", "10001", "01111", "00001", "00010", "01100",
    ], // 9
];

/// A generated train/test split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticDigits {
    /// Training images, each a `(1, 28, 28)` tensor with values in `[0, 1]`.
    pub train_images: Vec<Tensor>,
    /// Training labels (0–9).
    pub train_labels: Vec<usize>,
    /// Test images.
    pub test_images: Vec<Tensor>,
    /// Test labels.
    pub test_labels: Vec<usize>,
}

impl SyntheticDigits {
    /// Generates a balanced dataset with `train_per_class` training samples
    /// per digit and one quarter as many test samples per digit.
    ///
    /// # Panics
    ///
    /// Panics if `train_per_class` is zero.
    pub fn generate(train_per_class: usize, seed: u64) -> Self {
        assert!(
            train_per_class > 0,
            "need at least one training sample per class"
        );
        let test_per_class = (train_per_class / 4).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train_images = Vec::new();
        let mut train_labels = Vec::new();
        let mut test_images = Vec::new();
        let mut test_labels = Vec::new();
        for digit in 0..CLASSES {
            for _ in 0..train_per_class {
                train_images.push(render_digit(digit, &mut rng));
                train_labels.push(digit);
            }
            for _ in 0..test_per_class {
                test_images.push(render_digit(digit, &mut rng));
                test_labels.push(digit);
            }
        }
        Self {
            train_images,
            train_labels,
            test_images,
            test_labels,
        }
    }

    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train_images.len()
    }

    /// Number of test samples.
    pub fn test_len(&self) -> usize {
        self.test_images.len()
    }

    /// Loads the real MNIST dataset from `SC_MNIST_DIR` when the `mnist`
    /// feature is enabled and the IDX files are present, otherwise generates
    /// the synthetic dataset (always the case without the feature).
    ///
    /// The MNIST split is truncated to `train_per_class` training and
    /// `max(train_per_class / 4, 1)` test samples per class so the two
    /// sources are interchangeable in experiments.
    ///
    /// # Panics
    ///
    /// Panics if `train_per_class` is zero.
    pub fn load_or_generate(train_per_class: usize, seed: u64) -> Self {
        #[cfg(feature = "mnist")]
        {
            if let Some(dir) = std::env::var_os("SC_MNIST_DIR") {
                match mnist::load_from_dir(std::path::Path::new(&dir), train_per_class) {
                    Ok(data) => return data,
                    Err(error) => {
                        eprintln!(
                            "SC_MNIST_DIR set but MNIST load failed ({error}); \
                             falling back to SyntheticDigits"
                        );
                    }
                }
            }
        }
        Self::generate(train_per_class, seed)
    }
}

/// Loader for the real MNIST IDX files (enabled by the `mnist` feature).
///
/// Parses the classic `train-images-idx3-ubyte` / `train-labels-idx1-ubyte`
/// (and `t10k-…`) files with plain `std` I/O — no decompression, no network
/// access. Pixels are normalized to `[0, 1]` and shaped `(1, 28, 28)`, so
/// the loaded dataset is a drop-in replacement for [`SyntheticDigits`].
#[cfg(feature = "mnist")]
pub mod mnist {
    use super::{SyntheticDigits, CLASSES};
    use crate::tensor::Tensor;
    use std::io::{self, Read};
    use std::path::Path;

    /// IDX magic for unsigned-byte rank-3 image files.
    const IMAGES_MAGIC: u32 = 0x0000_0803;
    /// IDX magic for unsigned-byte rank-1 label files.
    const LABELS_MAGIC: u32 = 0x0000_0801;

    fn read_u32(reader: &mut impl Read) -> io::Result<u32> {
        let mut buf = [0u8; 4];
        reader.read_exact(&mut buf)?;
        Ok(u32::from_be_bytes(buf))
    }

    fn bad_data(message: String) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, message)
    }

    /// Parses an IDX image file into `(1, rows, cols)` tensors in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error for unreadable files and `InvalidData` for a
    /// wrong magic or a truncated payload.
    pub fn read_idx_images(path: &Path) -> io::Result<Vec<Tensor>> {
        let mut reader = io::BufReader::new(std::fs::File::open(path)?);
        let magic = read_u32(&mut reader)?;
        if magic != IMAGES_MAGIC {
            return Err(bad_data(format!(
                "{}: image magic {magic:#010x}, expected {IMAGES_MAGIC:#010x}",
                path.display()
            )));
        }
        let count = read_u32(&mut reader)? as usize;
        let rows = read_u32(&mut reader)? as usize;
        let cols = read_u32(&mut reader)? as usize;
        let mut pixels = vec![0u8; rows * cols];
        let mut images = Vec::with_capacity(count);
        for _ in 0..count {
            reader.read_exact(&mut pixels)?;
            let data: Vec<f32> = pixels.iter().map(|&p| f32::from(p) / 255.0).collect();
            images.push(Tensor::from_vec(data, &[1, rows, cols]));
        }
        Ok(images)
    }

    /// Parses an IDX label file into class indices.
    ///
    /// # Errors
    ///
    /// Returns an I/O error for unreadable files and `InvalidData` for a
    /// wrong magic, a truncated payload, or an out-of-range label.
    pub fn read_idx_labels(path: &Path) -> io::Result<Vec<usize>> {
        let mut reader = io::BufReader::new(std::fs::File::open(path)?);
        let magic = read_u32(&mut reader)?;
        if magic != LABELS_MAGIC {
            return Err(bad_data(format!(
                "{}: label magic {magic:#010x}, expected {LABELS_MAGIC:#010x}",
                path.display()
            )));
        }
        let count = read_u32(&mut reader)? as usize;
        let mut bytes = vec![0u8; count];
        reader.read_exact(&mut bytes)?;
        bytes
            .into_iter()
            .map(|label| {
                let label = label as usize;
                if label < CLASSES {
                    Ok(label)
                } else {
                    Err(bad_data(format!("label {label} out of range")))
                }
            })
            .collect()
    }

    /// Takes a class-balanced prefix of `per_class` samples per digit.
    fn balanced_subset(
        images: &[Tensor],
        labels: &[usize],
        per_class: usize,
    ) -> (Vec<Tensor>, Vec<usize>) {
        let mut taken = [0usize; CLASSES];
        let mut out_images = Vec::with_capacity(per_class * CLASSES);
        let mut out_labels = Vec::with_capacity(per_class * CLASSES);
        for (image, &label) in images.iter().zip(labels.iter()) {
            if taken[label] < per_class {
                taken[label] += 1;
                out_images.push(image.clone());
                out_labels.push(label);
            }
        }
        (out_images, out_labels)
    }

    /// Loads MNIST from a directory holding the four classic IDX files and
    /// truncates it to a class-balanced split matching
    /// [`SyntheticDigits::generate`]'s sizing.
    ///
    /// # Errors
    ///
    /// Returns an error if any file is missing or malformed, or if
    /// image/label counts disagree.
    pub fn load_from_dir(dir: &Path, train_per_class: usize) -> io::Result<SyntheticDigits> {
        let train_images = read_idx_images(&dir.join("train-images-idx3-ubyte"))?;
        let train_labels = read_idx_labels(&dir.join("train-labels-idx1-ubyte"))?;
        let test_images = read_idx_images(&dir.join("t10k-images-idx3-ubyte"))?;
        let test_labels = read_idx_labels(&dir.join("t10k-labels-idx1-ubyte"))?;
        if train_images.len() != train_labels.len() || test_images.len() != test_labels.len() {
            return Err(bad_data(format!(
                "image/label count mismatch: {}/{} train, {}/{} test",
                train_images.len(),
                train_labels.len(),
                test_images.len(),
                test_labels.len()
            )));
        }
        let test_per_class = (train_per_class / 4).max(1);
        let (train_images, train_labels) =
            balanced_subset(&train_images, &train_labels, train_per_class);
        let (test_images, test_labels) =
            balanced_subset(&test_images, &test_labels, test_per_class);
        Ok(SyntheticDigits {
            train_images,
            train_labels,
            test_images,
            test_labels,
        })
    }
}

/// Renders one noisy digit image as a `(1, 28, 28)` tensor in `[0, 1]`.
pub fn render_digit(digit: usize, rng: &mut StdRng) -> Tensor {
    assert!(digit < CLASSES, "digit {digit} out of range");
    let glyph = &GLYPHS[digit];
    let mut image = Tensor::zeros(&[1, IMAGE_SIZE, IMAGE_SIZE]);
    // Random placement and per-sample stroke intensity.
    let scale: f32 = rng.gen_range(2.6..3.4);
    let offset_x: f32 = rng.gen_range(3.0..9.0);
    let offset_y: f32 = rng.gen_range(2.0..6.0);
    let intensity: f32 = rng.gen_range(0.75..1.0);
    let thickness: f32 = rng.gen_range(0.9..1.5);
    for y in 0..IMAGE_SIZE {
        for x in 0..IMAGE_SIZE {
            // Map the image pixel back into glyph coordinates.
            let gy = (y as f32 - offset_y) / scale;
            let gx = (x as f32 - offset_x) / scale;
            let mut value: f32 = 0.0;
            if gy >= -0.5 && gx >= -0.5 && gy < 7.5 && gx < 5.5 {
                // Soft-sample the glyph with a small neighbourhood so strokes
                // have anti-aliased edges whose width depends on `thickness`.
                for (dy, dx) in [(0.0, 0.0), (0.3, 0.0), (0.0, 0.3), (-0.3, 0.0), (0.0, -0.3)] {
                    let sy = (gy + dy * thickness).round();
                    let sx = (gx + dx * thickness).round();
                    if (0.0..7.0).contains(&sy) && (0.0..5.0).contains(&sx) {
                        let row = glyph[sy as usize].as_bytes();
                        if row[sx as usize] == b'1' {
                            value += 0.25;
                        }
                    }
                }
            }
            let noise: f32 = rng.gen_range(-0.06..0.06);
            *image.at3_mut(0, y, x) = (value.min(1.0) * intensity + noise).clamp(0.0, 1.0);
        }
    }
    image
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticDigits::generate(5, 42);
        let b = SyntheticDigits::generate(5, 42);
        assert_eq!(a.train_images[0].as_slice(), b.train_images[0].as_slice());
        assert_eq!(a.train_labels, b.train_labels);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticDigits::generate(2, 1);
        let b = SyntheticDigits::generate(2, 2);
        assert_ne!(a.train_images[0].as_slice(), b.train_images[0].as_slice());
    }

    #[test]
    fn dataset_is_balanced_and_sized() {
        let data = SyntheticDigits::generate(8, 3);
        assert_eq!(data.train_len(), 80);
        assert_eq!(data.test_len(), 20);
        for digit in 0..CLASSES {
            assert_eq!(data.train_labels.iter().filter(|&&l| l == digit).count(), 8);
            assert_eq!(data.test_labels.iter().filter(|&&l| l == digit).count(), 2);
        }
    }

    #[test]
    fn images_are_normalized_and_shaped() {
        let data = SyntheticDigits::generate(2, 9);
        for image in &data.train_images {
            assert_eq!(image.shape(), &[1, IMAGE_SIZE, IMAGE_SIZE]);
            assert!(image.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn digits_have_visible_strokes() {
        let mut rng = StdRng::seed_from_u64(5);
        for digit in 0..CLASSES {
            let image = render_digit(digit, &mut rng);
            let bright = image.as_slice().iter().filter(|&&v| v > 0.5).count();
            assert!(
                bright > 20,
                "digit {digit} renders only {bright} bright pixels"
            );
        }
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Average images of different digits should differ noticeably.
        let mut rng = StdRng::seed_from_u64(11);
        let zero = render_digit(0, &mut rng);
        let one = render_digit(1, &mut rng);
        let diff: f32 = zero
            .as_slice()
            .iter()
            .zip(one.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(
            diff > 10.0,
            "digits 0 and 1 are nearly identical (diff {diff})"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_digit_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = render_digit(10, &mut rng);
    }

    #[test]
    fn load_or_generate_falls_back_to_synthetic() {
        // Without SC_MNIST_DIR (or without the feature) this must be the
        // synthetic generator, bit-for-bit.
        let loaded = SyntheticDigits::load_or_generate(3, 42);
        let generated = SyntheticDigits::generate(3, 42);
        assert_eq!(
            loaded.train_images[0].as_slice(),
            generated.train_images[0].as_slice()
        );
        assert_eq!(loaded.train_labels, generated.train_labels);
    }
}

#[cfg(all(test, feature = "mnist"))]
mod mnist_tests {
    use super::mnist::{load_from_dir, read_idx_images, read_idx_labels};
    use super::*;
    use std::io::Write;
    use std::path::PathBuf;

    /// Writes a minimal IDX pair (images + labels) and returns the dir.
    fn write_fixture(name: &str, samples_per_class: usize) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sc-mnist-fixture-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (images_name, labels_name) in [
            ("train-images-idx3-ubyte", "train-labels-idx1-ubyte"),
            ("t10k-images-idx3-ubyte", "t10k-labels-idx1-ubyte"),
        ] {
            let count = samples_per_class * CLASSES;
            let mut images = std::fs::File::create(dir.join(images_name)).unwrap();
            images.write_all(&0x0000_0803u32.to_be_bytes()).unwrap();
            images.write_all(&(count as u32).to_be_bytes()).unwrap();
            images.write_all(&28u32.to_be_bytes()).unwrap();
            images.write_all(&28u32.to_be_bytes()).unwrap();
            let mut labels = std::fs::File::create(dir.join(labels_name)).unwrap();
            labels.write_all(&0x0000_0801u32.to_be_bytes()).unwrap();
            labels.write_all(&(count as u32).to_be_bytes()).unwrap();
            for sample in 0..count {
                let digit = (sample % CLASSES) as u8;
                // Constant plane whose intensity encodes the digit, so the
                // parsed pixel values are checkable.
                images.write_all(&[digit * 20; 28 * 28]).unwrap();
                labels.write_all(&[digit]).unwrap();
            }
        }
        dir
    }

    #[test]
    fn idx_round_trip_parses_shapes_and_values() {
        let dir = write_fixture("roundtrip", 2);
        let images = read_idx_images(&dir.join("train-images-idx3-ubyte")).unwrap();
        let labels = read_idx_labels(&dir.join("train-labels-idx1-ubyte")).unwrap();
        assert_eq!(images.len(), 20);
        assert_eq!(labels[..3], [0, 1, 2]);
        assert_eq!(images[0].shape(), &[1, 28, 28]);
        assert!((images[3].as_slice()[0] - 60.0 / 255.0).abs() < 1e-6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_from_dir_produces_balanced_split() {
        let dir = write_fixture("balanced", 5);
        let data = load_from_dir(&dir, 4).unwrap();
        assert_eq!(data.train_len(), 40);
        assert_eq!(data.test_len(), 10);
        for digit in 0..CLASSES {
            assert_eq!(data.train_labels.iter().filter(|&&l| l == digit).count(), 4);
            assert_eq!(data.test_labels.iter().filter(|&&l| l == digit).count(), 1);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let dir = write_fixture("magic", 1);
        // Labels parsed as images must fail on the magic number.
        assert!(read_idx_images(&dir.join("train-labels-idx1-ubyte")).is_err());
        assert!(read_idx_labels(&dir.join("train-images-idx3-ubyte")).is_err());
        assert!(load_from_dir(&dir.join("missing"), 1).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
