//! Sequential network container with SGD training.

use crate::layers::Layer;
use crate::loss::softmax_cross_entropy;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Options controlling [`Network::train`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingOptions {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Shuffle seed (training is deterministic for a fixed seed).
    pub shuffle_seed: u64,
    /// Learning-rate decay applied after each epoch (multiplicative).
    pub learning_rate_decay: f32,
}

impl Default for TrainingOptions {
    fn default() -> Self {
        Self {
            epochs: 3,
            learning_rate: 0.05,
            shuffle_seed: 7,
            learning_rate_decay: 0.85,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean cross-entropy loss over the epoch.
    pub mean_loss: f32,
    /// Training error rate over the epoch (fraction misclassified).
    pub error_rate: f32,
}

/// A sequential stack of layers trained with plain SGD.
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
    name: String,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let layer_names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Network")
            .field("name", &self.name)
            .field("layers", &layer_names)
            .finish()
    }
}

impl Network {
    /// Creates an empty network with a descriptive name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            layers: Vec::new(),
            name: name.into(),
        }
    }

    /// Appends a layer to the network.
    pub fn push(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Access to the layers (for inspection and weight extraction).
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to the layers (for quantization and error injection).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.parameter_count()).sum()
    }

    /// Runs a forward pass, returning the output logits.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut current = input.clone();
        for layer in &mut self.layers {
            current = layer.forward(&current);
        }
        current
    }

    /// Predicts the class of a single input.
    pub fn predict(&mut self, input: &Tensor) -> usize {
        self.forward(input).argmax()
    }

    /// Trains the network with SGD and returns per-epoch statistics.
    ///
    /// # Panics
    ///
    /// Panics if `images` and `labels` have different lengths or are empty.
    pub fn train(
        &mut self,
        images: &[Tensor],
        labels: &[usize],
        options: &TrainingOptions,
    ) -> Vec<EpochStats> {
        assert_eq!(images.len(), labels.len(), "each image needs a label");
        assert!(!images.is_empty(), "training set is empty");
        let mut order: Vec<usize> = (0..images.len()).collect();
        let mut rng = StdRng::seed_from_u64(options.shuffle_seed);
        let mut stats = Vec::with_capacity(options.epochs);
        let mut learning_rate = options.learning_rate;
        for epoch in 0..options.epochs {
            order.shuffle(&mut rng);
            let mut total_loss = 0.0;
            let mut errors = 0usize;
            for &index in &order {
                let logits = self.forward(&images[index]);
                if logits.argmax() != labels[index] {
                    errors += 1;
                }
                let (loss, grad) = softmax_cross_entropy(&logits, labels[index]);
                total_loss += loss;
                let mut grad = grad;
                for layer in self.layers.iter_mut().rev() {
                    grad = layer.backward(&grad);
                }
                for layer in &mut self.layers {
                    layer.apply_gradients(learning_rate);
                }
            }
            stats.push(EpochStats {
                epoch,
                mean_loss: total_loss / images.len() as f32,
                error_rate: errors as f32 / images.len() as f32,
            });
            learning_rate *= options.learning_rate_decay;
        }
        stats
    }

    /// Classification error rate (fraction misclassified) over a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `images` and `labels` have different lengths or are empty.
    pub fn error_rate(&mut self, images: &[Tensor], labels: &[usize]) -> f64 {
        assert_eq!(images.len(), labels.len(), "each image needs a label");
        assert!(!images.is_empty(), "evaluation set is empty");
        let errors = images
            .iter()
            .zip(labels.iter())
            .filter(|(image, &label)| self.predict(image) != label)
            .count();
        errors as f64 / images.len() as f64
    }

    /// Extracts a clone of every parameterized layer's weights, in layer
    /// order (used by the SC mapping and the weight-storage experiments).
    pub fn weight_snapshots(&self) -> Vec<Tensor> {
        self.layers
            .iter()
            .filter_map(|l| l.weights().cloned())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Tanh};

    fn xor_network() -> Network {
        let mut network = Network::new("xor");
        network.push(Box::new(Dense::new(2, 8, 1)));
        network.push(Box::new(Tanh::new()));
        network.push(Box::new(Dense::new(8, 2, 2)));
        network
    }

    fn xor_data() -> (Vec<Tensor>, Vec<usize>) {
        let images = vec![
            Tensor::from_vec(vec![0.0, 0.0], &[2]),
            Tensor::from_vec(vec![0.0, 1.0], &[2]),
            Tensor::from_vec(vec![1.0, 0.0], &[2]),
            Tensor::from_vec(vec![1.0, 1.0], &[2]),
        ];
        let labels = vec![0, 1, 1, 0];
        (images, labels)
    }

    #[test]
    fn network_learns_xor() {
        let mut network = xor_network();
        let (images, labels) = xor_data();
        let options = TrainingOptions {
            epochs: 400,
            learning_rate: 0.1,
            shuffle_seed: 3,
            learning_rate_decay: 1.0,
        };
        let stats = network.train(&images, &labels, &options);
        assert_eq!(stats.len(), 400);
        assert!(stats.last().unwrap().mean_loss < stats.first().unwrap().mean_loss);
        assert_eq!(
            network.error_rate(&images, &labels),
            0.0,
            "XOR should be learned exactly"
        );
    }

    #[test]
    fn parameter_count_sums_layers() {
        let network = xor_network();
        assert_eq!(network.parameter_count(), (2 * 8 + 8) + (8 * 2 + 2));
        assert_eq!(network.layer_count(), 3);
        assert_eq!(network.name(), "xor");
    }

    #[test]
    fn weight_snapshots_skip_parameterless_layers() {
        let network = xor_network();
        assert_eq!(network.weight_snapshots().len(), 2);
    }

    #[test]
    fn debug_output_lists_layers() {
        let network = xor_network();
        let text = format!("{network:?}");
        assert!(text.contains("dense") && text.contains("tanh"));
    }

    #[test]
    #[should_panic(expected = "training set is empty")]
    fn empty_training_set_panics() {
        let mut network = xor_network();
        let _ = network.train(&[], &[], &TrainingOptions::default());
    }

    #[test]
    fn parallel_backward_is_bit_identical_to_serial() {
        use crate::dataset::SyntheticDigits;
        use crate::lenet::tiny_lenet;

        let data = SyntheticDigits::generate(2, 31);
        let options = TrainingOptions {
            epochs: 1,
            learning_rate: 0.08,
            shuffle_seed: 5,
            learning_rate_decay: 1.0,
        };
        let train = |threads: usize| {
            sc_core::parallel::set_thread_limit(threads);
            let mut network = tiny_lenet(9);
            let stats = network.train(&data.train_images, &data.train_labels, &options);
            sc_core::parallel::set_thread_limit(0);
            (network.weight_snapshots(), stats)
        };
        let (serial_weights, serial_stats) = train(1);
        let (parallel_weights, parallel_stats) = train(8);
        assert_eq!(serial_stats, parallel_stats);
        for (layer, (a, b)) in serial_weights
            .iter()
            .zip(parallel_weights.iter())
            .enumerate()
        {
            assert_eq!(
                a.as_slice(),
                b.as_slice(),
                "layer {layer} weights diverge between serial and parallel training"
            );
        }
    }
}
