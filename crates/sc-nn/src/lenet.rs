//! LeNet-5 network builders.
//!
//! The paper evaluates the widely-used LeNet-5 structure with configuration
//! 784-11520-2880-3200-800-500-10: a 28×28 input, a 20-filter 5×5
//! convolution (→ 20×24×24 = 11520), 2×2 pooling (→ 2880), a 50-filter 5×5
//! convolution (→ 50×8×8 = 3200), 2×2 pooling (→ 800), a 500-unit
//! fully-connected layer and a 10-way output layer. Pooling is either max or
//! average; the activation is tanh throughout (Section 6.3).

use crate::layers::{AvgPool2, Conv2d, Dense, MaxPool2, Tanh};
use crate::network::Network;
use serde::{Deserialize, Serialize};

/// Pooling strategy used by a LeNet-5 instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolingStyle {
    /// Max pooling (baseline software error rate 1.53 % in the paper).
    Max,
    /// Average pooling (baseline software error rate 2.24 % in the paper).
    Average,
}

impl PoolingStyle {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            PoolingStyle::Max => "max",
            PoolingStyle::Average => "average",
        }
    }
}

/// Per-layer structural description of LeNet-5 used by the cost model and
/// the SC mapping (receptive-field sizes and unit counts per paper layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LenetLayerShape {
    /// Paper-style layer index (Layer0 = conv1+pool1, Layer1 = conv2+pool2,
    /// Layer2 = fully connected).
    pub index: usize,
    /// Number of feature-extraction blocks / neurons operating in parallel.
    pub unit_count: usize,
    /// Receptive-field size per inner product.
    pub input_size: usize,
    /// Whether the layer pools four inner products per unit.
    pub has_pooling: bool,
    /// Number of trainable weights in the layer.
    pub weight_count: usize,
    /// Number of distinct input signals entering the layer.
    pub input_count: usize,
}

/// The paper's LeNet-5 structural parameters (20 and 50 convolution filters,
/// 500 hidden units, 10 classes).
pub const CONV1_FILTERS: usize = 20;
/// Second convolution's filter count.
pub const CONV2_FILTERS: usize = 50;
/// Hidden fully-connected layer width.
pub const HIDDEN_UNITS: usize = 500;
/// Number of output classes.
pub const OUTPUT_CLASSES: usize = 10;

/// Builds the full LeNet-5 the paper evaluates.
///
/// Layer structure: conv(1→20, 5×5) → pool → tanh → conv(20→50, 5×5) → pool
/// → tanh → dense(800→500) → tanh → dense(500→10).
pub fn lenet5(pooling: PoolingStyle, seed: u64) -> Network {
    build_lenet(
        CONV1_FILTERS,
        CONV2_FILTERS,
        HIDDEN_UNITS,
        pooling,
        seed,
        "lenet5",
    )
}

/// A reduced LeNet (8/16 filters, 64 hidden units) with the same topology,
/// used by tests and quick experiments where full LeNet-5 training time is
/// not warranted.
pub fn tiny_lenet(seed: u64) -> Network {
    build_lenet(8, 16, 64, PoolingStyle::Max, seed, "tiny-lenet")
}

fn build_lenet(
    conv1: usize,
    conv2: usize,
    hidden: usize,
    pooling: PoolingStyle,
    seed: u64,
    name: &str,
) -> Network {
    let mut network = Network::new(name);
    network.push(Box::new(Conv2d::new(1, conv1, 5, seed)));
    push_pool(&mut network, pooling);
    network.push(Box::new(Tanh::new()));
    network.push(Box::new(Conv2d::new(conv1, conv2, 5, seed.wrapping_add(1))));
    push_pool(&mut network, pooling);
    network.push(Box::new(Tanh::new()));
    network.push(Box::new(Dense::new(
        conv2 * 4 * 4,
        hidden,
        seed.wrapping_add(2),
    )));
    network.push(Box::new(Tanh::new()));
    network.push(Box::new(Dense::new(
        hidden,
        OUTPUT_CLASSES,
        seed.wrapping_add(3),
    )));
    network
}

fn push_pool(network: &mut Network, pooling: PoolingStyle) {
    match pooling {
        PoolingStyle::Max => network.push(Box::new(MaxPool2::new())),
        PoolingStyle::Average => network.push(Box::new(AvgPool2::new())),
    };
}

/// The paper-style three-layer structural breakdown of the full LeNet-5
/// (Layer0 = conv1+pool1, Layer1 = conv2+pool2, Layer2 = fully connected
/// including the output layer).
pub fn lenet5_layer_shapes() -> Vec<LenetLayerShape> {
    vec![
        LenetLayerShape {
            index: 0,
            // 20 feature maps of 12x12 pooled outputs.
            unit_count: CONV1_FILTERS * 12 * 12,
            input_size: 25,
            has_pooling: true,
            weight_count: CONV1_FILTERS * 25,
            input_count: 28 * 28,
        },
        LenetLayerShape {
            index: 1,
            // 50 feature maps of 4x4 pooled outputs.
            unit_count: CONV2_FILTERS * 4 * 4,
            input_size: 25 * CONV1_FILTERS,
            has_pooling: true,
            weight_count: CONV2_FILTERS * CONV1_FILTERS * 25,
            input_count: CONV1_FILTERS * 12 * 12,
        },
        LenetLayerShape {
            index: 2,
            unit_count: HIDDEN_UNITS + OUTPUT_CLASSES,
            input_size: CONV2_FILTERS * 4 * 4,
            has_pooling: false,
            weight_count: CONV2_FILTERS * 4 * 4 * HIDDEN_UNITS + HIDDEN_UNITS * OUTPUT_CLASSES,
            input_count: CONV2_FILTERS * 4 * 4,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticDigits;
    use crate::network::TrainingOptions;
    use crate::tensor::Tensor;

    #[test]
    fn lenet5_has_the_paper_configuration() {
        let mut network = lenet5(PoolingStyle::Max, 1);
        // 784-11520-2880-3200-800-500-10: check the characteristic sizes by
        // walking a forward pass shape-wise.
        let input = Tensor::zeros(&[1, 28, 28]);
        let output = network.forward(&input);
        assert_eq!(output.len(), OUTPUT_CLASSES);
        // conv1 (20·24·24) + bias, conv2, fc1 (800·500), fc2 (500·10).
        let expected_parameters =
            (20 * 25 + 20) + (50 * 20 * 25 + 50) + (800 * 500 + 500) + (500 * 10 + 10);
        assert_eq!(network.parameter_count(), expected_parameters);
    }

    #[test]
    fn both_pooling_styles_build() {
        for pooling in [PoolingStyle::Max, PoolingStyle::Average] {
            let mut network = lenet5(pooling, 2);
            let output = network.forward(&Tensor::zeros(&[1, 28, 28]));
            assert_eq!(output.len(), 10);
            assert!(!pooling.name().is_empty());
        }
    }

    #[test]
    fn layer_shapes_match_paper_configuration() {
        let shapes = lenet5_layer_shapes();
        assert_eq!(shapes.len(), 3);
        // 11520 conv outputs pool down to 2880 feature extraction blocks.
        assert_eq!(shapes[0].unit_count, 2880);
        // 3200 conv outputs pool down to 800.
        assert_eq!(shapes[1].unit_count, 800);
        assert_eq!(shapes[2].input_size, 800);
        let total_weights: usize = shapes.iter().map(|s| s.weight_count).sum();
        assert_eq!(total_weights, 500 + 25_000 + 400_000 + 5_000);
    }

    #[test]
    fn tiny_lenet_learns_synthetic_digits() {
        let data = SyntheticDigits::generate(12, 3);
        let mut network = tiny_lenet(5);
        let options = TrainingOptions {
            epochs: 4,
            learning_rate: 0.08,
            shuffle_seed: 1,
            learning_rate_decay: 0.9,
        };
        let stats = network.train(&data.train_images, &data.train_labels, &options);
        assert!(stats.last().unwrap().error_rate < stats.first().unwrap().error_rate * 1.01);
        let error = network.error_rate(&data.test_images, &data.test_labels);
        assert!(
            error < 0.6,
            "tiny LeNet should beat chance by a wide margin, got {error}"
        );
    }
}
