//! A dense row-major tensor.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major, `f32` tensor with an explicit shape.
///
/// Shapes follow the `(channels, height, width)` convention for feature maps
/// and `(outputs, inputs)` for fully-connected weight matrices.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a zero-filled tensor with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "tensor shape cannot be empty");
        assert!(
            shape.iter().all(|&d| d > 0),
            "tensor dimensions must be non-zero"
        );
        Self {
            data: vec![0.0; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if the data length does not match the shape's element count.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length must match the shape"
        );
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor filled with values drawn from `f(index)`.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let mut tensor = Self::zeros(shape);
        for (i, value) in tensor.data.iter_mut().enumerate() {
            *value = f(i);
        }
        tensor
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(self.data.clone(), shape)
    }

    /// Element at a `(channel, row, column)` coordinate of a 3-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 3-D or the coordinate is out of range.
    pub fn at3(&self, c: usize, y: usize, x: usize) -> f32 {
        let (channels, height, width) = self.dims3();
        assert!(
            c < channels && y < height && x < width,
            "index out of range"
        );
        self.data[(c * height + y) * width + x]
    }

    /// Mutable element access for a 3-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 3-D or the coordinate is out of range.
    pub fn at3_mut(&mut self, c: usize, y: usize, x: usize) -> &mut f32 {
        let (channels, height, width) = self.dims3();
        assert!(
            c < channels && y < height && x < width,
            "index out of range"
        );
        &mut self.data[(c * height + y) * width + x]
    }

    /// The `(channels, height, width)` dimensions of a 3-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 3-D.
    pub fn dims3(&self) -> (usize, usize, usize) {
        assert_eq!(
            self.shape.len(),
            3,
            "expected a 3-D tensor, got shape {:?}",
            self.shape
        );
        (self.shape[0], self.shape[1], self.shape[2])
    }

    /// Index of the largest element (ties resolved to the first).
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// The largest absolute value in the tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |acc, v| acc.max(v.abs()))
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Applies a function to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&v| f(v)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Adds another tensor element-wise in place.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Scales every element in place.
    pub fn scale(&mut self, factor: f32) {
        for value in &mut self.data {
            *value *= factor;
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}, len={})", self.shape, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shapes() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.dims3(), (2, 3, 4));
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = Tensor::zeros(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "match the shape")]
    fn from_vec_validates_length() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros(&[2, 3, 3]);
        *t.at3_mut(1, 2, 0) = 5.0;
        assert_eq!(t.at3(1, 2, 0), 5.0);
        assert_eq!(t.at3(0, 0, 0), 0.0);
    }

    #[test]
    fn argmax_and_max_abs() {
        let t = Tensor::from_vec(vec![0.5, -2.0, 1.5], &[3]);
        assert_eq!(t.argmax(), 2);
        assert_eq!(t.max_abs(), 2.0);
    }

    #[test]
    fn map_and_scale_and_add() {
        let mut t = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let doubled = t.map(|v| v * 2.0);
        assert_eq!(doubled.as_slice(), &[2.0, 4.0]);
        t.scale(3.0);
        assert_eq!(t.as_slice(), &[3.0, 6.0]);
        t.add_assign(&doubled);
        assert_eq!(t.as_slice(), &[5.0, 10.0]);
        assert!((t.mean() - 7.5).abs() < 1e-6);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]);
        let r = t.reshaped(&[2, 2]);
        assert_eq!(r.shape(), &[2, 2]);
        assert_eq!(r.as_slice(), t.as_slice());
    }

    #[test]
    fn from_fn_fills_by_index() {
        let t = Tensor::from_fn(&[3], |i| i as f32);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0]);
    }
}
