//! # sc-nn
//!
//! A from-scratch convolutional neural network substrate.
//!
//! The SC-DCNN paper maps a *software-trained* LeNet-5 onto stochastic
//! computing hardware. This crate is that software side: a small,
//! dependency-free CNN framework with
//!
//! * [`tensor`] — a dense row-major tensor with shape tracking,
//! * [`layers`] — convolution, pooling (average/max), fully-connected and
//!   tanh activation layers, each with forward and backward passes,
//! * [`network`] — a sequential container with SGD training,
//! * [`lenet`] — builders for the LeNet-5 structure the paper evaluates
//!   (784-11520-2880-3200-800-500-10) and a reduced variant for fast tests,
//! * [`dataset`] — a deterministic synthetic MNIST-like digit generator
//!   (MNIST itself is not redistributable inside this repository; the
//!   generator exercises the identical pipeline),
//! * [`quantize`] — the fixed-point weight quantization of Section 5.2,
//! * [`loss`] — softmax cross-entropy.
//!
//! ## Quick example
//!
//! ```rust
//! use sc_nn::dataset::SyntheticDigits;
//! use sc_nn::lenet::tiny_lenet;
//! use sc_nn::network::TrainingOptions;
//!
//! let data = SyntheticDigits::generate(200, 7);
//! let mut network = tiny_lenet(11);
//! let options = TrainingOptions { epochs: 1, learning_rate: 0.05, ..Default::default() };
//! network.train(&data.train_images, &data.train_labels, &options);
//! let error = network.error_rate(&data.test_images, &data.test_labels);
//! assert!(error <= 1.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dataset;
pub mod layers;
pub mod lenet;
pub mod loss;
pub mod network;
pub mod quantize;
pub mod tensor;

pub use network::Network;
pub use tensor::Tensor;
