//! Fixed-point weight quantization (Section 5.2 of the paper).
//!
//! The stored value for a weight `x` at precision `w` bits is
//! `y = Int((x + 1)/2 · 2^w) / 2^w`, mapped back to the bipolar range. This
//! module applies that quantization to whole networks, either with one
//! precision everywhere or with per-layer precisions (the 7-7-6 scheme of
//! Section 5.3).

use crate::network::Network;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Quantizes one weight value to `bits` of precision (Section 5.2 formula).
///
/// Values outside `[-1, 1]` are clamped first, mirroring the bipolar range
/// restriction of the stochastic representation.
pub fn quantize_value(x: f32, bits: usize) -> f32 {
    let bits = bits.min(23);
    let scale = (1u32 << bits) as f32;
    let clamped = x.clamp(-1.0, 1.0);
    let stored = ((clamped + 1.0) / 2.0 * scale).floor() / scale;
    stored * 2.0 - 1.0
}

/// Quantizes every element of a tensor.
pub fn quantize_tensor(tensor: &Tensor, bits: usize) -> Tensor {
    tensor.map(|v| quantize_value(v, bits))
}

/// A per-layer precision assignment for the parameterized layers of a
/// network, in layer order (e.g. `[7, 7, 6]` groups the two fully-connected
/// layers of LeNet-5 into the last entry, matching the paper's "Layer2").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrecisionScheme {
    bits: Vec<usize>,
}

impl PrecisionScheme {
    /// Uniform precision for every parameterized layer.
    pub fn uniform(bits: usize, layer_count: usize) -> Self {
        Self {
            bits: vec![bits; layer_count],
        }
    }

    /// Explicit per-layer precisions.
    pub fn per_layer(bits: Vec<usize>) -> Self {
        Self { bits }
    }

    /// Precision for the `index`-th parameterized layer (the last entry is
    /// reused if the scheme is shorter than the network).
    pub fn bits_for(&self, index: usize) -> usize {
        self.bits
            .get(index)
            .or_else(|| self.bits.last())
            .copied()
            .unwrap_or(usize::MAX)
    }

    /// The per-layer precisions.
    pub fn bits(&self) -> &[usize] {
        &self.bits
    }
}

/// Applies weight quantization in place to every parameterized layer of a
/// network and returns how many layers were touched.
pub fn quantize_network(network: &mut Network, scheme: &PrecisionScheme) -> usize {
    let mut parameterized = 0usize;
    for layer in network.layers_mut() {
        let bits = scheme.bits_for(parameterized);
        if let Some(weights) = layer.weights_mut() {
            let quantized = quantize_tensor(weights, bits);
            *weights = quantized;
            parameterized += 1;
        }
    }
    parameterized
}

/// Quantizes only one parameterized layer (all others keep full precision),
/// reproducing the per-layer sensitivity sweep of Fig. 13.
pub fn quantize_single_layer(network: &mut Network, layer_index: usize, bits: usize) -> bool {
    let mut parameterized = 0usize;
    for layer in network.layers_mut() {
        if layer.weights().is_some() {
            if parameterized == layer_index {
                if let Some(weights) = layer.weights_mut() {
                    *weights = quantize_tensor(weights, bits);
                }
                return true;
            }
            parameterized += 1;
        }
    }
    false
}

/// Counts the parameterized layers of a network (layers that own weights).
pub fn parameterized_layer_count(network: &Network) -> usize {
    network
        .layers()
        .iter()
        .filter(|l| l.weights().is_some())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Tanh};

    fn two_layer_network() -> Network {
        let mut network = Network::new("q");
        network.push(Box::new(Dense::new(4, 4, 1)));
        network.push(Box::new(Tanh::new()));
        network.push(Box::new(Dense::new(4, 2, 2)));
        network
    }

    #[test]
    fn quantize_value_matches_paper_formula() {
        // w = 2: (0.3 + 1)/2 = 0.65 -> floor(2.6)/4 = 0.5 -> 0.0.
        assert!((quantize_value(0.3, 2) - 0.0).abs() < 1e-6);
        assert!((quantize_value(0.3, 16) - 0.3).abs() < 1e-3);
        assert!(quantize_value(5.0, 8) <= 1.0);
        assert!(quantize_value(-5.0, 8) >= -1.0);
    }

    #[test]
    fn quantization_error_decreases_with_bits() {
        let tensor = Tensor::from_vec(vec![0.123, -0.456, 0.789], &[3]);
        let coarse = quantize_tensor(&tensor, 3);
        let fine = quantize_tensor(&tensor, 10);
        let err = |q: &Tensor| -> f32 {
            q.as_slice()
                .iter()
                .zip(tensor.as_slice())
                .map(|(a, b)| (a - b).abs())
                .sum()
        };
        assert!(err(&fine) < err(&coarse));
    }

    #[test]
    fn scheme_reuses_last_entry() {
        let scheme = PrecisionScheme::per_layer(vec![7, 6]);
        assert_eq!(scheme.bits_for(0), 7);
        assert_eq!(scheme.bits_for(1), 6);
        assert_eq!(scheme.bits_for(5), 6);
        assert_eq!(scheme.bits(), &[7, 6]);
        let uniform = PrecisionScheme::uniform(8, 3);
        assert_eq!(uniform.bits_for(2), 8);
    }

    #[test]
    fn quantize_network_touches_all_parameterized_layers() {
        let mut network = two_layer_network();
        assert_eq!(parameterized_layer_count(&network), 2);
        let touched = quantize_network(&mut network, &PrecisionScheme::uniform(2, 2));
        assert_eq!(touched, 2);
        for weights in network.weight_snapshots() {
            for &w in weights.as_slice() {
                // With 2 bits the stored values live on a coarse grid.
                let grid = (w + 1.0) / 2.0 * 4.0;
                assert!((grid - grid.round()).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn quantize_single_layer_leaves_others_untouched() {
        let mut network = two_layer_network();
        let original = network.weight_snapshots();
        assert!(quantize_single_layer(&mut network, 1, 2));
        let after = network.weight_snapshots();
        assert_eq!(original[0].as_slice(), after[0].as_slice());
        assert_ne!(original[1].as_slice(), after[1].as_slice());
        assert!(!quantize_single_layer(&mut network, 9, 2));
    }
}
