//! Softmax cross-entropy loss.

use crate::tensor::Tensor;

/// Numerically stable softmax of a logit vector.
pub fn softmax(logits: &Tensor) -> Tensor {
    let max = logits
        .as_slice()
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.as_slice().iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    Tensor::from_vec(exps.into_iter().map(|v| v / sum).collect(), logits.shape())
}

/// Softmax cross-entropy loss and its gradient with respect to the logits.
///
/// Returns `(loss, gradient)` for a single sample with integer class label.
///
/// # Panics
///
/// Panics if `label` is out of range for the logit vector.
pub fn softmax_cross_entropy(logits: &Tensor, label: usize) -> (f32, Tensor) {
    assert!(
        label < logits.len(),
        "label {label} out of range for {} classes",
        logits.len()
    );
    let probabilities = softmax(logits);
    let p_label = probabilities.as_slice()[label].max(1e-12);
    let loss = -p_label.ln();
    let mut grad = probabilities;
    grad.as_mut_slice()[label] -= 1.0;
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let probs = softmax(&logits);
        let sum: f32 = probs.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(probs.as_slice()[2] > probs.as_slice()[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let b = softmax(&Tensor::from_vec(vec![101.0, 102.0], &[2]));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn correct_prediction_has_low_loss() {
        let confident = Tensor::from_vec(vec![10.0, -10.0], &[2]);
        let (loss, _) = softmax_cross_entropy(&confident, 0);
        assert!(loss < 0.01);
        let (wrong_loss, _) = softmax_cross_entropy(&confident, 1);
        assert!(wrong_loss > 5.0);
    }

    #[test]
    fn gradient_sums_to_zero() {
        let logits = Tensor::from_vec(vec![0.3, -0.2, 1.0], &[3]);
        let (_, grad) = softmax_cross_entropy(&logits, 1);
        let sum: f32 = grad.as_slice().iter().sum();
        assert!(sum.abs() < 1e-6);
        assert!(grad.as_slice()[1] < 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_label_panics() {
        let logits = Tensor::from_vec(vec![0.0, 0.0], &[2]);
        let _ = softmax_cross_entropy(&logits, 5);
    }
}
