//! 2×2 pooling layers (average and max) with stride 2.

use super::Layer;
use crate::tensor::Tensor;

fn pooled_dims(input: &Tensor) -> (usize, usize, usize) {
    let (channels, height, width) = input.dims3();
    assert!(height >= 2 && width >= 2, "input too small for 2x2 pooling");
    (channels, height / 2, width / 2)
}

/// 2×2 average pooling with stride 2.
#[derive(Debug, Clone, Default)]
pub struct AvgPool2 {
    cached_input_shape: Option<Vec<usize>>,
}

impl AvgPool2 {
    /// Creates an average pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for AvgPool2 {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let (channels, out_h, out_w) = pooled_dims(input);
        let mut output = Tensor::zeros(&[channels, out_h, out_w]);
        for c in 0..channels {
            for y in 0..out_h {
                for x in 0..out_w {
                    let sum = input.at3(c, 2 * y, 2 * x)
                        + input.at3(c, 2 * y, 2 * x + 1)
                        + input.at3(c, 2 * y + 1, 2 * x)
                        + input.at3(c, 2 * y + 1, 2 * x + 1);
                    *output.at3_mut(c, y, x) = sum / 4.0;
                }
            }
        }
        self.cached_input_shape = Some(input.shape().to_vec());
        output
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let shape = self
            .cached_input_shape
            .clone()
            .expect("forward must run before backward");
        let mut grad_input = Tensor::zeros(&shape);
        let (channels, out_h, out_w) = grad_output.dims3();
        for c in 0..channels {
            for y in 0..out_h {
                for x in 0..out_w {
                    let g = grad_output.at3(c, y, x) / 4.0;
                    for (dy, dx) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                        *grad_input.at3_mut(c, 2 * y + dy, 2 * x + dx) += g;
                    }
                }
            }
        }
        grad_input
    }

    fn name(&self) -> &'static str {
        "avg_pool"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// 2×2 max pooling with stride 2.
#[derive(Debug, Clone, Default)]
pub struct MaxPool2 {
    cached_input_shape: Option<Vec<usize>>,
    cached_argmax: Vec<usize>,
}

impl MaxPool2 {
    /// Creates a max pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for MaxPool2 {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let (channels, out_h, out_w) = pooled_dims(input);
        let (_, in_h, in_w) = input.dims3();
        let mut output = Tensor::zeros(&[channels, out_h, out_w]);
        self.cached_argmax = vec![0; channels * out_h * out_w];
        for c in 0..channels {
            for y in 0..out_h {
                for x in 0..out_w {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_index = 0;
                    for (dy, dx) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                        let (iy, ix) = (2 * y + dy, 2 * x + dx);
                        let value = input.at3(c, iy, ix);
                        if value > best {
                            best = value;
                            best_index = (c * in_h + iy) * in_w + ix;
                        }
                    }
                    *output.at3_mut(c, y, x) = best;
                    self.cached_argmax[(c * out_h + y) * out_w + x] = best_index;
                }
            }
        }
        self.cached_input_shape = Some(input.shape().to_vec());
        output
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let shape = self
            .cached_input_shape
            .clone()
            .expect("forward must run before backward");
        let mut grad_input = Tensor::zeros(&shape);
        for (flat_index, &source) in self.cached_argmax.iter().enumerate() {
            grad_input.as_mut_slice()[source] += grad_output.as_slice()[flat_index];
        }
        grad_input
    }

    fn name(&self) -> &'static str {
        "max_pool"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_pooling_computes_means() {
        let mut pool = AvgPool2::new();
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]);
        let output = pool.forward(&input);
        assert_eq!(output.as_slice(), &[2.5]);
        assert_eq!(output.shape(), &[1, 1, 1]);
    }

    #[test]
    fn max_pooling_picks_maximum() {
        let mut pool = MaxPool2::new();
        let input = Tensor::from_vec(vec![1.0, 7.0, 3.0, 4.0], &[1, 2, 2]);
        let output = pool.forward(&input);
        assert_eq!(output.as_slice(), &[7.0]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let mut pool = MaxPool2::new();
        let input = Tensor::from_vec(vec![1.0, 7.0, 3.0, 4.0], &[1, 2, 2]);
        let _ = pool.forward(&input);
        let grad = pool.backward(&Tensor::from_vec(vec![2.0], &[1, 1, 1]));
        assert_eq!(grad.as_slice(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_pool_backward_distributes_evenly() {
        let mut pool = AvgPool2::new();
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]);
        let _ = pool.forward(&input);
        let grad = pool.backward(&Tensor::from_vec(vec![4.0], &[1, 1, 1]));
        assert_eq!(grad.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn odd_sizes_truncate() {
        let mut pool = MaxPool2::new();
        let input = Tensor::zeros(&[2, 5, 5]);
        let output = pool.forward(&input);
        assert_eq!(output.shape(), &[2, 2, 2]);
    }

    #[test]
    fn layer_names() {
        assert_eq!(AvgPool2::new().name(), "avg_pool");
        assert_eq!(MaxPool2::new().name(), "max_pool");
    }
}
