//! Hyperbolic-tangent activation layer.
//!
//! The paper replaces ReLU/sigmoid with tanh throughout because tanh maps
//! directly onto the Stanh/Btanh stochastic hardware without accuracy loss;
//! the software substrate therefore trains with tanh as well.

use super::Layer;
use crate::tensor::Tensor;

/// Element-wise `tanh` activation.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh activation layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let output = input.map(|v| v.tanh());
        self.cached_output = Some(output.clone());
        output
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let output = self
            .cached_output
            .clone()
            .expect("forward must run before backward");
        assert_eq!(output.len(), grad_output.len(), "gradient shape mismatch");
        let data = output
            .as_slice()
            .iter()
            .zip(grad_output.as_slice().iter())
            .map(|(&y, &g)| g * (1.0 - y * y))
            .collect();
        Tensor::from_vec(data, grad_output.shape())
    }

    fn name(&self) -> &'static str {
        "tanh"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_applies_tanh() {
        let mut layer = Tanh::new();
        let input = Tensor::from_vec(vec![0.0, 1.0, -1.0], &[3]);
        let output = layer.forward(&input);
        assert!((output.as_slice()[0]).abs() < 1e-6);
        assert!((output.as_slice()[1] - 1.0f32.tanh()).abs() < 1e-6);
        assert!((output.as_slice()[2] + 1.0f32.tanh()).abs() < 1e-6);
    }

    #[test]
    fn backward_uses_derivative() {
        let mut layer = Tanh::new();
        let input = Tensor::from_vec(vec![0.0], &[1]);
        let _ = layer.forward(&input);
        let grad = layer.backward(&Tensor::from_vec(vec![1.0], &[1]));
        // d/dx tanh(0) = 1.
        assert!((grad.as_slice()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn output_is_bounded() {
        let mut layer = Tanh::new();
        let input = Tensor::from_vec(vec![100.0, -100.0], &[2]);
        let output = layer.forward(&input);
        assert!(output.as_slice().iter().all(|v| v.abs() <= 1.0));
        assert_eq!(layer.name(), "tanh");
    }
}
