//! Neural-network layers with forward and backward passes.
//!
//! The layer set is exactly what LeNet-5 needs: valid-padding convolution,
//! 2×2 pooling (average and max), fully-connected layers and the hyperbolic
//! tangent activation the paper standardizes on.

mod activation;
mod conv;
mod dense;
mod pool;

pub use activation::Tanh;
pub use conv::Conv2d;
pub use dense::Dense;
pub use pool::{AvgPool2, MaxPool2};

use crate::tensor::Tensor;

/// A differentiable network layer.
///
/// Layers cache whatever they need during [`Layer::forward`] so that
/// [`Layer::backward`] can compute gradients; [`Layer::apply_gradients`]
/// performs the SGD update and clears accumulated gradients.
pub trait Layer {
    /// Computes the layer output for `input`.
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Back-propagates `grad_output` (gradient w.r.t. this layer's output)
    /// and returns the gradient w.r.t. the layer's input. Parameter
    /// gradients are accumulated internally.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Applies accumulated parameter gradients with the given learning rate
    /// and clears them. Layers without parameters do nothing.
    fn apply_gradients(&mut self, _learning_rate: f32) {}

    /// A short human-readable layer name ("conv", "dense", …).
    fn name(&self) -> &'static str;

    /// The layer as `Any`, so structure-aware consumers (e.g. the SC
    /// compilation pass in `sc-serve`) can downcast to the concrete layer
    /// type and read its shape parameters.
    fn as_any(&self) -> &dyn std::any::Any;

    /// The layer's trainable weights, if any (excluding biases).
    fn weights(&self) -> Option<&Tensor> {
        None
    }

    /// Mutable access to the layer's trainable weights, if any.
    fn weights_mut(&mut self) -> Option<&mut Tensor> {
        None
    }

    /// Number of trainable parameters (weights + biases).
    fn parameter_count(&self) -> usize {
        0
    }
}

/// Xavier-style uniform initialisation bound for a layer with the given
/// fan-in and fan-out.
pub(crate) fn xavier_bound(fan_in: usize, fan_out: usize) -> f32 {
    (6.0 / (fan_in + fan_out) as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Finite-difference gradient check helper shared by the layer tests.
    pub(crate) fn numeric_input_gradient(
        layer: &mut dyn Layer,
        input: &Tensor,
        index: usize,
        epsilon: f32,
    ) -> f32 {
        let mut plus = input.clone();
        plus.as_mut_slice()[index] += epsilon;
        let mut minus = input.clone();
        minus.as_mut_slice()[index] -= epsilon;
        let out_plus: f32 = layer.forward(&plus).as_slice().iter().sum();
        let out_minus: f32 = layer.forward(&minus).as_slice().iter().sum();
        (out_plus - out_minus) / (2.0 * epsilon)
    }

    fn random_tensor(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(shape, |_| rng.gen_range(-1.0..1.0))
    }

    fn check_input_gradients(layer: &mut dyn Layer, input: &Tensor, tolerance: f32) {
        let output = layer.forward(input);
        let grad_out = Tensor::from_vec(vec![1.0; output.len()], output.shape());
        let analytic = layer.backward(&grad_out);
        for index in 0..input.len().min(12) {
            let numeric = numeric_input_gradient(layer, input, index, 1e-3);
            let delta = (analytic.as_slice()[index] - numeric).abs();
            assert!(
                delta < tolerance,
                "gradient mismatch at {index}: analytic {} vs numeric {numeric}",
                analytic.as_slice()[index]
            );
        }
    }

    #[test]
    fn conv_input_gradients_match_finite_differences() {
        let mut layer = Conv2d::new(1, 2, 3, 42);
        let input = random_tensor(&[1, 6, 6], 1);
        check_input_gradients(&mut layer, &input, 1e-2);
    }

    #[test]
    fn dense_input_gradients_match_finite_differences() {
        let mut layer = Dense::new(12, 4, 43);
        let input = random_tensor(&[12], 2);
        check_input_gradients(&mut layer, &input, 1e-2);
    }

    #[test]
    fn tanh_input_gradients_match_finite_differences() {
        let mut layer = Tanh::new();
        let input = random_tensor(&[10], 3);
        check_input_gradients(&mut layer, &input, 1e-2);
    }

    #[test]
    fn avg_pool_gradients_match_finite_differences() {
        let mut layer = AvgPool2::new();
        let input = random_tensor(&[2, 4, 4], 4);
        check_input_gradients(&mut layer, &input, 1e-2);
    }

    #[test]
    fn max_pool_gradients_match_finite_differences() {
        let mut layer = MaxPool2::new();
        // Use well-separated values so the argmax is stable under perturbation.
        let input = Tensor::from_fn(&[1, 4, 4], |i| (i as f32) * 0.37 - 2.0);
        check_input_gradients(&mut layer, &input, 1e-2);
    }

    #[test]
    fn xavier_bound_is_reasonable() {
        let bound = xavier_bound(100, 100);
        assert!(bound > 0.0 && bound < 1.0);
    }
}
