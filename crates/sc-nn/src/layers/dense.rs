//! Fully-connected (dense) layer.

use super::{xavier_bound, Layer};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fully-connected layer `y = W·x + b`.
///
/// The input may have any shape; it is flattened to a vector of
/// `input_size` elements.
#[derive(Debug, Clone)]
pub struct Dense {
    input_size: usize,
    output_size: usize,
    weights: Tensor,
    bias: Tensor,
    weight_grad: Tensor,
    bias_grad: Tensor,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Xavier-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(input_size: usize, output_size: usize, seed: u64) -> Self {
        assert!(
            input_size > 0 && output_size > 0,
            "dimensions must be non-zero"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = xavier_bound(input_size, output_size);
        let weights = Tensor::from_fn(&[output_size, input_size], |_| rng.gen_range(-bound..bound));
        Self {
            input_size,
            output_size,
            weight_grad: Tensor::zeros(weights.shape()),
            weights,
            bias: Tensor::zeros(&[output_size]),
            bias_grad: Tensor::zeros(&[output_size]),
            cached_input: None,
        }
    }

    /// Number of inputs the layer expects after flattening.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Number of outputs the layer produces.
    pub fn output_size(&self) -> usize {
        self.output_size
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(
            input.len(),
            self.input_size,
            "dense layer input size mismatch"
        );
        let x = input.as_slice();
        let w = self.weights.as_slice();
        let mut output = Tensor::zeros(&[self.output_size]);
        for o in 0..self.output_size {
            let row = &w[o * self.input_size..(o + 1) * self.input_size];
            let mut acc = self.bias.as_slice()[o];
            for (weight, value) in row.iter().zip(x.iter()) {
                acc += weight * value;
            }
            output.as_mut_slice()[o] = acc;
        }
        self.cached_input = Some(Tensor::from_vec(x.to_vec(), &[self.input_size]));
        output
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert_eq!(
            grad_output.len(),
            self.output_size,
            "dense layer gradient size mismatch"
        );
        let input = self
            .cached_input
            .clone()
            .expect("forward must run before backward");
        let x = input.as_slice();
        let w = self.weights.as_slice();
        let g = grad_output.as_slice();
        let input_size = self.input_size;

        // Weight-gradient rows and bias slots belong to exactly one output
        // unit, so fanning out over `o` keeps every slot's accumulation
        // order identical to the serial loop: each worker starts from the
        // currently accumulated row and adds its unit's contribution.
        let updated_rows = {
            let wg = self.weight_grad.as_slice();
            sc_core::parallel::parallel_map_range(self.output_size, |o| {
                let mut row = wg[o * input_size..(o + 1) * input_size].to_vec();
                let go = g[o];
                for (slot, &xv) in row.iter_mut().zip(x.iter()) {
                    *slot += go * xv;
                }
                row
            })
        };
        for (o, row) in updated_rows.into_iter().enumerate() {
            self.weight_grad.as_mut_slice()[o * input_size..(o + 1) * input_size]
                .copy_from_slice(&row);
            self.bias_grad.as_mut_slice()[o] += g[o];
        }

        // The input gradient partitions by input index: slot `i` receives
        // its contributions in ascending `o` (the serial outer-loop order),
        // regardless of how the `i` range is chunked across workers.
        let grad_input = sc_core::parallel::parallel_map_range(input_size, |i| {
            let mut acc = 0.0f32;
            for o in 0..g.len() {
                acc += g[o] * w[o * input_size + i];
            }
            acc
        });
        Tensor::from_vec(grad_input, &[input_size])
    }

    fn apply_gradients(&mut self, learning_rate: f32) {
        for (w, g) in self
            .weights
            .as_mut_slice()
            .iter_mut()
            .zip(self.weight_grad.as_mut_slice().iter_mut())
        {
            *w -= learning_rate * *g;
            *g = 0.0;
        }
        for (b, g) in self
            .bias
            .as_mut_slice()
            .iter_mut()
            .zip(self.bias_grad.as_mut_slice().iter_mut())
        {
            *b -= learning_rate * *g;
            *g = 0.0;
        }
    }

    fn name(&self) -> &'static str {
        "dense"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn weights(&self) -> Option<&Tensor> {
        Some(&self.weights)
    }

    fn weights_mut(&mut self) -> Option<&mut Tensor> {
        Some(&mut self.weights)
    }

    fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_hand_computation() {
        let mut dense = Dense::new(2, 2, 1);
        {
            let w = dense.weights_mut().unwrap().as_mut_slice();
            w.copy_from_slice(&[1.0, 2.0, -1.0, 0.5]);
        }
        let input = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        let output = dense.forward(&input);
        assert_eq!(output.as_slice(), &[11.0, -1.0]);
        assert_eq!(dense.input_size(), 2);
        assert_eq!(dense.output_size(), 2);
    }

    #[test]
    fn flattens_multidimensional_input() {
        let mut dense = Dense::new(8, 3, 2);
        let input = Tensor::zeros(&[2, 2, 2]);
        let output = dense.forward(&input);
        assert_eq!(output.shape(), &[3]);
    }

    #[test]
    fn training_reduces_simple_regression_loss() {
        let mut dense = Dense::new(1, 1, 3);
        // Learn y = 2x from a handful of points.
        let mut last_loss = f32::MAX;
        for _ in 0..200 {
            let mut loss = 0.0;
            for x in [-1.0f32, -0.5, 0.5, 1.0] {
                let input = Tensor::from_vec(vec![x], &[1]);
                let out = dense.forward(&input);
                let error = out.as_slice()[0] - 2.0 * x;
                loss += error * error;
                dense.backward(&Tensor::from_vec(vec![2.0 * error], &[1]));
                dense.apply_gradients(0.05);
            }
            last_loss = loss;
        }
        assert!(last_loss < 0.01, "regression did not converge: {last_loss}");
    }

    #[test]
    fn parameter_count_includes_bias() {
        let dense = Dense::new(10, 4, 5);
        assert_eq!(dense.parameter_count(), 44);
    }

    #[test]
    #[should_panic(expected = "input size mismatch")]
    fn wrong_input_size_panics() {
        let mut dense = Dense::new(4, 2, 6);
        let _ = dense.forward(&Tensor::zeros(&[5]));
    }
}
