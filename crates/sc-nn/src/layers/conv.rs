//! Valid-padding 2-D convolution layer.

use super::{xavier_bound, Layer};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A 2-D convolution with square kernels, unit stride and valid padding.
///
/// Weights have shape `(out_channels, in_channels, kernel, kernel)`; inputs
/// are `(in_channels, height, width)` feature maps.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    weights: Tensor,
    bias: Tensor,
    weight_grad: Tensor,
    bias_grad: Tensor,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer with Xavier-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, seed: u64) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && kernel > 0,
            "dimensions must be non-zero"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let fan_in = in_channels * kernel * kernel;
        let fan_out = out_channels * kernel * kernel;
        let bound = xavier_bound(fan_in, fan_out);
        let weights = Tensor::from_fn(&[out_channels, in_channels, kernel, kernel], |_| {
            rng.gen_range(-bound..bound)
        });
        let bias = Tensor::zeros(&[out_channels]);
        let weight_grad = Tensor::zeros(weights.shape());
        let bias_grad = Tensor::zeros(bias.shape());
        Self {
            in_channels,
            out_channels,
            kernel,
            weights,
            bias,
            weight_grad,
            bias_grad,
            cached_input: None,
        }
    }

    /// Kernel side length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels (filters).
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    fn weight_at(&self, o: usize, i: usize, ky: usize, kx: usize) -> f32 {
        let k = self.kernel;
        self.weights.as_slice()[((o * self.in_channels + i) * k + ky) * k + kx]
    }

    fn output_dims(&self, input: &Tensor) -> (usize, usize) {
        let (_, height, width) = input.dims3();
        assert!(
            height >= self.kernel && width >= self.kernel,
            "input {height}x{width} smaller than kernel {}",
            self.kernel
        );
        (height - self.kernel + 1, width - self.kernel + 1)
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let (channels, _, _) = input.dims3();
        assert_eq!(channels, self.in_channels, "input channel count mismatch");
        let (out_h, out_w) = self.output_dims(input);
        // Output channels are independent filter units (the "layer units" of
        // the SC hardware mapping), so they fan out across threads; each
        // produces its own plane and the planes are concatenated in channel
        // order, so the result is bit-identical to the serial loop.
        let this = &*self;
        let planes = sc_core::parallel::parallel_map_range(self.out_channels, |o| {
            let mut plane = vec![0.0f32; out_h * out_w];
            for y in 0..out_h {
                for x in 0..out_w {
                    let mut acc = this.bias.as_slice()[o];
                    for i in 0..this.in_channels {
                        for ky in 0..this.kernel {
                            for kx in 0..this.kernel {
                                acc += this.weight_at(o, i, ky, kx) * input.at3(i, y + ky, x + kx);
                            }
                        }
                    }
                    plane[y * out_w + x] = acc;
                }
            }
            plane
        });
        let data: Vec<f32> = planes.into_iter().flatten().collect();
        let output = Tensor::from_vec(data, &[self.out_channels, out_h, out_w]);
        self.cached_input = Some(input.clone());
        output
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .clone()
            .expect("forward must run before backward");
        let (out_c, out_h, out_w) = grad_output.dims3();
        assert_eq!(out_c, self.out_channels, "gradient channel count mismatch");
        let (_, in_h, in_w) = input.dims3();
        let k = self.kernel;
        let in_channels = self.in_channels;
        let row = in_channels * k * k;

        // Weight and bias gradients partition cleanly by output channel: the
        // serial loop only ever touches channel `o`'s slots from its own
        // `o` iteration, so each worker accumulates its channel's row —
        // starting from the currently accumulated value, in the serial inner
        // order — and the result is bit-identical to the serial loop.
        let this = &*self;
        let weight_grad = &self.weight_grad;
        let bias_grad = &self.bias_grad;
        let per_channel = sc_core::parallel::parallel_map_range(self.out_channels, |o| {
            let mut wg = weight_grad.as_slice()[o * row..(o + 1) * row].to_vec();
            let mut bg = bias_grad.as_slice()[o];
            for y in 0..out_h {
                for x in 0..out_w {
                    let g = grad_output.at3(o, y, x);
                    bg += g;
                    for i in 0..in_channels {
                        for ky in 0..k {
                            for kx in 0..k {
                                wg[(i * k + ky) * k + kx] += g * input.at3(i, y + ky, x + kx);
                            }
                        }
                    }
                }
            }
            (wg, bg)
        });

        // The input gradient partitions by *input* channel: every slot of
        // plane `i` only receives contributions from workers' fixed `i`, and
        // each worker visits them in the serial `(o, y, x, ky, kx)` order,
        // so per-slot accumulation order (and hence the float result) is
        // unchanged.
        let planes = sc_core::parallel::parallel_map_range(in_channels, |i| {
            let mut plane = vec![0.0f32; in_h * in_w];
            for o in 0..this.out_channels {
                for y in 0..out_h {
                    for x in 0..out_w {
                        let g = grad_output.at3(o, y, x);
                        for ky in 0..k {
                            for kx in 0..k {
                                plane[(y + ky) * in_w + (x + kx)] +=
                                    g * this.weight_at(o, i, ky, kx);
                            }
                        }
                    }
                }
            }
            plane
        });

        for (o, (wg, bg)) in per_channel.into_iter().enumerate() {
            self.weight_grad.as_mut_slice()[o * row..(o + 1) * row].copy_from_slice(&wg);
            self.bias_grad.as_mut_slice()[o] = bg;
        }
        let data: Vec<f32> = planes.into_iter().flatten().collect();
        Tensor::from_vec(data, input.shape())
    }

    fn apply_gradients(&mut self, learning_rate: f32) {
        for (w, g) in self
            .weights
            .as_mut_slice()
            .iter_mut()
            .zip(self.weight_grad.as_mut_slice().iter_mut())
        {
            *w -= learning_rate * *g;
            *g = 0.0;
        }
        for (b, g) in self
            .bias
            .as_mut_slice()
            .iter_mut()
            .zip(self.bias_grad.as_mut_slice().iter_mut())
        {
            *b -= learning_rate * *g;
            *g = 0.0;
        }
    }

    fn name(&self) -> &'static str {
        "conv"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn weights(&self) -> Option<&Tensor> {
        Some(&self.weights)
    }

    fn weights_mut(&mut self) -> Option<&mut Tensor> {
        Some(&mut self.weights)
    }

    fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_is_valid_convolution() {
        let mut conv = Conv2d::new(1, 3, 5, 1);
        let input = Tensor::zeros(&[1, 28, 28]);
        let output = conv.forward(&input);
        assert_eq!(output.shape(), &[3, 24, 24]);
        assert_eq!(conv.kernel(), 5);
        assert_eq!(conv.in_channels(), 1);
        assert_eq!(conv.out_channels(), 3);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        let mut conv = Conv2d::new(1, 1, 1, 2);
        conv.weights_mut().unwrap().as_mut_slice()[0] = 1.0;
        let input = Tensor::from_fn(&[1, 3, 3], |i| i as f32);
        let output = conv.forward(&input);
        assert_eq!(output.as_slice(), input.as_slice());
    }

    #[test]
    fn known_convolution_value() {
        let mut conv = Conv2d::new(1, 1, 2, 3);
        {
            let w = conv.weights_mut().unwrap().as_mut_slice();
            w.copy_from_slice(&[1.0, 0.0, 0.0, 1.0]);
        }
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]);
        let output = conv.forward(&input);
        assert_eq!(output.as_slice(), &[5.0]);
    }

    #[test]
    fn gradients_accumulate_and_clear() {
        let mut conv = Conv2d::new(1, 1, 2, 4);
        let input = Tensor::from_fn(&[1, 3, 3], |i| i as f32 * 0.1);
        let output = conv.forward(&input);
        let before = conv.weights().unwrap().clone();
        let grad = Tensor::from_vec(vec![1.0; output.len()], output.shape());
        conv.backward(&grad);
        conv.apply_gradients(0.1);
        let after = conv.weights().unwrap();
        assert_ne!(before.as_slice(), after.as_slice());
        assert_eq!(conv.parameter_count(), 4 + 1);
    }

    #[test]
    #[should_panic(expected = "channel count mismatch")]
    fn wrong_channel_count_panics() {
        let mut conv = Conv2d::new(2, 1, 3, 5);
        let input = Tensor::zeros(&[1, 8, 8]);
        let _ = conv.forward(&input);
    }
}
