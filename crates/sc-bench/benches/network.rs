//! Criterion benches for the network-level paths: software inference,
//! error-injection inference, hardware cost roll-up and the design-space
//! optimizer.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_blocks::feature_block::FeatureBlockKind;
use sc_dcnn::config::{table6_configurations, ScNetworkConfig};
use sc_dcnn::error_model::{ErrorInjection, FebErrorModel};
use sc_dcnn::mapping::lenet5_cost;
use sc_dcnn::optimizer::{DesignSpaceOptimizer, OptimizerOptions};
use sc_nn::dataset::SyntheticDigits;
use sc_nn::lenet::{tiny_lenet, PoolingStyle};
use sc_nn::network::TrainingOptions;

fn bench_software_inference(c: &mut Criterion) {
    let data = SyntheticDigits::generate(4, 3);
    let mut network = tiny_lenet(1);
    network.train(
        &data.train_images,
        &data.train_labels,
        &TrainingOptions {
            epochs: 1,
            ..Default::default()
        },
    );
    let image = data.test_images[0].clone();
    c.bench_function("software_forward_pass", |b| {
        b.iter(|| network.predict(&image))
    });
}

fn bench_error_injection(c: &mut Criterion) {
    let data = SyntheticDigits::generate(4, 3);
    let mut network = tiny_lenet(1);
    network.train(
        &data.train_images,
        &data.train_labels,
        &TrainingOptions {
            epochs: 1,
            ..Default::default()
        },
    );
    let model = FebErrorModel::new(3, 17);
    let injection = ErrorInjection::lenet5(&model);
    let config = ScNetworkConfig::new(
        "bench",
        vec![FeatureBlockKind::ApcMaxBtanh; 3],
        256,
        PoolingStyle::Max,
    );
    // Calibrate once outside the measurement loop.
    let _ = injection.layer_sigmas(&config);
    let mut group = c.benchmark_group("error_injection");
    group.sample_size(10);
    group.bench_function("sc_error_injected_eval", |b| {
        b.iter(|| {
            injection.error_rate(
                &mut network,
                &config,
                &data.test_images,
                &data.test_labels,
                5,
            )
        })
    });
    group.finish();
}

fn bench_cost_rollup(c: &mut Criterion) {
    let configs = table6_configurations();
    c.bench_function("lenet5_cost_rollup_12_configs", |b| {
        b.iter(|| configs.iter().map(lenet5_cost).collect::<Vec<_>>())
    });
}

fn bench_optimizer(c: &mut Criterion) {
    let optimizer = DesignSpaceOptimizer::new(OptimizerOptions::default());
    c.bench_function("design_space_search_analytic", |b| {
        b.iter(|| {
            optimizer.search(PoolingStyle::Max, |config| {
                // Analytic accuracy proxy keeps the bench focused on the
                // search and cost roll-up machinery.
                let apc_layers = config
                    .layer_kinds
                    .iter()
                    .filter(|k| **k == FeatureBlockKind::ApcMaxBtanh)
                    .count() as f64;
                2.0 - 0.5 * apc_layers + 256.0 / config.stream_length as f64
            })
        })
    });
}

criterion_group!(
    benches,
    bench_software_inference,
    bench_error_injection,
    bench_cost_rollup,
    bench_optimizer
);
criterion_main!(benches);
