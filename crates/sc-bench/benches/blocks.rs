//! Criterion benches for function blocks and feature extraction blocks,
//! including the adder / pooling / activation ablations called out in
//! DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sc_blocks::feature_block::{FeatureBlock, FeatureBlockKind};
use sc_blocks::inner_product::{ApcInnerProduct, MuxInnerProduct};
use sc_blocks::pooling::{AveragePooling, HardwareMaxPooling, SoftwareMaxPooling};
use sc_core::activation::Stanh;
use sc_core::bitstream::{BitStream, StreamLength};
use sc_core::sng::{Sng, SngKind};

fn random_values(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn bench_inner_product_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("inner_product_n64_l1024");
    group.sample_size(15);
    let inputs = random_values(64, 1);
    let weights = random_values(64, 2);
    let length = StreamLength::new(1024);
    group.bench_function("mux", |b| {
        let block = MuxInnerProduct::new(3);
        b.iter(|| block.evaluate(&inputs, &weights, length).unwrap());
    });
    group.bench_function("apc", |b| {
        let block = ApcInnerProduct::new(3);
        b.iter(|| block.evaluate(&inputs, &weights, length).unwrap());
    });
    group.finish();
}

fn bench_pooling_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("pooling_ablation_l1024");
    group.sample_size(15);
    let streams: Vec<BitStream> = (0..4)
        .map(|i| {
            Sng::new(SngKind::Lfsr32, 40 + i)
                .generate_bipolar(0.2 * i as f64 - 0.3, StreamLength::new(1024))
                .unwrap()
        })
        .collect();
    group.bench_function("average", |b| {
        let pool = AveragePooling::new(7);
        b.iter(|| pool.pool_streams(&streams).unwrap());
    });
    group.bench_function("hardware_max", |b| {
        let pool = HardwareMaxPooling::new(16).unwrap();
        b.iter(|| pool.pool_streams(&streams).unwrap());
    });
    group.bench_function("software_max", |b| {
        let pool = SoftwareMaxPooling::new();
        b.iter(|| pool.pool_streams(&streams).unwrap());
    });
    group.finish();
}

fn bench_stanh_state_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("stanh_state_sweep_l8192");
    group.sample_size(15);
    let input = Sng::new(SngKind::Lfsr32, 9)
        .generate_bipolar(0.4, StreamLength::new(8192))
        .unwrap();
    for &states in &[8usize, 16, 32] {
        group.bench_with_input(
            BenchmarkId::from_parameter(states),
            &states,
            |b, &states| {
                b.iter(|| {
                    let mut fsm = Stanh::new(states).unwrap();
                    fsm.transform(&input)
                });
            },
        );
    }
    group.finish();
}

fn bench_feature_blocks(c: &mut Criterion) {
    let mut group = c.benchmark_group("feature_block_n25_l1024");
    group.sample_size(10);
    let fields: Vec<Vec<f64>> = (0..4).map(|i| random_values(25, 10 + i)).collect();
    let weights = random_values(25, 99);
    for kind in FeatureBlockKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                let block = FeatureBlock::new(kind, 25, StreamLength::new(1024), 5).unwrap();
                b.iter(|| block.evaluate(&fields, &weights).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_inner_product_ablation,
    bench_pooling_ablation,
    bench_stanh_state_sweep,
    bench_feature_blocks
);
criterion_main!(benches);
