//! Criterion benches for the stochastic-computing primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_core::add::{Apc, ExactParallelCounter, MuxAdder, OrAdder};
use sc_core::bitstream::{BitStream, StreamLength};
use sc_core::multiply;
use sc_core::rng::Lfsr;
use sc_core::sng::{Sng, SngKind};

fn streams(n: usize, length: usize) -> Vec<BitStream> {
    (0..n)
        .map(|i| {
            Sng::new(SngKind::Lfsr32, 100 + i as u64)
                .generate_bipolar((i as f64 / n as f64) - 0.5, StreamLength::new(length))
                .expect("value in range")
        })
        .collect()
}

fn bench_sng(c: &mut Criterion) {
    let mut group = c.benchmark_group("sng_generate");
    group.sample_size(20);
    for &length in &[256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(length), &length, |b, &length| {
            let mut sng = Sng::new(SngKind::Lfsr32, 7);
            b.iter(|| sng.generate_bipolar(0.37, StreamLength::new(length)).unwrap());
        });
    }
    group.finish();
}

fn bench_multiply(c: &mut Criterion) {
    let mut group = c.benchmark_group("bipolar_multiply");
    group.sample_size(20);
    for &length in &[1024usize, 8192] {
        let pair = streams(2, length);
        group.bench_with_input(BenchmarkId::from_parameter(length), &length, |b, _| {
            b.iter(|| multiply::bipolar(&pair[0], &pair[1]));
        });
    }
    group.finish();
}

fn bench_adders(c: &mut Criterion) {
    let mut group = c.benchmark_group("adders_n32_l1024");
    group.sample_size(20);
    let inputs = streams(32, 1024);
    group.bench_function("or", |b| {
        let adder = OrAdder::new();
        b.iter(|| adder.sum(&inputs).unwrap());
    });
    group.bench_function("mux", |b| {
        let adder = MuxAdder::new();
        b.iter(|| {
            let mut selector = Lfsr::new_32(5);
            adder.sum(&inputs, &mut selector).unwrap()
        });
    });
    group.bench_function("apc", |b| {
        let apc = Apc::new();
        b.iter(|| apc.count(&inputs).unwrap());
    });
    group.bench_function("exact_counter", |b| {
        let counter = ExactParallelCounter::new();
        b.iter(|| counter.count(&inputs).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_sng, bench_multiply, bench_adders);
criterion_main!(benches);
