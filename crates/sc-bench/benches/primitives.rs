//! Criterion benches for the stochastic-computing primitives.
//!
//! The `*_bitwise` / `*_materialized` entries are the per-bit baselines the
//! word-parallel kernels replaced; they are kept runnable so regressions and
//! speedups stay measurable (see also `cargo run --release -p sc-bench --bin
//! bench_kernels`, which records the same comparisons in
//! `BENCH_kernels.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_core::add::{Apc, ExactParallelCounter, MuxAdder, OrAdder};
use sc_core::arena::StreamArena;
use sc_core::bitstream::{BitStream, StreamLength};
use sc_core::multiply;
use sc_core::rng::Lfsr;
use sc_core::sng::{Sng, SngKind};

fn streams(n: usize, length: usize) -> Vec<BitStream> {
    (0..n)
        .map(|i| {
            Sng::new(SngKind::Lfsr32, 100 + i as u64)
                .generate_bipolar((i as f64 / n as f64) - 0.5, StreamLength::new(length))
                .expect("value in range")
        })
        .collect()
}

fn bench_sng(c: &mut Criterion) {
    let mut group = c.benchmark_group("sng_generate");
    group.sample_size(20);
    for &length in &[256usize, 1024, 4096] {
        group.bench_with_input(
            BenchmarkId::new("word_parallel", length),
            &length,
            |b, &length| {
                let mut sng = Sng::new(SngKind::Lfsr32, 7);
                b.iter(|| {
                    sng.generate_probability(0.685, StreamLength::new(length))
                        .unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bitwise", length),
            &length,
            |b, &length| {
                let mut sng = Sng::new(SngKind::Lfsr32, 7);
                b.iter(|| {
                    sng.generate_probability_bitwise(0.685, StreamLength::new(length))
                        .unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("word_parallel_into", length),
            &length,
            |b, &length| {
                let mut sng = Sng::new(SngKind::Lfsr32, 7);
                let mut stream = BitStream::zeros(StreamLength::new(length));
                b.iter(|| sng.generate_probability_into(0.685, &mut stream).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_multiply(c: &mut Criterion) {
    let mut group = c.benchmark_group("bipolar_multiply");
    group.sample_size(20);
    for &length in &[1024usize, 8192] {
        let pair = streams(2, length);
        group.bench_with_input(BenchmarkId::new("materialized", length), &length, |b, _| {
            b.iter(|| multiply::bipolar(&pair[0], &pair[1]));
        });
        group.bench_with_input(BenchmarkId::new("fused_count", length), &length, |b, _| {
            b.iter(|| multiply::bipolar_count(&pair[0], &pair[1]));
        });
    }
    group.finish();
}

fn bench_adders(c: &mut Criterion) {
    let mut group = c.benchmark_group("adders_n32_l1024");
    group.sample_size(20);
    let inputs = streams(32, 1024);
    group.bench_function("or", |b| {
        let adder = OrAdder::new();
        b.iter(|| adder.sum(&inputs).unwrap());
    });
    group.bench_function("mux", |b| {
        let adder = MuxAdder::new();
        b.iter(|| {
            let mut selector = Lfsr::new_32(5);
            adder.sum(&inputs, &mut selector).unwrap()
        });
    });
    group.bench_function("apc", |b| {
        let apc = Apc::new();
        b.iter(|| apc.count(&inputs).unwrap());
    });
    group.bench_function("exact_counter", |b| {
        let counter = ExactParallelCounter::new();
        b.iter(|| counter.count(&inputs).unwrap());
    });
    group.finish();
}

fn bench_inner_product_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("inner_product_n32_l1024");
    group.sample_size(20);
    let xs = streams(32, 1024);
    let ws = {
        let mut w = streams(32, 1024);
        w.rotate_left(5);
        w
    };
    group.bench_function("materialized_products_then_count", |b| {
        let counter = ExactParallelCounter::new();
        b.iter(|| {
            let products = multiply::bipolar_products(&xs, &ws).unwrap();
            counter.count(&products).unwrap()
        });
    });
    group.bench_function("fused_count_products", |b| {
        let counter = ExactParallelCounter::new();
        b.iter(|| counter.count_products(&xs, &ws).unwrap());
    });
    group.bench_function("fused_mux_sum_products", |b| {
        let adder = MuxAdder::new();
        b.iter(|| {
            let mut selector = Lfsr::new_32(5);
            adder.sum_products(&xs, &ws, &mut selector).unwrap()
        });
    });
    group.bench_function("fused_bipolar_dot", |b| {
        b.iter(|| multiply::bipolar_dot(&xs, &ws).unwrap());
    });
    group.finish();
}

fn bench_arena(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_arena");
    group.sample_size(20);
    let length = StreamLength::new(1024);
    group.bench_function("alloc_per_stream", |b| {
        let mut sng = Sng::new(SngKind::Lfsr32, 3);
        b.iter(|| sng.generate_probability(0.5, length).unwrap());
    });
    group.bench_function("arena_reuse", |b| {
        let mut sng = Sng::new(SngKind::Lfsr32, 3);
        let mut arena = StreamArena::new();
        b.iter(|| {
            let mut stream = arena.take_zeroed(length);
            sng.generate_probability_into(0.5, &mut stream).unwrap();
            let ones = stream.count_ones();
            arena.recycle(stream);
            ones
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sng,
    bench_multiply,
    bench_adders,
    bench_inner_product_kernels,
    bench_arena
);
criterion_main!(benches);
