//! Experiment sizing knobs.

/// Controls how much Monte-Carlo / training work each experiment performs.
///
/// The paper's experiments average over large input populations; the `full`
/// preset approximates that, while `quick` shrinks trial counts and the
/// training set so the complete suite finishes in a couple of minutes on a
/// laptop (the reported trends are the same, only noisier).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentSettings {
    /// Monte-Carlo trials per table cell.
    pub trials: usize,
    /// Training samples per digit class for network-level experiments.
    pub train_per_class: usize,
    /// Training epochs for network-level experiments.
    pub epochs: usize,
    /// Test samples are `train_per_class / 4` per class (see `sc_nn::dataset`).
    /// Calibration trials for the feature-block error model.
    pub calibration_trials: usize,
    /// Base random seed.
    pub seed: u64,
}

impl ExperimentSettings {
    /// Fast preset used by default and by the integration tests.
    pub fn quick() -> Self {
        Self {
            trials: 24,
            train_per_class: 20,
            epochs: 3,
            calibration_trials: 8,
            seed: 20_17,
        }
    }

    /// Higher-fidelity preset (longer runtime, smoother numbers).
    pub fn full() -> Self {
        Self {
            trials: 120,
            train_per_class: 80,
            epochs: 6,
            calibration_trials: 24,
            seed: 20_17,
        }
    }

    /// Parses `--quick` / `--full` style command-line arguments, defaulting
    /// to the quick preset.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut settings = Self::quick();
        for arg in args {
            match arg.as_str() {
                "--full" => settings = Self::full(),
                "--quick" => settings = Self::quick(),
                _ => {}
            }
        }
        settings
    }
}

impl Default for ExperimentSettings {
    fn default() -> Self {
        Self::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_scale() {
        let quick = ExperimentSettings::quick();
        let full = ExperimentSettings::full();
        assert!(full.trials > quick.trials);
        assert!(full.train_per_class > quick.train_per_class);
        assert_eq!(quick, ExperimentSettings::default());
    }

    #[test]
    fn argument_parsing_selects_preset() {
        let full = ExperimentSettings::from_args(vec!["--full".to_string()]);
        assert_eq!(full, ExperimentSettings::full());
        let quick = ExperimentSettings::from_args(vec!["whatever".to_string()]);
        assert_eq!(quick, ExperimentSettings::quick());
    }
}
