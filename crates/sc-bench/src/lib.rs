//! # sc-bench
//!
//! Experiment harness that regenerates every table and figure of the
//! SC-DCNN paper's evaluation. Each `run_*` function prints the
//! corresponding table/series to stdout and returns the underlying data so
//! integration tests can assert on the trends. The thin binaries under
//! `src/bin/` simply call these functions:
//!
//! ```text
//! cargo run -p sc-bench --release --bin table1     # Table 1
//! cargo run -p sc-bench --release --bin fig14      # Figure 14
//! cargo run -p sc-bench --release --bin experiments -- --quick   # everything
//! ```
//!
//! The Criterion benches (`cargo bench -p sc-bench`) measure the raw
//! throughput of the SC primitives, the function blocks and the
//! error-injection inference path.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod settings;

pub use experiments::*;
pub use settings::ExperimentSettings;
