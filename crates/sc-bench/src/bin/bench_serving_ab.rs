//! Interleaved A/B of the serving engine's single-request latency across
//! kernel word backends.
//!
//! The scalar backend runs the seed revision's scalar loops (the `u64`
//! instantiation the `W::LANES > 1` dispatch guards compile down to), so
//! pinning scalar vs the best available backend inside one binary is a
//! controlled A/B of the super-word kernel layer with the build, the weights,
//! the training run, and the session state all held constant. The 1-core
//! bench box drifts ±10%, so runs are *interleaved in pairs* (A, B, A, B, …)
//! and the recorded delta is the median of the per-pair deltas, not a single
//! before/after difference.
//!
//! Run with: `cargo run --release -p sc-bench --features simd --bin
//! bench_serving_ab`. Replaces the `kernel_backend_ab` section of
//! `BENCH_serving.json`, leaving the rest of the recording untouched.

use sc_blocks::feature_block::FeatureBlockKind;
use sc_core::{force_backend, Backend};
use sc_dcnn::config::ScNetworkConfig;
use sc_nn::dataset::SyntheticDigits;
use sc_nn::lenet::{tiny_lenet, PoolingStyle};
use sc_nn::network::Network;
use sc_nn::tensor::Tensor;
use sc_serve::engine::{Engine, EngineOptions};
use std::time::Instant;

fn percentile(sorted: &[f64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (pct / 100.0 * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

struct AbRun {
    name: String,
    stream_length: usize,
    requests_per_run: usize,
    pairs: Vec<(f64, f64)>,
    scalar_p50_ms: f64,
    best_p50_ms: f64,
    /// Median of per-pair `(scalar - best) / scalar`, in percent.
    p50_delta_pct: f64,
}

/// One timed run: `requests` warm-session inferences under the currently
/// pinned backend, returning the p50 latency in milliseconds.
fn timed_run(
    engine: &Engine,
    session: &mut sc_serve::engine::Session,
    images: &[Tensor],
    requests: usize,
) -> f64 {
    let mut latencies: Vec<f64> = Vec::with_capacity(requests);
    for image in images.iter().cycle().take(requests) {
        let begin = Instant::now();
        let result = engine.infer(session, image).expect("engine inference");
        latencies.push(begin.elapsed().as_secs_f64() * 1000.0);
        std::hint::black_box(result);
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    percentile(&latencies, 50.0)
}

fn ab_config(
    network: &Network,
    name: &str,
    stream_length: usize,
    requests: usize,
    pair_count: usize,
    best: Backend,
) -> AbRun {
    use FeatureBlockKind::{ApcMaxBtanh, MuxMaxStanh};
    let config = ScNetworkConfig::new(
        name,
        vec![MuxMaxStanh, MuxMaxStanh, ApcMaxBtanh, ApcMaxBtanh],
        stream_length,
        PoolingStyle::Max,
    );
    let engine =
        Engine::compile(network, &config, EngineOptions::default()).expect("engine compiles");
    let data = SyntheticDigits::generate(2, 23);
    let images: Vec<Tensor> = data.train_images.iter().take(4).cloned().collect();

    // Prove the two backends serve bit-identical results before timing.
    let mut session = engine.new_session();
    assert!(force_backend(Backend::Scalar));
    let scalar_result = engine.infer(&mut session, &images[0]).expect("scalar");
    assert!(force_backend(best));
    let best_result = engine.infer(&mut session, &images[0]).expect("best");
    assert_eq!(
        scalar_result, best_result,
        "backends must serve bit-identical inferences"
    );

    // Warm-up run per backend (untimed), then interleaved timed pairs on the
    // same warm session.
    assert!(force_backend(Backend::Scalar));
    timed_run(&engine, &mut session, &images, requests);
    assert!(force_backend(best));
    timed_run(&engine, &mut session, &images, requests);

    let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(pair_count);
    for _ in 0..pair_count {
        assert!(force_backend(Backend::Scalar));
        let scalar_p50 = timed_run(&engine, &mut session, &images, requests);
        assert!(force_backend(best));
        let best_p50 = timed_run(&engine, &mut session, &images, requests);
        pairs.push((scalar_p50, best_p50));
    }

    let mut scalar_p50s: Vec<f64> = pairs.iter().map(|&(a, _)| a).collect();
    let mut best_p50s: Vec<f64> = pairs.iter().map(|&(_, b)| b).collect();
    let mut deltas: Vec<f64> = pairs.iter().map(|&(a, b)| (a - b) / a * 100.0).collect();
    scalar_p50s.sort_by(|a, b| a.total_cmp(b));
    best_p50s.sort_by(|a, b| a.total_cmp(b));
    deltas.sort_by(|a, b| a.total_cmp(b));

    AbRun {
        name: name.to_string(),
        stream_length,
        requests_per_run: requests,
        pairs,
        scalar_p50_ms: percentile(&scalar_p50s, 50.0),
        best_p50_ms: percentile(&best_p50s, 50.0),
        p50_delta_pct: percentile(&deltas, 50.0),
    }
}

/// Replaces (or appends) the `kernel_backend_ab` section of
/// `BENCH_serving.json` without disturbing the sections `bench_serving`
/// writes.
fn patch_recording(section: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serving.json");
    let text = std::fs::read_to_string(&path).expect("read BENCH_serving.json");
    let mut body = text.trim_end().to_string();
    // Our section is always the last one before the closing brace; drop a
    // previous recording wholesale if present.
    if let Some(idx) = body.find(",\n  \"kernel_backend_ab\"") {
        body.truncate(idx);
        body.push_str("\n}");
    }
    assert!(body.ends_with('}'), "unexpected BENCH_serving.json shape");
    body.truncate(body.len() - 1);
    let body = body.trim_end().to_string();
    let patched = format!("{body},\n  \"kernel_backend_ab\": {section}\n}}\n");
    std::fs::write(&path, patched).expect("write BENCH_serving.json");
    println!("\npatched {}", path.display());
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let best = sc_core::word::best_available_backend();
    assert!(
        best != Backend::Scalar,
        "no wide backend available; build with --features simd on x86-64/aarch64 \
         or rely on the portable super-word (always available)"
    );
    // Single-threaded like the serving acceptance runs: the kernel delta
    // should not be confounded by fan-out scheduling.
    sc_core::parallel::set_thread_limit(1);

    println!("training reduced LeNet once for both A/B configurations ...");
    let data = SyntheticDigits::load_or_generate(20, 17);
    let mut network = tiny_lenet(17);
    network.train(
        &data.train_images,
        &data.train_labels,
        &sc_nn::network::TrainingOptions {
            epochs: 2,
            learning_rate: 0.08,
            ..Default::default()
        },
    );

    let (requests, pair_count) = if quick { (5, 3) } else { (11, 5) };
    let runs = vec![
        ab_config(
            &network,
            "no1_style_l1024",
            1024,
            requests,
            pair_count,
            best,
        ),
        ab_config(
            &network,
            "no1_style_l256",
            256,
            requests * 2,
            pair_count,
            best,
        ),
    ];
    sc_core::parallel::set_thread_limit(0);
    force_backend(best);

    println!(
        "\n{:<22}{:>14}{:>14}{:>12}",
        "configuration",
        "scalar p50",
        format!("{best} p50"),
        "p50 delta"
    );
    for run in &runs {
        println!(
            "{:<22}{:>11.2} ms{:>11.2} ms{:>11.1}%",
            run.name, run.scalar_p50_ms, run.best_p50_ms, run.p50_delta_pct
        );
        for (i, (a, b)) in run.pairs.iter().enumerate() {
            println!("    pair {i}: scalar {a:.2} ms vs {best} {b:.2} ms");
        }
    }

    if quick {
        println!("\nskipping BENCH_serving.json patch (--quick)");
        return;
    }

    let mut section = String::from("{\n");
    section.push_str(
        "    \"note\": \"single-request fused-engine p50 with the kernel word \
         backend pinned per run: scalar (the seed scalar loops, i.e. the \
         pre-super-word code path) vs the best available backend, interleaved \
         in pairs on the same warm session because the 1-core box drifts \
         +/-10%; delta is the median of per-pair (scalar-best)/scalar; both \
         backends asserted bit-identical before timing\",\n",
    );
    section.push_str(
        "    \"generated_by\": \"cargo run --release -p sc-bench --features simd --bin bench_serving_ab\",\n",
    );
    section.push_str(&format!("    \"best_backend\": \"{}\",\n", best.name()));
    section.push_str("    \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        section.push_str("      {\n");
        section.push_str(&format!("        \"name\": \"{}\",\n", run.name));
        section.push_str(&format!(
            "        \"stream_length\": {},\n",
            run.stream_length
        ));
        section.push_str(&format!(
            "        \"requests_per_run\": {},\n",
            run.requests_per_run
        ));
        section.push_str("        \"pairs_scalar_vs_best_p50_ms\": [");
        section.push_str(
            &run.pairs
                .iter()
                .map(|(a, b)| format!("[{a:.2}, {b:.2}]"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        section.push_str("],\n");
        section.push_str(&format!(
            "        \"scalar_p50_ms\": {:.2},\n",
            run.scalar_p50_ms
        ));
        section.push_str(&format!(
            "        \"best_p50_ms\": {:.2},\n",
            run.best_p50_ms
        ));
        section.push_str(&format!(
            "        \"p50_delta_pct\": {:.1}\n",
            run.p50_delta_pct
        ));
        section.push_str(if i + 1 == runs.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    section.push_str("    ]\n  }");
    patch_recording(&section);
}
