//! Regenerates Table 2 (MUX inner product errors) of the SC-DCNN paper.
use sc_bench::ExperimentSettings;

fn main() {
    let settings = ExperimentSettings::from_args(std::env::args().skip(1));
    let _ = sc_bench::run_table2(&settings);
}
