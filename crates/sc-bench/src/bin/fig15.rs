//! Regenerates Figure 15 (feature block hardware cost sweep).
fn main() {
    let _ = sc_bench::run_fig15();
}
