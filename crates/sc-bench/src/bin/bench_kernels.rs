//! Before/after benchmark of the word-parallel SC kernel engine.
//!
//! Re-runs the seed implementation's per-bit pipelines (kept as reference
//! code paths) against the word-parallel / fused kernels that replaced them,
//! verifies the outputs are bit-identical, and records the measured
//! throughput in `BENCH_kernels.json` at the repository root.
//!
//! Run with: `cargo run --release -p sc-bench --bin bench_kernels`

use sc_core::add::{Apc, ExactParallelCounter, MuxAdder, MuxSelectorPlan};
use sc_core::arena::StreamArena;
use sc_core::bitstream::{BitStream, StreamLength};
use sc_core::multiply;
use sc_core::rng::Lfsr;
use sc_core::sng::{Sng, SngBank, SngKind};
use sc_core::{force_backend, Backend};
use std::time::Instant;

/// Frozen copy of the seed revision's 32-bit LFSR step (popcount parity),
/// kept verbatim so the "before" timings measure the code this PR replaced
/// rather than the since-optimized shared primitives. Produces the same
/// state sequence as [`sc_core::rng::Lfsr`].
struct SeedLfsr32 {
    state: u32,
}

impl SeedLfsr32 {
    fn new(seed: u32) -> Self {
        Self { state: seed.max(1) }
    }

    fn step(&mut self) -> u32 {
        const TAPS: u32 = 0x8020_0003;
        let feedback = (self.state & TAPS).count_ones() & 1;
        self.state = (self.state << 1) | feedback;
        if self.state == 0 {
            self.state = 1;
        }
        self.state
    }
}

/// Frozen copy of the seed revision's per-bit SNG loop: one comparator
/// sample per `BitStream::set` call.
fn seed_generate_probability(
    lfsr: &mut SeedLfsr32,
    probability: f64,
    len: StreamLength,
) -> BitStream {
    let threshold = (probability * f64::from(1u32 << 16)).round() as u32;
    let mut stream = BitStream::zeros(len);
    for i in 0..len.bits() {
        let sample = lfsr.step() & 0xFFFF;
        if sample < threshold {
            stream.set(i, true);
        }
    }
    stream
}

/// Median nanoseconds per call over `samples` timed samples of `iters`
/// iterations each.
fn measure<R>(samples: usize, iters: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut timings: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    timings.sort_by(|a, b| a.total_cmp(b));
    timings[timings.len() / 2]
}

struct Comparison {
    name: &'static str,
    description: &'static str,
    baseline_ns: f64,
    optimized_ns: f64,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.baseline_ns / self.optimized_ns
    }
}

/// The seed implementation of the exact parallel counter: one bounds-checked
/// `get` per lane per cycle.
fn per_bit_column_count(inputs: &[BitStream]) -> Vec<u16> {
    let len = inputs[0].len();
    (0..len)
        .map(|i| inputs.iter().filter(|s| s.get(i)).count() as u16)
        .collect()
}

fn bench_sng(length: usize, samples: usize, iters: usize) -> Comparison {
    let len = StreamLength::new(length);
    // Verify bit-exactness of all three implementations before timing: the
    // frozen seed loop, the library's per-bit reference, and the
    // word-parallel fill must emit identical streams. The seed used by
    // `Sng::new(SngKind::Lfsr32, s)` is `s ^ 0x9E37_79B9` (see sc-core).
    let word = Sng::new(SngKind::Lfsr32, 7)
        .generate_probability(0.685, len)
        .unwrap();
    let bit = Sng::new(SngKind::Lfsr32, 7)
        .generate_probability_bitwise(0.685, len)
        .unwrap();
    let seed_impl = seed_generate_probability(&mut SeedLfsr32::new(7u32 ^ 0x9E37_79B9), 0.685, len);
    assert_eq!(
        word, bit,
        "word-parallel SNG must match the per-bit reference"
    );
    assert_eq!(
        word, seed_impl,
        "word-parallel SNG must match the frozen seed implementation"
    );

    let mut lfsr = SeedLfsr32::new(7u32 ^ 0x9E37_79B9);
    let baseline_ns = measure(samples, iters, || {
        seed_generate_probability(&mut lfsr, 0.685, len)
    });
    let mut sng = Sng::new(SngKind::Lfsr32, 7);
    let mut stream = BitStream::zeros(len);
    let optimized_ns = measure(samples, iters, || {
        sng.generate_probability_into(0.685, &mut stream).unwrap()
    });
    Comparison {
        name: if length == 1024 {
            "sng_generate_1024"
        } else {
            "sng_generate_8192"
        },
        description: "SNG stream generation (LFSR32): seed per-bit comparator \
                      loop vs batched sequence generation + bit-sliced \
                      comparator into a reused buffer",
        baseline_ns,
        optimized_ns,
    }
}

fn operand_values(n: usize) -> (Vec<f64>, Vec<f64>) {
    let inputs: Vec<f64> = (0..n).map(|i| (i as f64 / n as f64) - 0.5).collect();
    let weights: Vec<f64> = (0..n).map(|i| 0.5 - (i as f64 / n as f64)).collect();
    (inputs, weights)
}

/// Reproduces the lane seeding of `SngBank` (the splitmix stride) and the
/// `Sng` LFSR32 seed whitening so the frozen baseline generates the exact
/// streams the library produces.
fn seed_lane_lfsr(base_seed: u64, lane: usize) -> SeedLfsr32 {
    let lane_seed = base_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(lane as u64 + 1));
    SeedLfsr32::new(lane_seed as u32 ^ 0x9E37_79B9)
}

/// The seed implementation of the APC inner-product block: per-bit SNG fill,
/// materialized XNOR product streams, per-bit column count.
fn baseline_inner_product(inputs: &[f64], weights: &[f64], len: StreamLength, seed: u64) -> u64 {
    let input_streams: Vec<BitStream> = inputs
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            seed_generate_probability(&mut seed_lane_lfsr(seed, i), (v + 1.0) / 2.0, len)
        })
        .collect();
    let weight_streams: Vec<BitStream> = weights
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            seed_generate_probability(
                &mut seed_lane_lfsr(seed ^ 0xABCD_EF01_2345_6789, i),
                (v + 1.0) / 2.0,
                len,
            )
        })
        .collect();
    let products = multiply::bipolar_products(&input_streams, &weight_streams).unwrap();
    per_bit_column_count(&products)
        .iter()
        .map(|&c| u64::from(c))
        .sum()
}

/// The word-parallel pipeline doing the same work: arena-backed SNG fill and
/// the fused XNOR + column-count kernel.
fn fused_inner_product(
    inputs: &[f64],
    weights: &[f64],
    len: StreamLength,
    seed: u64,
    arena: &mut StreamArena,
) -> u64 {
    let mut input_bank = SngBank::new(SngKind::Lfsr32, inputs.len(), seed);
    let mut weight_bank =
        SngBank::new(SngKind::Lfsr32, weights.len(), seed ^ 0xABCD_EF01_2345_6789);
    let xs = input_bank
        .generate_bipolar_with(inputs, len, arena)
        .unwrap();
    let ws = weight_bank
        .generate_bipolar_with(weights, len, arena)
        .unwrap();
    let counts = ExactParallelCounter::new()
        .count_products(&xs, &ws)
        .unwrap();
    let total = counts.total();
    arena.recycle_all(xs);
    arena.recycle_all(ws);
    total
}

fn bench_inner_product(samples: usize, iters: usize) -> Comparison {
    let len = StreamLength::new(1024);
    let (inputs, weights) = operand_values(32);
    // Both pipelines must accumulate the identical total.
    let mut check_arena = StreamArena::new();
    assert_eq!(
        baseline_inner_product(&inputs, &weights, len, 42),
        fused_inner_product(&inputs, &weights, len, 42, &mut check_arena),
        "fused inner product must match the per-bit baseline"
    );
    let baseline_ns = measure(samples, iters, || {
        baseline_inner_product(&inputs, &weights, len, 42)
    });
    let mut arena = StreamArena::new();
    let optimized_ns = measure(samples, iters, || {
        fused_inner_product(&inputs, &weights, len, 42, &mut arena)
    });
    Comparison {
        name: "bipolar_inner_product_n32_l1024",
        description: "APC-style bipolar inner product (32 lanes, 1024 bits): \
                      per-bit SNG + materialized XNOR streams + per-bit column \
                      count vs arena-backed word-parallel SNG + fused \
                      XNOR/popcount kernel",
        baseline_ns,
        optimized_ns,
    }
}

fn bench_mux_block(samples: usize, iters: usize) -> Comparison {
    let len = StreamLength::new(1024);
    let n = 32usize;
    let xs: Vec<BitStream> = (0..n)
        .map(|i| {
            Sng::new(SngKind::Lfsr32, 100 + i as u64)
                .generate_bipolar((i as f64 / n as f64) - 0.5, len)
                .unwrap()
        })
        .collect();
    let ws: Vec<BitStream> = (0..n)
        .map(|i| {
            Sng::new(SngKind::Lfsr32, 500 + i as u64)
                .generate_bipolar(0.5 - (i as f64 / n as f64), len)
                .unwrap()
        })
        .collect();
    // Verify bit-exactness of the fused path.
    let products = multiply::bipolar_products(&xs, &ws).unwrap();
    let mut sel_a = Lfsr::new_32(5);
    let mut sel_b = Lfsr::new_32(5);
    assert_eq!(
        MuxAdder::new().sum_products(&xs, &ws, &mut sel_b).unwrap(),
        MuxAdder::new().sum(&products, &mut sel_a).unwrap(),
        "fused MUX must match materialize-then-sum"
    );

    let baseline_ns = measure(samples, iters, || {
        let products = multiply::bipolar_products(&xs, &ws).unwrap();
        let mut selector = Lfsr::new_32(5);
        MuxAdder::new().sum(&products, &mut selector).unwrap()
    });
    let optimized_ns = measure(samples, iters, || {
        let mut selector = Lfsr::new_32(5);
        MuxAdder::new()
            .sum_products(&xs, &ws, &mut selector)
            .unwrap()
    });
    Comparison {
        name: "mux_inner_product_n32_l1024",
        description: "MUX bipolar inner product (32 lanes, 1024 bits): \
                      materialized XNOR streams + per-bit MUX vs fused \
                      multiply-select",
        baseline_ns,
        optimized_ns,
    }
}

/// Frozen copy of the selector-serial fused MUX loop (the pre-bit-slicing
/// implementation): one selector draw and one per-bit extract/insert pair
/// per cycle.
fn selector_serial_sum_products(
    inputs: &[BitStream],
    weights: &[BitStream],
    selector_rng: &mut Lfsr,
) -> BitStream {
    let len = inputs[0].len();
    let n = inputs.len() as u32;
    let xs: Vec<&[u64]> = inputs.iter().map(|s| s.as_words()).collect();
    let ws: Vec<&[u64]> = weights.iter().map(|s| s.as_words()).collect();
    let mut out = BitStream::zeros(StreamLength::new(len));
    for (w, out_word) in out.words_mut().iter_mut().enumerate() {
        let bits = (len - w * 64).min(64);
        let mut packed = 0u64;
        for bit in 0..bits {
            let lane = sc_core::rng::RandomSource::next_below(selector_rng, n) as usize;
            let product = !(xs[lane][w] ^ ws[lane][w]);
            packed |= ((product >> bit) & 1) << bit;
        }
        *out_word = packed;
    }
    out
}

/// The bit-sliced selector (this PR) against the frozen selector-serial loop
/// it replaced — both on the fused multiply-select path.
fn bench_mux_selector(samples: usize, iters: usize) -> Comparison {
    let len = StreamLength::new(1024);
    let n = 32usize;
    let xs: Vec<BitStream> = (0..n)
        .map(|i| {
            Sng::new(SngKind::Lfsr32, 700 + i as u64)
                .generate_bipolar((i as f64 / n as f64) - 0.5, len)
                .unwrap()
        })
        .collect();
    let ws: Vec<BitStream> = (0..n)
        .map(|i| {
            Sng::new(SngKind::Lfsr32, 900 + i as u64)
                .generate_bipolar(0.5 - (i as f64 / n as f64), len)
                .unwrap()
        })
        .collect();
    let mut sel_a = Lfsr::new_32(77);
    let mut sel_b = Lfsr::new_32(77);
    assert_eq!(
        MuxAdder::new().sum_products(&xs, &ws, &mut sel_b).unwrap(),
        selector_serial_sum_products(&xs, &ws, &mut sel_a),
        "bit-sliced selector must match the selector-serial loop"
    );
    let baseline_ns = measure(samples, iters, || {
        let mut selector = Lfsr::new_32(77);
        selector_serial_sum_products(&xs, &ws, &mut selector)
    });
    let optimized_ns = measure(samples, iters, || {
        let mut selector = Lfsr::new_32(77);
        MuxAdder::new()
            .sum_products(&xs, &ws, &mut selector)
            .unwrap()
    });
    Comparison {
        name: "mux_selector_bitsliced_n32_l1024",
        description: "Fused MUX multiply-select (32 lanes, 1024 bits): \
                      selector-serial per-bit extract/insert loop vs \
                      bit-sliced per-lane selection masks",
        baseline_ns,
        optimized_ns,
    }
}

fn bench_apc_counts(samples: usize, iters: usize) -> Comparison {
    let len = 1024usize;
    let n = 32usize;
    let streams: Vec<BitStream> = (0..n)
        .map(|i| {
            Sng::new(SngKind::Lfsr32, 300 + i as u64)
                .generate_bipolar((i as f64 / n as f64) - 0.5, StreamLength::new(len))
                .unwrap()
        })
        .collect();
    let baseline_ns = measure(samples, iters, || per_bit_column_count(&streams));
    let optimized_ns = measure(samples, iters, || Apc::new().count(&streams).unwrap());
    Comparison {
        name: "column_count_n32_l1024",
        description: "Parallel-counter column counts (32 lanes, 1024 bits): \
                      per-bit get() loop vs word-unpacked accumulation",
        baseline_ns,
        optimized_ns,
    }
}

/// Frozen copy of the per-lane `trailing_zeros` column accumulation (the
/// pre-CSA `accumulate_columns`), kept so the CSA comparison measures the
/// kernel this PR replaced.
fn per_lane_column_accumulate(streams: &[BitStream], counts: &mut [u16]) {
    for stream in streams {
        for (w, &word) in stream.as_words().iter().enumerate() {
            let mut bits = word;
            let base = w * 64;
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                counts[base + j] += 1;
                bits &= bits - 1;
            }
        }
    }
}

/// Column counts through the bit-transposed CSA accumulator: word-major,
/// lane triples through the 3:2 compressor, planes unpacked per word.
fn csa_column_accumulate(streams: &[BitStream], len: usize, counts: &mut [u16]) {
    let lane_words: Vec<&[u64]> = streams.iter().map(|s| s.as_words()).collect();
    let mut scratch: Vec<u64> = vec![0; lane_words.len()];
    for w in 0..len.div_ceil(64) {
        let base = w * 64;
        let span = (len - base).min(64);
        for (slot, words) in scratch.iter_mut().zip(&lane_words) {
            *slot = words[w];
        }
        sc_core::csa::accumulate_column_counts(&scratch, &mut counts[base..base + span]);
    }
}

/// Per-cycle column counts across many lanes: the per-lane set-bit walk vs
/// the bit-transposed CSA vertical counters.
fn bench_csa_column_count(samples: usize, iters: usize) -> Comparison {
    let len = 1024usize;
    let n = 32usize;
    let streams: Vec<BitStream> = (0..n)
        .map(|i| {
            Sng::new(SngKind::Lfsr32, 300 + i as u64)
                .generate_bipolar((i as f64 / n as f64) - 0.5, StreamLength::new(len))
                .unwrap()
        })
        .collect();
    let mut a = vec![0u16; len];
    let mut b = vec![0u16; len];
    per_lane_column_accumulate(&streams, &mut a);
    csa_column_accumulate(&streams, len, &mut b);
    assert_eq!(a, b, "CSA column counts must match the per-lane walk");
    let baseline_ns = measure(samples, iters, || {
        let mut counts = vec![0u16; len];
        per_lane_column_accumulate(&streams, &mut counts);
        counts
    });
    let optimized_ns = measure(samples, iters, || {
        let mut counts = vec![0u16; len];
        csa_column_accumulate(&streams, len, &mut counts);
        counts
    });
    Comparison {
        name: "apc_csa_column_count_n32_l1024",
        description: "Parallel-counter column counts (32 lanes, 1024 bits): \
                      per-lane trailing_zeros set-bit walk vs bit-transposed \
                      CSA vertical counters (3:2 compressors + plane unpack)",
        baseline_ns,
        optimized_ns,
    }
}

/// Frozen copy of the per-unit `accumulate_product_columns` this PR ported
/// onto the CSA vertical-counter accumulator: XNOR per word, then a
/// `trailing_zeros` walk over the set product bits of every lane.
fn frozen_per_unit_product_walk(
    inputs: &[BitStream],
    weights: &[BitStream],
    len: usize,
    counts: &mut [u16],
) {
    let tail_bits = len % 64;
    let last = len.div_ceil(64) - 1;
    for (x, wt) in inputs.iter().zip(weights.iter()) {
        for (w, (&a, &b)) in x.as_words().iter().zip(wt.as_words().iter()).enumerate() {
            let mut product = !(a ^ b);
            if w == last && tail_bits != 0 {
                product &= (1u64 << tail_bits) - 1;
            }
            let base = w * 64;
            while product != 0 {
                let j = product.trailing_zeros() as usize;
                counts[base + j] += 1;
                product &= product - 1;
            }
        }
    }
}

/// The per-unit APC multiply-count: the frozen `trailing_zeros` product walk
/// (the pre-CSA `Apc::count_products` body) vs the shipped vertical-counter
/// accumulation behind [`ExactParallelCounter::count_products`].
fn bench_per_unit_apc_csa(samples: usize, iters: usize) -> Comparison {
    let len = 1024usize;
    let n = 32usize;
    let (values, wvalues) = operand_values(n);
    let xs: Vec<BitStream> = (0..n)
        .map(|i| {
            Sng::new(SngKind::Lfsr32, 60 + i as u64)
                .generate_bipolar(values[i], StreamLength::new(len))
                .unwrap()
        })
        .collect();
    let ws: Vec<BitStream> = (0..n)
        .map(|i| {
            Sng::new(SngKind::Lfsr32, 6000 + i as u64)
                .generate_bipolar(wvalues[i], StreamLength::new(len))
                .unwrap()
        })
        .collect();
    let mut frozen = vec![0u16; len];
    frozen_per_unit_product_walk(&xs, &ws, len, &mut frozen);
    let csa = ExactParallelCounter::new()
        .count_products(&xs, &ws)
        .unwrap();
    assert_eq!(
        frozen.as_slice(),
        csa.counts(),
        "CSA per-unit kernel must match the frozen product walk"
    );
    let baseline_ns = measure(samples, iters, || {
        let mut counts = vec![0u16; len];
        frozen_per_unit_product_walk(&xs, &ws, len, &mut counts);
        counts
    });
    let optimized_ns = measure(samples, iters, || {
        ExactParallelCounter::new()
            .count_products(&xs, &ws)
            .unwrap()
    });
    Comparison {
        name: "apc_per_unit_csa_n32_l1024",
        description: "Per-unit APC multiply-count (32 lanes, 1024 bits): \
                      per-lane trailing_zeros product walk vs XNOR super-words \
                      compressed into CSA vertical counters",
        baseline_ns,
        optimized_ns,
    }
}

/// Frozen copy of the PR-3 shared-input APC kernel (per-lane `trailing_zeros`
/// product walk shared across units), the path the CSA kernel replaced.
fn per_lane_shared_product_counts(
    inputs: &[BitStream],
    unit_weights: &[&[BitStream]],
    len: usize,
    counts: &mut [Vec<u16>],
) {
    let tail_bits = len % 64;
    let last = len.div_ceil(64) - 1;
    let mut lane_words: Vec<&[u64]> = Vec::with_capacity(unit_weights.len());
    for (lane, x) in inputs.iter().enumerate() {
        lane_words.clear();
        lane_words.extend(unit_weights.iter().map(|weights| weights[lane].as_words()));
        for (w, &a) in x.as_words().iter().enumerate() {
            let tail_mask = if w == last && tail_bits != 0 {
                (1u64 << tail_bits) - 1
            } else {
                u64::MAX
            };
            let base = w * 64;
            for (unit_counts, words) in counts.iter_mut().zip(&lane_words) {
                let mut product = !(a ^ words[w]) & tail_mask;
                while product != 0 {
                    let j = product.trailing_zeros() as usize;
                    unit_counts[base + j] += 1;
                    product &= product - 1;
                }
            }
        }
    }
}

/// The layer-fused shared-input APC kernel: frozen per-lane popcount walk vs
/// the shipped CSA accumulation, 25 lanes (a 5x5 receptive field) x 8 units.
fn bench_shared_apc_csa(samples: usize, iters: usize) -> Comparison {
    let len = 1024usize;
    let lanes = 25usize;
    let units = 8usize;
    let values = operand_values(lanes).0;
    let inputs: Vec<BitStream> = (0..lanes)
        .map(|i| {
            Sng::new(SngKind::Lfsr32, 40 + i as u64)
                .generate_bipolar(values[i], StreamLength::new(len))
                .unwrap()
        })
        .collect();
    let unit_ws: Vec<Vec<BitStream>> = (0..units)
        .map(|u| {
            (0..lanes)
                .map(|i| {
                    Sng::new(SngKind::Lfsr32, 4000 + (u * lanes + i) as u64)
                        .generate_bipolar(-values[i], StreamLength::new(len))
                        .unwrap()
                })
                .collect()
        })
        .collect();
    let refs: Vec<&[BitStream]> = unit_ws.iter().map(|w| w.as_slice()).collect();
    // The frozen walk produces the raw (pre-APC-LSB) exact counts; compare
    // against the exact shared counts reconstructed from the CSA kernel by
    // re-deriving them per unit with the per-unit exact kernel.
    let mut frozen: Vec<Vec<u16>> = vec![vec![0u16; len]; units];
    per_lane_shared_product_counts(&inputs, &refs, len, &mut frozen);
    for (unit, ws) in unit_ws.iter().enumerate() {
        let exact = ExactParallelCounter::new()
            .count_products(&inputs, ws)
            .unwrap();
        assert_eq!(
            frozen[unit].as_slice(),
            exact.counts(),
            "frozen shared walk diverged at unit {unit}"
        );
    }
    let shared = Apc::new().count_products_shared(&inputs, &refs).unwrap();
    for (unit, ws) in unit_ws.iter().enumerate() {
        let per_unit = Apc::new().count_products(&inputs, ws).unwrap();
        assert_eq!(
            shared[unit], per_unit,
            "CSA shared kernel diverged at unit {unit}"
        );
    }
    let baseline_ns = measure(samples, iters, || {
        let mut counts: Vec<Vec<u16>> = vec![vec![0u16; len]; units];
        per_lane_shared_product_counts(&inputs, &refs, len, &mut counts);
        counts
    });
    let optimized_ns = measure(samples, iters, || {
        Apc::new().count_products_shared(&inputs, &refs).unwrap()
    });
    Comparison {
        name: "apc_shared_csa_n25_u8_l1024",
        description: "Shared-input APC multiply-count (25 lanes, 8 units, 1024 \
                      bits): per-lane trailing_zeros product walk vs in-register \
                      3:2 CSA compression into per-unit vertical counters",
        baseline_ns,
        optimized_ns,
    }
}

/// One kernel timed once per available word backend (see `sc_core::word`).
/// All backends are bit-identical, so the rows differ only in throughput.
struct BackendMatrixRow {
    kernel: &'static str,
    description: &'static str,
    /// `(backend, median ns)` in the order of `available_backends()`.
    timings: Vec<(Backend, f64)>,
}

impl BackendMatrixRow {
    fn scalar_ns(&self) -> f64 {
        self.timings
            .iter()
            .find(|(b, _)| *b == Backend::Scalar)
            .map(|&(_, ns)| ns)
            .unwrap_or(f64::NAN)
    }

    fn speedup(&self, backend: Backend) -> Option<f64> {
        self.timings
            .iter()
            .find(|(b, _)| *b == backend)
            .map(|&(_, ns)| self.scalar_ns() / ns)
    }
}

/// Every backend this build + machine can run, scalar first.
fn available_backends() -> Vec<Backend> {
    let mut list = vec![Backend::Scalar];
    list.extend(
        Backend::ALL
            .into_iter()
            .filter(|b| *b != Backend::Scalar && b.is_available()),
    );
    list.sort_by_key(|b| match b {
        Backend::Scalar => 0,
        Backend::Wide => 1,
        Backend::Avx2 => 2,
        Backend::Neon => 3,
    });
    list
}

/// Times `f` once per available backend, pinning the process-wide kernel
/// backend around each measurement and restoring the best one afterwards.
fn measure_per_backend<R>(
    kernel: &'static str,
    description: &'static str,
    samples: usize,
    iters: usize,
    mut f: impl FnMut() -> R,
) -> BackendMatrixRow {
    let timings = available_backends()
        .into_iter()
        .map(|backend| {
            assert!(force_backend(backend), "backend {backend} vanished");
            (backend, measure(samples, iters, &mut f))
        })
        .collect();
    force_backend(sc_core::word::best_available_backend());
    BackendMatrixRow {
        kernel,
        description,
        timings,
    }
}

/// Per-backend timings of the five widened kernel families, each through its
/// public dispatching entry point (the same calls the serving engine makes).
fn backend_matrix(samples: usize, iters: usize) -> Vec<BackendMatrixRow> {
    let len = StreamLength::new(1024);
    let n = 32usize;
    let (values, wvalues) = operand_values(n);
    let xs: Vec<BitStream> = (0..n)
        .map(|i| {
            Sng::new(SngKind::Lfsr32, 70 + i as u64)
                .generate_bipolar(values[i], len)
                .unwrap()
        })
        .collect();
    let ws: Vec<BitStream> = (0..n)
        .map(|i| {
            Sng::new(SngKind::Lfsr32, 7000 + i as u64)
                .generate_bipolar(wvalues[i], len)
                .unwrap()
        })
        .collect();

    let mut rows = Vec::new();

    // (1) Staged-GF(2) SNG comparator fill.
    let mut sng = Sng::new(SngKind::Lfsr32, 7);
    let mut stream = BitStream::zeros(StreamLength::new(8192));
    rows.push(measure_per_backend(
        "sng_comparator_fill_l8192",
        "SNG comparator fill (LFSR32, 8192 bits): batched sequence window \
         compared against the threshold one super-word at a time",
        samples,
        iters,
        move || sng.generate_probability_into(0.685, &mut stream).unwrap(),
    ));

    // (2) Fused XNOR + popcount inner-product reduction.
    {
        let xs = xs.clone();
        let ws = ws.clone();
        rows.push(measure_per_backend(
            "xnor_popcount_n32_l1024",
            "Fused XNOR/popcount inner product (32 lanes, 1024 bits): \
             per-lane xnor_count reduction",
            samples,
            iters * 4,
            move || -> usize { xs.iter().zip(&ws).map(|(x, w)| x.xnor_count(w)).sum() },
        ));
    }

    // (3) Bit-sliced MUX selector plan replay (fused multiply-select).
    {
        let xs = xs.clone();
        let ws = ws.clone();
        let mut selector = Lfsr::new_32(77);
        let plan = MuxSelectorPlan::new(n, len.bits(), &mut selector).unwrap();
        let mut out = BitStream::zeros(len);
        rows.push(measure_per_backend(
            "mux_plan_replay_n32_l1024",
            "MUX selector plan replay (32 lanes, 1024 bits): chunk-grouped \
             masked ORs over XNOR product super-words",
            samples,
            iters * 4,
            move || {
                MuxAdder::new()
                    .sum_products_with_plan_into(&xs, &ws, &plan, &mut out)
                    .unwrap()
            },
        ));
    }

    // (4) CSA vertical-counter product accumulation (shared-input layer form).
    {
        let lanes = 25usize;
        let units = 8usize;
        let lane_values = operand_values(lanes).0;
        let inputs: Vec<BitStream> = (0..lanes)
            .map(|i| {
                Sng::new(SngKind::Lfsr32, 40 + i as u64)
                    .generate_bipolar(lane_values[i], len)
                    .unwrap()
            })
            .collect();
        let unit_ws: Vec<Vec<BitStream>> = (0..units)
            .map(|u| {
                (0..lanes)
                    .map(|i| {
                        Sng::new(SngKind::Lfsr32, 4000 + (u * lanes + i) as u64)
                            .generate_bipolar(-lane_values[i], len)
                            .unwrap()
                    })
                    .collect()
            })
            .collect();
        rows.push(measure_per_backend(
            "csa_shared_apc_n25_u8_l1024",
            "Shared-input CSA multiply-count (25 lanes, 8 units, 1024 bits): \
             3:2 compression of product super-words into per-unit vertical \
             counters",
            samples,
            iters,
            move || {
                let refs: Vec<&[BitStream]> = unit_ws.iter().map(|w| w.as_slice()).collect();
                Apc::new().count_products_shared(&inputs, &refs).unwrap()
            },
        ));
    }

    // (5) Word-interleaved Stanh FSM batch walk.
    {
        let stanh = sc_core::activation::Stanh::new(8).unwrap();
        let inputs = xs.clone();
        let mut arena = StreamArena::new();
        rows.push(measure_per_backend(
            "stanh_batch_n32_l1024",
            "Stanh FSM batch walk (32 units, 8 states, 1024 bits): \
             lane-parallel saturating counters over word groups",
            samples,
            iters,
            move || {
                let refs: Vec<&BitStream> = inputs.iter().collect();
                let outputs = stanh.transform_batch_with(&refs, &mut arena);
                arena.recycle_all(outputs);
            },
        ));
    }

    rows
}

fn json_escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (samples, iters) = if quick { (5, 20) } else { (15, 200) };

    println!("Measuring word-parallel kernels against per-bit baselines ...\n");
    let comparisons = vec![
        bench_sng(1024, samples, iters * 4),
        bench_sng(8192, samples, iters),
        bench_inner_product(samples, iters.div_ceil(4)),
        bench_mux_block(samples, iters),
        bench_mux_selector(samples, iters),
        bench_apc_counts(samples, iters),
        bench_csa_column_count(samples, iters),
        bench_per_unit_apc_csa(samples, iters),
        bench_shared_apc_csa(samples, iters.div_ceil(4)),
    ];

    println!(
        "{:<34}{:>16}{:>16}{:>10}",
        "benchmark", "baseline", "optimized", "speedup"
    );
    for c in &comparisons {
        println!(
            "{:<34}{:>13.0} ns{:>13.0} ns{:>9.1}x",
            c.name,
            c.baseline_ns,
            c.optimized_ns,
            c.speedup()
        );
    }

    let backends = available_backends();
    println!(
        "\nPer-backend kernel matrix (backends: {}) ...\n",
        backends
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let matrix = backend_matrix(samples, iters);
    print!("{:<30}", "kernel");
    for backend in &backends {
        print!("{:>14}", backend.name());
    }
    println!("{:>22}", "best speedup vs scalar");
    for row in &matrix {
        print!("{:<30}", row.kernel);
        for &(_, ns) in &row.timings {
            print!("{ns:>11.0} ns");
        }
        let best = row
            .timings
            .iter()
            .map(|&(_, ns)| row.scalar_ns() / ns)
            .fold(f64::NAN, f64::max);
        println!("{best:>21.2}x");
    }

    let mut json = String::from("{\n");
    json.push_str("  \"generated_by\": \"cargo run --release -p sc-bench --features simd --bin bench_kernels\",\n");
    json.push_str(&format!(
        "  \"threads_available\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    json.push_str("  \"unit\": \"nanoseconds per evaluation (median)\",\n");
    json.push_str("  \"benchmarks\": [\n");
    for (i, c) in comparisons.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"name\": \"{}\",\n", json_escape(c.name)));
        json.push_str(&format!(
            "      \"description\": \"{}\",\n",
            json_escape(c.description)
        ));
        json.push_str(&format!("      \"baseline_ns\": {:.1},\n", c.baseline_ns));
        json.push_str(&format!("      \"optimized_ns\": {:.1},\n", c.optimized_ns));
        json.push_str(&format!("      \"speedup\": {:.2}\n", c.speedup()));
        json.push_str(if i + 1 == comparisons.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str(
        "  \"kernel_backends\": {\n    \"note\": \"the same five kernels \
         timed once per word backend via force_backend; every backend is \
         bit-identical to scalar, speedups are scalar_ns / backend_ns\",\n",
    );
    json.push_str(&format!(
        "    \"available\": [{}],\n",
        backends
            .iter()
            .map(|b| format!("\"{}\"", b.name()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("    \"rows\": [\n");
    for (i, row) in matrix.iter().enumerate() {
        json.push_str("      {\n");
        json.push_str(&format!(
            "        \"kernel\": \"{}\",\n",
            json_escape(row.kernel)
        ));
        json.push_str(&format!(
            "        \"description\": \"{}\",\n",
            json_escape(row.description)
        ));
        for &(backend, ns) in &row.timings {
            json.push_str(&format!("        \"{}_ns\": {:.1},\n", backend.name(), ns));
        }
        let mut speedups: Vec<String> = Vec::new();
        for &(backend, _) in &row.timings {
            if backend != Backend::Scalar {
                if let Some(s) = row.speedup(backend) {
                    speedups.push(format!("        \"{}_speedup\": {:.2}", backend.name(), s));
                }
            }
        }
        json.push_str(&speedups.join(",\n"));
        json.push('\n');
        json.push_str(if i + 1 == matrix.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    json.push_str("    ]\n  }\n}\n");

    // A `--quick` smoke must not replace the committed recording with its
    // noisier low-iteration medians.
    if quick {
        println!(
            "\nskipping BENCH_kernels.json write (--quick); rerun without the \
             flag to refresh the recording"
        );
        return;
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_kernels.json");
    std::fs::write(&path, &json).expect("write BENCH_kernels.json");
    println!("\nwrote {}", path.display());
}
