//! Serving-path benchmark: per-call interpreter vs compiled engine.
//!
//! Measures, on the reduced LeNet (`tiny_lenet`):
//!
//! * **interpreter single-request** throughput — the per-call evaluation
//!   path (every operand stream regenerated per block call), one request at
//!   a time. This is the pre-`sc-serve` baseline.
//! * **engine (per-unit) single-request** throughput — compiled plan,
//!   pre-generated weight streams, warm stream cache, units evaluated one
//!   at a time (`fuse_layers: false`, the PR-2 engine).
//! * **engine (fused) single-request** throughput — the layer-fused path:
//!   shared operand streams, reusable MUX selector plans, shared-input APC
//!   popcounts, batched activation walks.
//! * **engine fused + unit fan-out** latency — the fused engine with
//!   `parallel_units` enabled, measuring single-request latency when one
//!   request's units spread across `sc_core::parallel` workers (equals the
//!   serial number on a single-core box; `threads` records the budget).
//! * **engine batched** throughput — the fused engine fed request-by-request
//!   through a warm session, the shape the serving runtime uses
//!   (per-request latency percentiles are recorded from this run).
//!
//! Bit-exactness (fused engine vs per-unit engine vs interpreter) is
//! verified before anything is timed. Results land in `BENCH_serving.json`
//! at the repo root.
//!
//! Run with: `cargo run --release -p sc-bench --bin bench_serving`
//! (`--quick` shrinks stream lengths and request counts for CI smoke runs;
//! `--verify` additionally re-checks every fused inference against the
//! interpreter while it is being timed — the CI smoke job runs
//! `--quick --verify`).

use sc_blocks::feature_block::FeatureBlockKind;
use sc_dcnn::config::ScNetworkConfig;
use sc_nn::dataset::SyntheticDigits;
use sc_nn::lenet::{tiny_lenet, PoolingStyle};
use sc_nn::tensor::Tensor;
use sc_serve::engine::{Engine, EngineOptions};
use sc_serve::interpreter::Inference;
use std::time::Instant;

struct ServingRun {
    name: String,
    layer_summary: String,
    stream_length: usize,
    interpreter_requests: usize,
    batched_requests: usize,
    interpreter_rps: f64,
    engine_per_unit_rps: f64,
    engine_single_rps: f64,
    parallel_single_latency_ms: f64,
    parallel_threads: usize,
    engine_batched_rps: f64,
    batched_p50_ms: f64,
    batched_p95_ms: f64,
    batched_p99_ms: f64,
    cache_hit_rate: f64,
}

impl ServingRun {
    fn speedup_single(&self) -> f64 {
        self.engine_single_rps / self.interpreter_rps
    }

    fn speedup_fused(&self) -> f64 {
        self.engine_single_rps / self.engine_per_unit_rps
    }

    fn speedup_batched(&self) -> f64 {
        self.engine_batched_rps / self.interpreter_rps
    }
}

/// Nearest-rank percentile over ascending samples (indexing shared with the
/// serving metrics so the logic exists exactly once).
fn percentile(sorted: &[f64], percentile: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[sc_serve::metrics::nearest_rank_index(sorted.len(), percentile)]
}

fn bench_config(
    name: &str,
    kinds: Vec<FeatureBlockKind>,
    stream_length: usize,
    interpreter_requests: usize,
    batched_requests: usize,
    verify_every_inference: bool,
) -> ServingRun {
    let config = ScNetworkConfig::new(name, kinds, stream_length, PoolingStyle::Max);
    let network = tiny_lenet(17);
    // Fused engine (serving default) and the unit-at-a-time baseline. With
    // `--verify`, every fused inference of the run re-checks itself against
    // the per-call interpreter (the CI smoke configuration).
    let engine = Engine::compile(
        &network,
        &config,
        EngineOptions {
            verify_against_interpreter: verify_every_inference,
            ..EngineOptions::default()
        },
    )
    .expect("engine compiles");
    let per_unit_options = EngineOptions {
        fuse_layers: false,
        parallel_units: false,
        ..EngineOptions::default()
    };
    let per_unit_engine =
        Engine::compile(&network, &config, per_unit_options).expect("engine compiles");
    let data = SyntheticDigits::generate(2, 23);
    let images: Vec<Tensor> = data
        .train_images
        .iter()
        .cycle()
        .take(batched_requests.max(interpreter_requests))
        .cloned()
        .collect();

    // Prove bit-exactness before timing anything: fused engine vs the
    // interpreter, and fused vs per-unit engine.
    let mut session = engine.new_session();
    engine
        .verify(&mut session, &images[..1])
        .expect("fused engine must match the interpreter bit-for-bit");
    let mut per_unit_session = per_unit_engine.new_session();
    assert_eq!(
        engine.infer(&mut session, &images[0]).expect("fused"),
        per_unit_engine
            .infer(&mut per_unit_session, &images[0])
            .expect("per-unit"),
        "fused engine must match the per-unit engine bit-for-bit"
    );

    // Interpreter, one request at a time (the pre-serving baseline).
    let interpreter = engine.interpreter();
    let start = Instant::now();
    let mut interpreter_results: Vec<Inference> = Vec::new();
    for image in &images[..interpreter_requests] {
        interpreter_results.push(interpreter.infer(image).expect("interpreter inference"));
    }
    let interpreter_rps = interpreter_requests as f64 / start.elapsed().as_secs_f64();

    // Per-unit compiled engine, one request at a time, warm session.
    let mut session = per_unit_engine.new_session();
    let start = Instant::now();
    for image in &images[..interpreter_requests] {
        let result = per_unit_engine
            .infer(&mut session, image)
            .expect("engine inference");
        std::hint::black_box(result);
    }
    let engine_per_unit_rps = interpreter_requests as f64 / start.elapsed().as_secs_f64();

    // Fused engine, serial units, one request at a time, warm session.
    sc_core::parallel::set_thread_limit(1);
    let mut session = engine.new_session();
    let start = Instant::now();
    for image in &images[..interpreter_requests] {
        let result = engine.infer(&mut session, image).expect("engine inference");
        std::hint::black_box(result);
    }
    let engine_single_rps = interpreter_requests as f64 / start.elapsed().as_secs_f64();
    sc_core::parallel::set_thread_limit(0);

    // Fused engine with single-request unit fan-out: median latency of one
    // request when its layer units spread across all available workers. The
    // session (and its pool of warm fan-out worker sessions) persists
    // across requests, matching the warm-session regime of the serial
    // number above so the two are comparable.
    let parallel_threads = sc_core::parallel::max_threads();
    let mut fan_session = engine.new_session();
    let mut parallel_latencies_ms: Vec<f64> = Vec::with_capacity(interpreter_requests);
    for image in &images[..interpreter_requests] {
        let begin = Instant::now();
        let result = engine
            .infer(&mut fan_session, image)
            .expect("engine inference");
        parallel_latencies_ms.push(begin.elapsed().as_secs_f64() * 1000.0);
        std::hint::black_box(result);
    }
    parallel_latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let parallel_single_latency_ms = percentile(&parallel_latencies_ms, 50.0);

    // Fused + batched: warm session, per-request latencies recorded.
    let mut session = engine.new_session();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(batched_requests);
    let start = Instant::now();
    for image in &images[..batched_requests] {
        let begin = Instant::now();
        let result = engine.infer(&mut session, image).expect("engine inference");
        latencies_ms.push(begin.elapsed().as_secs_f64() * 1000.0);
        std::hint::black_box(result);
    }
    let batched_elapsed = start.elapsed().as_secs_f64();
    let engine_batched_rps = batched_requests as f64 / batched_elapsed;
    latencies_ms.sort_by(|a, b| a.total_cmp(b));

    ServingRun {
        name: name.to_string(),
        layer_summary: config.layer_summary(),
        stream_length,
        interpreter_requests,
        batched_requests,
        interpreter_rps,
        engine_per_unit_rps,
        engine_single_rps,
        parallel_single_latency_ms,
        parallel_threads,
        engine_batched_rps,
        batched_p50_ms: percentile(&latencies_ms, 50.0),
        batched_p95_ms: percentile(&latencies_ms, 95.0),
        batched_p99_ms: percentile(&latencies_ms, 99.0),
        cache_hit_rate: session.cache_stats().hit_rate(),
    }
}

fn json_escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let verify = std::env::args().any(|a| a == "--verify");
    use FeatureBlockKind::{ApcMaxBtanh, MuxMaxStanh};
    let runs = if quick {
        vec![bench_config(
            "no1_style_l128_quick",
            vec![MuxMaxStanh, MuxMaxStanh, ApcMaxBtanh, ApcMaxBtanh],
            128,
            2,
            4,
            verify,
        )]
    } else {
        vec![
            // The acceptance configuration: tiny-LeNet at 1024-bit streams.
            bench_config(
                "no1_style_l1024",
                vec![MuxMaxStanh, MuxMaxStanh, ApcMaxBtanh, ApcMaxBtanh],
                1024,
                3,
                6,
                verify,
            ),
            bench_config("apc_max_l1024", vec![ApcMaxBtanh; 4], 1024, 3, 6, verify),
            bench_config(
                "no1_style_l256",
                vec![MuxMaxStanh, MuxMaxStanh, ApcMaxBtanh, ApcMaxBtanh],
                256,
                4,
                12,
                verify,
            ),
        ]
    };

    println!(
        "\n{:<22}{:>12}{:>12}{:>11}{:>12}{:>9}{:>9}{:>13}",
        "configuration",
        "interp rps",
        "perunit rps",
        "fused rps",
        "batched rps",
        "1-req x",
        "fused x",
        "par p50 ms"
    );
    for run in &runs {
        println!(
            "{:<22}{:>12.3}{:>12.3}{:>11.3}{:>12.3}{:>8.1}x{:>8.2}x{:>13.2}",
            run.name,
            run.interpreter_rps,
            run.engine_per_unit_rps,
            run.engine_single_rps,
            run.engine_batched_rps,
            run.speedup_single(),
            run.speedup_fused(),
            run.parallel_single_latency_ms
        );
    }

    let mut json = String::from("{\n");
    json.push_str("  \"generated_by\": \"cargo run --release -p sc-bench --bin bench_serving\",\n");
    json.push_str("  \"network\": \"tiny-lenet (8/16 filters, 64 hidden units)\",\n");
    json.push_str(&format!(
        "  \"threads_available\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    json.push_str(
        "  \"note\": \"fused-engine outputs verified bit-identical to the per-unit engine and \
         the per-call interpreter before timing; rps = requests/second\",\n",
    );
    json.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!(
            "      \"name\": \"{}\",\n",
            json_escape(&run.name)
        ));
        json.push_str(&format!(
            "      \"layers\": \"{}\",\n",
            json_escape(&run.layer_summary)
        ));
        json.push_str(&format!(
            "      \"stream_length\": {},\n",
            run.stream_length
        ));
        json.push_str(&format!(
            "      \"interpreter_requests\": {},\n",
            run.interpreter_requests
        ));
        json.push_str(&format!(
            "      \"batched_requests\": {},\n",
            run.batched_requests
        ));
        json.push_str(&format!(
            "      \"interpreter_single_request_rps\": {:.4},\n",
            run.interpreter_rps
        ));
        json.push_str(&format!(
            "      \"engine_per_unit_single_request_rps\": {:.4},\n",
            run.engine_per_unit_rps
        ));
        json.push_str(&format!(
            "      \"engine_fused_single_request_rps\": {:.4},\n",
            run.engine_single_rps
        ));
        json.push_str(&format!(
            "      \"engine_batched_rps\": {:.4},\n",
            run.engine_batched_rps
        ));
        json.push_str(&format!(
            "      \"speedup_single_vs_interpreter\": {:.2},\n",
            run.speedup_single()
        ));
        json.push_str(&format!(
            "      \"speedup_fused_vs_per_unit\": {:.2},\n",
            run.speedup_fused()
        ));
        json.push_str(&format!(
            "      \"speedup_batched_vs_interpreter\": {:.2},\n",
            run.speedup_batched()
        ));
        json.push_str(&format!(
            "      \"parallel_single_request_p50_ms\": {:.2},\n",
            run.parallel_single_latency_ms
        ));
        json.push_str(&format!(
            "      \"parallel_single_request_threads\": {},\n",
            run.parallel_threads
        ));
        json.push_str(&format!(
            "      \"batched_latency_p50_ms\": {:.2},\n",
            run.batched_p50_ms
        ));
        json.push_str(&format!(
            "      \"batched_latency_p95_ms\": {:.2},\n",
            run.batched_p95_ms
        ));
        json.push_str(&format!(
            "      \"batched_latency_p99_ms\": {:.2},\n",
            run.batched_p99_ms
        ));
        json.push_str(&format!(
            "      \"input_stream_cache_hit_rate\": {:.4}\n",
            run.cache_hit_rate
        ));
        json.push_str(if i + 1 == runs.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ]\n}\n");

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serving.json");
    std::fs::write(&path, &json).expect("write BENCH_serving.json");
    println!("\nwrote {}", path.display());
}
