//! Serving-path benchmark: per-call interpreter vs compiled engine.
//!
//! Measures, on the reduced LeNet (`tiny_lenet`):
//!
//! * **interpreter single-request** throughput — the per-call evaluation
//!   path (every operand stream regenerated per block call), one request at
//!   a time. This is the pre-`sc-serve` baseline.
//! * **engine (per-unit) single-request** throughput — compiled plan,
//!   pre-generated weight streams, warm stream cache, units evaluated one
//!   at a time (`fuse_layers: false`, the PR-2 engine).
//! * **engine (fused) single-request** throughput — the layer-fused path:
//!   shared operand streams, reusable MUX selector plans, shared-input APC
//!   popcounts, batched activation walks.
//! * **engine fused + unit fan-out** latency — the fused engine with
//!   `parallel_units` enabled, measuring single-request latency when one
//!   request's units spread across `sc_core::parallel` workers (equals the
//!   serial number on a single-core box; `threads` records the budget).
//! * **engine batched** throughput — the fused engine fed request-by-request
//!   through a warm session, the shape the serving runtime uses
//!   (per-request latency percentiles are recorded from this run).
//!
//! Bit-exactness (fused engine vs per-unit engine vs interpreter) is
//! verified before anything is timed. Results land in `BENCH_serving.json`
//! at the repo root.
//!
//! A **router / multi-model** phase additionally measures the scale-out
//! path: two replica servers, each hosting `--models` compiled engines
//! behind one listener, fronted by the replica router; closed-loop clients
//! drive protocol-v2 traffic across all models through the router while one
//! replica is killed mid-load. The phase asserts zero failed requests and
//! bit-exact responses before recording throughput, and runs on full
//! (recording) runs or when `--router` is passed.
//!
//! A **concurrency** phase (same gating) walks a closed-loop connection
//! ladder (64 → 256 → 1024 connections on full runs) through the hedged
//! router over two replicas — the event-loop scalability measurement. Zero
//! lost requests and bit-exact answers are asserted at every rung before
//! throughput, latency percentiles, and the hedge rate are recorded.
//!
//! An **overload** phase (same gating) bursts a pipelined load into one
//! worker behind a depth-capped queue and records the shed rate and the
//! accepted requests' tail latency, asserting zero silent losses: every
//! offered request is answered — bit-exact or a typed `OVERLOADED`.
//!
//! A **cold-start** phase (same gating) times the two replica boot paths to
//! a serving-ready engine: the storeless path (`serve --config`: train the
//! network, then lower + compile) against the plan-store path (`serve
//! --load-plan`: deserialize + deterministic weight-stream regeneration).
//! Bit-exactness between the two engines is asserted before recording.
//!
//! Run with: `cargo run --release -p sc-bench --bin bench_serving`
//! (`--quick` shrinks stream lengths and request counts for CI smoke runs;
//! `--verify` additionally re-checks every fused inference against the
//! interpreter while it is being timed; `--config no1|apc|all` restricts
//! which layer mixes run — the CI smoke jobs run `--quick --verify` and
//! `--quick --verify --config apc`; `--allocs` prints the per-run arena
//! reuse statistics; `--router` forces the router phase, `--models N` sets
//! how many engines each replica hosts).

use sc_blocks::feature_block::FeatureBlockKind;
use sc_core::cache::CacheStats;
use sc_dcnn::config::ScNetworkConfig;
use sc_nn::dataset::SyntheticDigits;
use sc_nn::lenet::{tiny_lenet, PoolingStyle};
use sc_nn::network::TrainingOptions;
use sc_nn::tensor::Tensor;
use sc_serve::batch::BatchPolicy;
use sc_serve::engine::{Engine, EngineOptions};
use sc_serve::interpreter::Inference;
use sc_serve::plan_store::{load_plan, save_plan};
use sc_serve::proto::{read_response, write_request_v2, Response};
use sc_serve::router::{spawn_router, RouterOptions};
use sc_serve::server::{spawn_multi, ServerHandle, ServerOptions};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct ServingRun {
    name: String,
    layer_summary: String,
    stream_length: usize,
    interpreter_requests: usize,
    batched_requests: usize,
    interpreter_rps: f64,
    engine_per_unit_rps: f64,
    engine_single_rps: f64,
    parallel_single_latency_ms: f64,
    parallel_threads: usize,
    engine_batched_rps: f64,
    batched_p50_ms: f64,
    batched_p95_ms: f64,
    batched_p99_ms: f64,
    cache_hit_rate: f64,
    /// Arena counters of the batched-phase session after its warm-up
    /// request, aggregated over fan-out worker sessions.
    warm_arena: sc_core::ArenaStats,
    /// The same counters at the end of the run: the alloc deltas are the
    /// steady-state allocations (zero when the arena pool covers the load).
    final_arena: sc_core::ArenaStats,
}

impl ServingRun {
    fn speedup_single(&self) -> f64 {
        self.engine_single_rps / self.interpreter_rps
    }

    fn speedup_fused(&self) -> f64 {
        self.engine_single_rps / self.engine_per_unit_rps
    }

    fn speedup_batched(&self) -> f64 {
        self.engine_batched_rps / self.interpreter_rps
    }

    /// Stream-buffer allocations after the warm-up request (zero in steady
    /// state: every buffer comes from the arena pool).
    fn steady_stream_allocs(&self) -> u64 {
        self.final_arena.stream_allocs - self.warm_arena.stream_allocs
    }

    /// Count-buffer allocations after the warm-up request.
    fn steady_count_allocs(&self) -> u64 {
        self.final_arena.count_allocs - self.warm_arena.count_allocs
    }

    /// Fraction of stream-buffer requests served from the arena pool over
    /// the whole batched phase (warm-up included).
    fn stream_reuse_rate(&self) -> f64 {
        let total = self.final_arena.stream_reuses + self.final_arena.stream_allocs;
        if total == 0 {
            0.0
        } else {
            self.final_arena.stream_reuses as f64 / total as f64
        }
    }
}

/// Nearest-rank percentile over ascending samples (indexing shared with the
/// serving metrics so the logic exists exactly once).
fn percentile(sorted: &[f64], percentile: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[sc_serve::metrics::nearest_rank_index(sorted.len(), percentile)]
}

fn bench_config(
    name: &str,
    kinds: Vec<FeatureBlockKind>,
    stream_length: usize,
    interpreter_requests: usize,
    batched_requests: usize,
    verify_every_inference: bool,
) -> ServingRun {
    let config = ScNetworkConfig::new(name, kinds, stream_length, PoolingStyle::Max);
    let network = tiny_lenet(17);
    // Fused engine (serving default) and the unit-at-a-time baseline. With
    // `--verify`, every fused inference of the run re-checks itself against
    // the per-call interpreter (the CI smoke configuration).
    let engine = Engine::compile(
        &network,
        &config,
        EngineOptions {
            verify_against_interpreter: verify_every_inference,
            ..EngineOptions::default()
        },
    )
    .expect("engine compiles");
    let per_unit_options = EngineOptions {
        fuse_layers: false,
        parallel_units: false,
        ..EngineOptions::default()
    };
    let per_unit_engine =
        Engine::compile(&network, &config, per_unit_options).expect("engine compiles");
    let data = SyntheticDigits::generate(2, 23);
    let images: Vec<Tensor> = data
        .train_images
        .iter()
        .cycle()
        .take(batched_requests.max(interpreter_requests))
        .cloned()
        .collect();

    // Prove bit-exactness before timing anything: fused engine vs the
    // interpreter, and fused vs per-unit engine.
    let mut session = engine.new_session();
    engine
        .verify(&mut session, &images[..1])
        .expect("fused engine must match the interpreter bit-for-bit");
    let mut per_unit_session = per_unit_engine.new_session();
    assert_eq!(
        engine.infer(&mut session, &images[0]).expect("fused"),
        per_unit_engine
            .infer(&mut per_unit_session, &images[0])
            .expect("per-unit"),
        "fused engine must match the per-unit engine bit-for-bit"
    );

    // Interpreter, one request at a time (the pre-serving baseline).
    let interpreter = engine.interpreter();
    let start = Instant::now();
    let mut interpreter_results: Vec<Inference> = Vec::new();
    for image in &images[..interpreter_requests] {
        interpreter_results.push(interpreter.infer(image).expect("interpreter inference"));
    }
    let interpreter_rps = interpreter_requests as f64 / start.elapsed().as_secs_f64();

    // Per-unit compiled engine, one request at a time, warm session.
    let mut session = per_unit_engine.new_session();
    let start = Instant::now();
    for image in &images[..interpreter_requests] {
        let result = per_unit_engine
            .infer(&mut session, image)
            .expect("engine inference");
        std::hint::black_box(result);
    }
    let engine_per_unit_rps = interpreter_requests as f64 / start.elapsed().as_secs_f64();

    // Fused engine, serial units, one request at a time, warm session. The
    // cache counters of every fused-engine session (each aggregated over its
    // fan-out workers) merge into one bench-wide hit rate.
    let mut cache_totals = CacheStats::default();
    sc_core::parallel::set_thread_limit(1);
    let mut session = engine.new_session();
    let start = Instant::now();
    for image in &images[..interpreter_requests] {
        let result = engine.infer(&mut session, image).expect("engine inference");
        std::hint::black_box(result);
    }
    let engine_single_rps = interpreter_requests as f64 / start.elapsed().as_secs_f64();
    sc_core::parallel::set_thread_limit(0);
    cache_totals.merge(&session.cache_stats());

    // Fused engine with single-request unit fan-out: median latency of one
    // request when its layer units spread across all available workers. The
    // session (and its pool of warm fan-out worker sessions) persists
    // across requests, matching the warm-session regime of the serial
    // number above so the two are comparable.
    let parallel_threads = sc_core::parallel::max_threads();
    let mut fan_session = engine.new_session();
    let mut parallel_latencies_ms: Vec<f64> = Vec::with_capacity(interpreter_requests);
    for image in &images[..interpreter_requests] {
        let begin = Instant::now();
        let result = engine
            .infer(&mut fan_session, image)
            .expect("engine inference");
        parallel_latencies_ms.push(begin.elapsed().as_secs_f64() * 1000.0);
        std::hint::black_box(result);
    }
    parallel_latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let parallel_single_latency_ms = percentile(&parallel_latencies_ms, 50.0);
    cache_totals.merge(&fan_session.cache_stats());

    // Fused + batched: warm session, per-request latencies recorded. The
    // arena counters are snapshotted after the first (warm-up) request; the
    // steady-state alloc delta over the remaining requests should be zero.
    let mut session = engine.new_session();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(batched_requests);
    let mut warm_arena = sc_core::ArenaStats::default();
    let start = Instant::now();
    for (i, image) in images[..batched_requests].iter().enumerate() {
        let begin = Instant::now();
        let result = engine.infer(&mut session, image).expect("engine inference");
        latencies_ms.push(begin.elapsed().as_secs_f64() * 1000.0);
        std::hint::black_box(result);
        if i == 0 {
            warm_arena = session.arena_stats();
        }
    }
    let batched_elapsed = start.elapsed().as_secs_f64();
    let engine_batched_rps = batched_requests as f64 / batched_elapsed;
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let final_arena = session.arena_stats();
    cache_totals.merge(&session.cache_stats());
    let cache_hit_rate = if cache_totals.hits + cache_totals.misses == 0 {
        0.0
    } else {
        cache_totals.hits as f64 / (cache_totals.hits + cache_totals.misses) as f64
    };

    ServingRun {
        name: name.to_string(),
        layer_summary: config.layer_summary(),
        stream_length,
        interpreter_requests,
        batched_requests,
        interpreter_rps,
        engine_per_unit_rps,
        engine_single_rps,
        parallel_single_latency_ms,
        parallel_threads,
        engine_batched_rps,
        batched_p50_ms: percentile(&latencies_ms, 50.0),
        batched_p95_ms: percentile(&latencies_ms, 95.0),
        batched_p99_ms: percentile(&latencies_ms, 99.0),
        cache_hit_rate,
        warm_arena,
        final_arena,
    }
}

/// Result of the router / multi-model serving phase.
struct RouterBenchRun {
    model_names: Vec<String>,
    stream_length: usize,
    clients: usize,
    total_requests: usize,
    router_rps: f64,
    client_p50_ms: f64,
    client_p95_ms: f64,
    failovers: u64,
    failed: u64,
    replica_forwarded: Vec<u64>,
    /// Per-stage latency percentiles, merged across both replicas' stage
    /// histograms (the log-linear histograms are mergeable by design — this
    /// is the fleet-wide view a scraper would compute).
    stage_queue_p50_ms: f64,
    stage_queue_p99_ms: f64,
    stage_compute_p50_ms: f64,
    stage_compute_p99_ms: f64,
}

/// Two multi-model replicas behind the router, driven closed-loop across
/// every model while replica A is killed mid-load. Bit-exactness against
/// direct engine inference and zero failed requests are *asserted* — a
/// recording only exists for runs that survived the kill cleanly.
fn bench_router(
    models: usize,
    stream_length: usize,
    clients: usize,
    requests_per_client: usize,
) -> RouterBenchRun {
    use FeatureBlockKind::{ApcMaxBtanh, MuxMaxStanh};
    let palette: [(&str, Vec<FeatureBlockKind>); 3] = [
        (
            "no1_style",
            vec![MuxMaxStanh, MuxMaxStanh, ApcMaxBtanh, ApcMaxBtanh],
        ),
        ("apc_max", vec![ApcMaxBtanh; 4]),
        ("mux_max", vec![MuxMaxStanh; 4]),
    ];
    let models = models.clamp(1, palette.len());
    let network = tiny_lenet(17);
    let engines: Vec<Arc<Engine>> = palette[..models]
        .iter()
        .map(|(name, kinds)| {
            let config =
                ScNetworkConfig::new(*name, kinds.clone(), stream_length, PoolingStyle::Max);
            Arc::new(
                Engine::compile(&network, &config, EngineOptions::default())
                    .expect("engine compiles"),
            )
        })
        .collect();
    let model_names: Vec<String> = palette[..models]
        .iter()
        .map(|(name, _)| (*name).to_string())
        .collect();

    let replica = |engines: &[Arc<Engine>]| -> ServerHandle {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind replica");
        spawn_multi(
            engines.to_vec(),
            listener,
            ServerOptions {
                policy: BatchPolicy {
                    max_batch: 16,
                    max_linger: Duration::from_millis(2),
                    ..BatchPolicy::default()
                },
                workers: 0,
                ..ServerOptions::default()
            },
        )
        .expect("spawn replica")
    };
    let replica_a = replica(&engines);
    let replica_b = replica(&engines);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind router");
    let router = spawn_router(
        listener,
        vec![replica_a.addr(), replica_b.addr()],
        RouterOptions {
            health_interval: Duration::from_millis(50),
            connect_timeout: Duration::from_millis(500),
            ..RouterOptions::default()
        },
    )
    .expect("spawn router");
    let addr = router.addr();

    let data = SyntheticDigits::generate(1, 5);
    let image = data.train_images[0].clone();
    let expected: Vec<Vec<f64>> = engines
        .iter()
        .map(|engine| {
            engine
                .infer(&mut engine.new_session(), &image)
                .expect("direct inference")
                .logits
        })
        .collect();

    let completed = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|client| {
            let image = image.clone();
            let expected = expected.clone();
            let completed = Arc::clone(&completed);
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect router");
                stream
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .expect("read timeout");
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let mut latencies_ms = Vec::with_capacity(requests_per_client);
                for request in 0..requests_per_client {
                    let id = (client * requests_per_client + request) as u64;
                    let model = (request % expected.len()) as u16;
                    let sent = Instant::now();
                    write_request_v2(&mut writer, id, model, [1, 28, 28], image.as_slice())
                        .expect("send");
                    match read_response(&mut reader).expect("recv") {
                        Some(Response::Ok {
                            id: rid, logits, ..
                        }) => {
                            assert_eq!(rid, id);
                            assert_eq!(
                                logits,
                                expected[usize::from(model)],
                                "routed request {id} must be bit-exact"
                            );
                        }
                        Some(Response::Err { message, .. }) => {
                            panic!("routed request {id} failed: {message}")
                        }
                        None => panic!("router closed on request {id}"),
                    }
                    latencies_ms.push(sent.elapsed().as_secs_f64() * 1000.0);
                    completed.fetch_add(1, Ordering::Relaxed);
                }
                latencies_ms
            })
        })
        .collect();

    // Stage histograms outlive the handles (shared `Arc<Metrics>`), so the
    // killed replica's spans still count toward the merged view.
    let replica_metrics = [replica_a.metrics(), replica_b.metrics()];

    // Kill replica A once every client has at least one answered request.
    while completed.load(Ordering::Relaxed) < clients {
        std::thread::sleep(Duration::from_millis(2));
    }
    replica_a.shutdown();

    let mut latencies_ms: Vec<f64> = threads
        .into_iter()
        .flat_map(|thread| thread.join().expect("client thread"))
        .collect();
    let wall = start.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let stats = router.stats();
    let total_requests = clients * requests_per_client;
    assert_eq!(
        stats.failed, 0,
        "router phase must lose no request: {stats}"
    );
    assert_eq!(stats.requests, total_requests as u64);
    let replica_forwarded = stats.backends.iter().map(|b| b.forwarded).collect();
    router.shutdown();
    replica_b.shutdown();

    // Fleet-wide per-stage percentiles: merge both replicas' histograms the
    // way a scraper aggregating worker endpoints would.
    use sc_serve::metrics::Stage;
    let merged_queue = sc_core::LogHistogram::new();
    let merged_compute = sc_core::LogHistogram::new();
    for metrics in &replica_metrics {
        merged_queue.merge(metrics.stages().get(Stage::QueueWait));
        merged_compute.merge(metrics.stages().get(Stage::Compute));
    }
    let ms = |hist: &sc_core::LogHistogram, p: f64| hist.value_at_percentile(p) as f64 / 1000.0;

    RouterBenchRun {
        model_names,
        stream_length,
        clients,
        total_requests,
        router_rps: total_requests as f64 / wall,
        client_p50_ms: percentile(&latencies_ms, 50.0),
        client_p95_ms: percentile(&latencies_ms, 95.0),
        failovers: stats.failovers,
        failed: stats.failed,
        replica_forwarded,
        stage_queue_p50_ms: ms(&merged_queue, 50.0),
        stage_queue_p99_ms: ms(&merged_queue, 99.0),
        stage_compute_p50_ms: ms(&merged_compute, 50.0),
        stage_compute_p99_ms: ms(&merged_compute, 99.0),
    }
}

/// Result of one rung of the concurrency ladder: N closed-loop connections
/// through the (hedged) router.
struct ConcurrencyBenchRun {
    connections: usize,
    total_requests: usize,
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    hedges: u64,
    hedge_wins: u64,
    failed: u64,
}

impl ConcurrencyBenchRun {
    fn hedge_rate(&self) -> f64 {
        if self.total_requests == 0 {
            0.0
        } else {
            self.hedges as f64 / self.total_requests as f64
        }
    }
}

/// Drives `connections` concurrent closed-loop clients through a hedged
/// router over two replicas — the event-loop scalability measurement. Every
/// request must be answered `Ok` and bit-exact (asserted), so a recording
/// implies zero lost requests at every rung of the ladder.
fn bench_concurrency(stream_length: usize, ladder: &[(usize, usize)]) -> Vec<ConcurrencyBenchRun> {
    use FeatureBlockKind::ApcMaxBtanh;
    let config = ScNetworkConfig::new(
        "concurrency",
        vec![ApcMaxBtanh; 4],
        stream_length,
        PoolingStyle::Max,
    );
    let network = tiny_lenet(17);
    let engine = Arc::new(
        Engine::compile(&network, &config, EngineOptions::default()).expect("engine compiles"),
    );
    let replica = || -> ServerHandle {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind replica");
        spawn_multi(
            vec![Arc::clone(&engine)],
            listener,
            ServerOptions {
                policy: BatchPolicy {
                    max_batch: 16,
                    max_linger: Duration::from_millis(2),
                    // Headroom over the deepest rung: a closed-loop client
                    // holds one request in flight, so the queue never sees
                    // more than `connections` — sheds would dirty the
                    // zero-lost-requests contract.
                    max_queue: 4096,
                },
                workers: 0,
                ..ServerOptions::default()
            },
        )
        .expect("spawn replica")
    };
    let replica_a = replica();
    let replica_b = replica();

    let data = SyntheticDigits::generate(1, 5);
    let image = data.train_images[0].clone();
    let expected = engine
        .infer(&mut engine.new_session(), &image)
        .expect("direct inference")
        .logits;

    let runs: Vec<ConcurrencyBenchRun> = ladder
        .iter()
        .map(|&(connections, per_connection)| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind router");
            let router = spawn_router(
                listener,
                vec![replica_a.addr(), replica_b.addr()],
                RouterOptions {
                    health_interval: Duration::from_millis(100),
                    connect_timeout: Duration::from_secs(2),
                    exchange_timeout: Duration::from_secs(120),
                    hedge: true,
                    hedge_delay: Duration::from_millis(50),
                    ..RouterOptions::default()
                },
            )
            .expect("spawn router");
            let addr = router.addr();
            let start = Instant::now();
            let threads: Vec<_> = (0..connections)
                .map(|client| {
                    let image = image.clone();
                    let expected = expected.clone();
                    // Small stacks: at 1024 connections the default 8 MiB
                    // per thread is pure waste for a socket-bound loop.
                    std::thread::Builder::new()
                        .stack_size(128 * 1024)
                        .spawn(move || {
                            // The connect storm can overrun the listen
                            // backlog; retry instead of failing the rung.
                            let stream = (0..10)
                                .find_map(|_| {
                                    TcpStream::connect_timeout(&addr, Duration::from_secs(5)).ok()
                                })
                                .expect("connect router");
                            stream
                                .set_read_timeout(Some(Duration::from_secs(300)))
                                .expect("read timeout");
                            let mut writer = stream.try_clone().expect("clone");
                            let mut reader = BufReader::new(stream);
                            let mut latencies_ms = Vec::with_capacity(per_connection);
                            for request in 0..per_connection {
                                let id = (client * per_connection + request) as u64;
                                let sent = Instant::now();
                                write_request_v2(&mut writer, id, 0, [1, 28, 28], image.as_slice())
                                    .expect("send");
                                match read_response(&mut reader).expect("recv") {
                                    Some(Response::Ok {
                                        id: rid, logits, ..
                                    }) => {
                                        assert_eq!(rid, id);
                                        assert_eq!(
                                            logits, expected,
                                            "request {id} must stay bit-exact at scale"
                                        );
                                    }
                                    Some(Response::Err { message, .. }) => {
                                        panic!("request {id} failed: {message}")
                                    }
                                    None => panic!("router closed on request {id}"),
                                }
                                latencies_ms.push(sent.elapsed().as_secs_f64() * 1000.0);
                            }
                            latencies_ms
                        })
                        .expect("spawn load thread")
                })
                .collect();
            let mut latencies_ms: Vec<f64> = threads
                .into_iter()
                .flat_map(|thread| thread.join().expect("load thread"))
                .collect();
            let wall = start.elapsed().as_secs_f64();
            latencies_ms.sort_by(|a, b| a.total_cmp(b));
            let stats = router.stats();
            let total_requests = connections * per_connection;
            assert_eq!(
                stats.failed, 0,
                "{connections}-connection rung must lose nothing: {stats}"
            );
            assert_eq!(stats.requests, total_requests as u64);
            router.shutdown();
            ConcurrencyBenchRun {
                connections,
                total_requests,
                rps: total_requests as f64 / wall,
                p50_ms: percentile(&latencies_ms, 50.0),
                p99_ms: percentile(&latencies_ms, 99.0),
                hedges: stats.hedges,
                hedge_wins: stats.hedge_wins,
                failed: stats.failed,
            }
        })
        .collect();
    replica_a.shutdown();
    replica_b.shutdown();
    runs
}

/// Result of the overload phase: a pipelined burst into a depth-capped
/// queue, measuring what admission control sheds and what the accepted
/// traffic's tail latency looks like *while* shedding.
struct OverloadBenchRun {
    stream_length: usize,
    offered: u64,
    accepted: u64,
    shed: u64,
    accepted_p50_ms: f64,
    accepted_p99_ms: f64,
}

impl OverloadBenchRun {
    fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }
}

/// One replica with a single worker and a shallow queue, hit with a
/// pipelined burst far beyond its capacity. Asserts zero silent losses
/// (every offered request is answered — a result or a typed `OVERLOADED`)
/// before recording shed rate and the accepted requests' latency tail.
fn bench_overload(stream_length: usize, offered: u64) -> OverloadBenchRun {
    use FeatureBlockKind::ApcMaxBtanh;
    let config = ScNetworkConfig::new(
        "overload",
        vec![ApcMaxBtanh; 4],
        stream_length,
        PoolingStyle::Max,
    );
    let network = tiny_lenet(17);
    let engine = Arc::new(
        Engine::compile(&network, &config, EngineOptions::default()).expect("engine compiles"),
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind overload replica");
    let handle = spawn_multi(
        vec![Arc::clone(&engine)],
        listener,
        ServerOptions {
            policy: BatchPolicy {
                max_batch: 1,
                max_linger: Duration::from_millis(1),
                // Shallow queue: depth is latency, so overload protection
                // sheds early instead of building a backlog.
                max_queue: 4,
            },
            workers: 1,
            ..ServerOptions::default()
        },
    )
    .expect("spawn overload replica");

    let data = SyntheticDigits::generate(1, 5);
    let image = data.train_images[0].clone();
    let expected = engine
        .infer(&mut engine.new_session(), &image)
        .expect("direct inference")
        .logits;

    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    // Pipeline the whole burst, then drain every reply.
    for id in 0..offered {
        write_request_v2(&mut writer, id, 0, [1, 28, 28], image.as_slice()).expect("send");
    }
    let mut accepted = 0u64;
    let mut shed = 0u64;
    for _ in 0..offered {
        match read_response(&mut reader).expect("recv") {
            Some(Response::Ok { logits, .. }) => {
                assert_eq!(logits, expected, "accepted requests must stay bit-exact");
                accepted += 1;
            }
            Some(Response::Err { code, message, .. }) => {
                assert_eq!(
                    code,
                    sc_serve::proto::ErrorCode::Overloaded,
                    "only typed sheds are acceptable under overload: {message}"
                );
                shed += 1;
            }
            None => panic!("server closed mid-burst — a silent loss"),
        }
    }
    assert_eq!(
        accepted + shed,
        offered,
        "zero silent loss: every offered request must be answered"
    );
    assert!(shed > 0, "the burst must overrun the queue depth");
    let report = handle.metrics().report();
    assert_eq!(
        report.shed, shed,
        "server and client shed counts must agree"
    );
    assert_eq!(report.completed, accepted);

    drop(writer);
    drop(reader);
    handle.shutdown();

    OverloadBenchRun {
        stream_length,
        offered,
        accepted,
        shed,
        accepted_p50_ms: report.p50_ms,
        accepted_p99_ms: report.p99_ms,
    }
}

/// Result of the cold-start phase: both replica boot paths timed to a
/// serving-ready engine.
struct ColdStartBenchRun {
    stream_length: usize,
    /// The storeless boot (`serve --config`): train the network, then
    /// lower + compile. Training is part of the cost — without the store
    /// the weights have to come from somewhere on every restart.
    train_compile_ms: f64,
    /// The plan-store boot (`serve --load-plan`): decode the CRC-guarded
    /// file and regenerate the weight streams deterministically.
    plan_load_ms: f64,
    /// Size of the plan-store file on disk (seeds + shapes + quantized
    /// weights, not bulk streams).
    plan_bytes: u64,
}

impl ColdStartBenchRun {
    fn speedup(&self) -> f64 {
        self.train_compile_ms / self.plan_load_ms
    }
}

/// Times the storeless boot against the plan-store boot at the same stream
/// length and asserts the two resulting engines are bit-exact before
/// anything is recorded — the rolling-upgrade path depends on a restarted
/// replica being indistinguishable from the one it replaces.
fn bench_cold_start(
    stream_length: usize,
    train_per_class: usize,
    epochs: usize,
) -> ColdStartBenchRun {
    use FeatureBlockKind::{ApcMaxBtanh, MuxMaxStanh};
    let config = ScNetworkConfig::new(
        "cold_start",
        vec![MuxMaxStanh, MuxMaxStanh, ApcMaxBtanh, ApcMaxBtanh],
        stream_length,
        PoolingStyle::Max,
    );

    // Path A: the storeless boot, exactly what `serve --config` does on
    // every start.
    let start = Instant::now();
    let data = SyntheticDigits::load_or_generate(train_per_class, 17);
    let mut network = tiny_lenet(17);
    network.train(
        &data.train_images,
        &data.train_labels,
        &TrainingOptions {
            epochs,
            learning_rate: 0.08,
            ..Default::default()
        },
    );
    let compiled =
        Engine::compile(&network, &config, EngineOptions::default()).expect("engine compiles");
    let train_compile_ms = start.elapsed().as_secs_f64() * 1000.0;

    // Persist, then path B: the `serve --load-plan` boot.
    let dir = std::env::temp_dir().join(format!("sc-bench-cold-start-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("plan dir");
    let path = dir.join("model-0.scp");
    save_plan(&path, compiled.plan(), compiled.options().plan.base_seed).expect("save plan");
    let plan_bytes = std::fs::metadata(&path).expect("plan size").len();
    let start = Instant::now();
    let loaded = load_plan(&path).expect("load plan");
    let options = loaded.engine_options();
    let restored = Engine::from_plan(loaded.plan, options).expect("engine from plan");
    let plan_load_ms = start.elapsed().as_secs_f64() * 1000.0;

    let image = data.train_images[0].clone();
    assert_eq!(
        compiled
            .infer(&mut compiled.new_session(), &image)
            .expect("compiled inference"),
        restored
            .infer(&mut restored.new_session(), &image)
            .expect("restored inference"),
        "plan-store cold start must be bit-exact with the freshly compiled engine"
    );
    let _ = std::fs::remove_dir_all(&dir);

    ColdStartBenchRun {
        stream_length,
        train_compile_ms,
        plan_load_ms,
        plan_bytes,
    }
}

fn json_escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Which layer-mix family a benchmark run belongs to (`--config` filter).
#[derive(Clone, Copy, PartialEq, Eq)]
enum ConfigFilter {
    /// The paper's No.1-style MUX-MUX-APC-APC mix.
    No1,
    /// The all-APC (accuracy-first) mix.
    Apc,
    /// Everything.
    All,
}

fn config_filter() -> ConfigFilter {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--config") {
        None => ConfigFilter::All,
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("no1") => ConfigFilter::No1,
            Some("apc") => ConfigFilter::Apc,
            Some("all") => ConfigFilter::All,
            other => panic!("--config expects no1|apc|all, got {other:?}"),
        },
    }
}

/// Number of models each replica hosts in the router phase (`--models N`).
fn models_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--models")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--models expects a count"))
        .unwrap_or(2)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let verify = std::env::args().any(|a| a == "--verify");
    let allocs = std::env::args().any(|a| a == "--allocs");
    let router_mode = std::env::args().any(|a| a == "--router");
    let models = models_arg();
    let filter = config_filter();
    use FeatureBlockKind::{ApcMaxBtanh, MuxMaxStanh};
    let no1 = [MuxMaxStanh, MuxMaxStanh, ApcMaxBtanh, ApcMaxBtanh];
    let mut runs = Vec::new();
    if quick {
        if filter != ConfigFilter::Apc {
            runs.push(bench_config(
                "no1_style_l128_quick",
                no1.to_vec(),
                128,
                2,
                4,
                verify,
            ));
        }
        if filter != ConfigFilter::No1 {
            runs.push(bench_config(
                "apc_max_l128_quick",
                vec![ApcMaxBtanh; 4],
                128,
                2,
                4,
                verify,
            ));
        }
    } else {
        if filter != ConfigFilter::Apc {
            // The acceptance configuration: tiny-LeNet at 1024-bit streams.
            runs.push(bench_config(
                "no1_style_l1024",
                no1.to_vec(),
                1024,
                3,
                6,
                verify,
            ));
        }
        if filter != ConfigFilter::No1 {
            runs.push(bench_config(
                "apc_max_l1024",
                vec![ApcMaxBtanh; 4],
                1024,
                3,
                6,
                verify,
            ));
        }
        if filter != ConfigFilter::Apc {
            runs.push(bench_config(
                "no1_style_l256",
                no1.to_vec(),
                256,
                4,
                12,
                verify,
            ));
        }
    }

    println!(
        "\n{:<22}{:>12}{:>12}{:>11}{:>12}{:>9}{:>9}{:>13}",
        "configuration",
        "interp rps",
        "perunit rps",
        "fused rps",
        "batched rps",
        "1-req x",
        "fused x",
        "par p50 ms"
    );
    for run in &runs {
        println!(
            "{:<22}{:>12.3}{:>12.3}{:>11.3}{:>12.3}{:>8.1}x{:>8.2}x{:>13.2}",
            run.name,
            run.interpreter_rps,
            run.engine_per_unit_rps,
            run.engine_single_rps,
            run.engine_batched_rps,
            run.speedup_single(),
            run.speedup_fused(),
            run.parallel_single_latency_ms
        );
    }
    // Router / multi-model phase: always part of a full recording run, and
    // forcible for smokes via `--router`.
    let full_run = !quick && filter == ConfigFilter::All;
    let router_run = if router_mode || full_run {
        let (length, clients, per_client) = if quick { (128, 2, 4) } else { (256, 4, 12) };
        println!(
            "\nrouter phase: 2 replicas x {models} models @ L={length}, {clients} clients, \
             replica A killed mid-load ..."
        );
        let run = bench_router(models, length, clients, per_client);
        println!(
            "router: {} requests ({} models: {}) -> {:.3} req/s, client p50 {:.2}ms p95 {:.2}ms, \
             {} failovers, {} failed, replicas forwarded {:?}",
            run.total_requests,
            run.model_names.len(),
            run.model_names.join("+"),
            run.router_rps,
            run.client_p50_ms,
            run.client_p95_ms,
            run.failovers,
            run.failed,
            run.replica_forwarded
        );
        println!(
            "stages (merged across replicas): queue-wait p50 {:.3}ms p99 {:.3}ms, \
             compute p50 {:.3}ms p99 {:.3}ms",
            run.stage_queue_p50_ms,
            run.stage_queue_p99_ms,
            run.stage_compute_p50_ms,
            run.stage_compute_p99_ms
        );
        Some(run)
    } else {
        None
    };

    // Concurrency ladder: the event-loop scalability measurement — N
    // closed-loop connections through the hedged router, zero lost requests
    // asserted at every rung. Same gating as the router phase.
    let concurrency_runs = if router_mode || full_run {
        let (length, ladder): (usize, &[(usize, usize)]) = if quick {
            (128, &[(8, 4), (32, 2)])
        } else {
            (128, &[(64, 8), (256, 2), (1024, 1)])
        };
        println!(
            "\nconcurrency phase: 2 replicas @ L={length}, hedged router, ladder {:?} ...",
            ladder.iter().map(|(c, _)| *c).collect::<Vec<_>>()
        );
        let runs = bench_concurrency(length, ladder);
        for run in &runs {
            println!(
                "concurrency {:>5}: {} requests -> {:.3} req/s, p50 {:.2}ms p99 {:.2}ms, \
                 {} hedges ({} won, {:.1}% of requests), {} failed",
                run.connections,
                run.total_requests,
                run.rps,
                run.p50_ms,
                run.p99_ms,
                run.hedges,
                run.hedge_wins,
                run.hedge_rate() * 100.0,
                run.failed
            );
        }
        runs
    } else {
        Vec::new()
    };

    // Overload phase: rides along with the router phase (full recording
    // runs, or forced smokes).
    let overload_run = if router_mode || full_run {
        let (length, offered) = if quick { (128, 32) } else { (256, 64) };
        println!(
            "\noverload phase: 1 worker, queue depth 4, {offered} pipelined requests \
             @ L={length} ..."
        );
        let run = bench_overload(length, offered);
        println!(
            "overload: {} offered -> {} accepted / {} shed ({:.0}% shed rate), accepted p50 \
             {:.2}ms p99 {:.2}ms, zero silent losses",
            run.offered,
            run.accepted,
            run.shed,
            run.shed_rate() * 100.0,
            run.accepted_p50_ms,
            run.accepted_p99_ms
        );
        Some(run)
    } else {
        None
    };

    // Cold-start phase: the plan-store boot vs the storeless boot — the
    // restart cost a rolling upgrade pays per replica. Same gating as the
    // router phase.
    let cold_start_run = if router_mode || full_run {
        let (length, per_class, epochs) = if quick { (128, 4, 1) } else { (1024, 20, 2) };
        println!(
            "\ncold-start phase: train+compile vs plan-store load @ L={length} \
             ({per_class} samples/class, {epochs} epochs) ..."
        );
        let run = bench_cold_start(length, per_class, epochs);
        println!(
            "cold start: train+compile {:.0}ms, plan-store load {:.1}ms -> {:.1}x faster \
             ({} plan bytes, bit-exact)",
            run.train_compile_ms,
            run.plan_load_ms,
            run.speedup(),
            run.plan_bytes
        );
        Some(run)
    } else {
        None
    };

    if allocs {
        println!("\narena reuse (batched phase):");
        for run in &runs {
            let stats = run.final_arena;
            println!(
                "{:<22} steady-state allocs: {} stream / {} count; \
                 reuse rate {:.4}; pool {} buffers / {} words",
                run.name,
                run.steady_stream_allocs(),
                run.steady_count_allocs(),
                run.stream_reuse_rate(),
                stats.pooled_streams + stats.pooled_counts,
                stats.pooled_words,
            );
        }
    }

    let mut json = String::from("{\n");
    json.push_str("  \"generated_by\": \"cargo run --release -p sc-bench --bin bench_serving\",\n");
    json.push_str("  \"network\": \"tiny-lenet (8/16 filters, 64 hidden units)\",\n");
    json.push_str(&format!(
        "  \"threads_available\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    json.push_str(
        "  \"note\": \"fused-engine outputs verified bit-identical to the per-unit engine and \
         the per-call interpreter before timing; rps = requests/second; cache hit rate is \
         aggregated across every fused-engine session of the run including fan-out worker \
         sessions; steady-state allocs are the arena's buffer allocations after the batched \
         phase's warm-up request (zero = the fused path reuses every stream/count buffer)\",\n",
    );
    json.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!(
            "      \"name\": \"{}\",\n",
            json_escape(&run.name)
        ));
        json.push_str(&format!(
            "      \"layers\": \"{}\",\n",
            json_escape(&run.layer_summary)
        ));
        json.push_str(&format!(
            "      \"stream_length\": {},\n",
            run.stream_length
        ));
        json.push_str(&format!(
            "      \"interpreter_requests\": {},\n",
            run.interpreter_requests
        ));
        json.push_str(&format!(
            "      \"batched_requests\": {},\n",
            run.batched_requests
        ));
        json.push_str(&format!(
            "      \"interpreter_single_request_rps\": {:.4},\n",
            run.interpreter_rps
        ));
        json.push_str(&format!(
            "      \"engine_per_unit_single_request_rps\": {:.4},\n",
            run.engine_per_unit_rps
        ));
        json.push_str(&format!(
            "      \"engine_fused_single_request_rps\": {:.4},\n",
            run.engine_single_rps
        ));
        json.push_str(&format!(
            "      \"engine_batched_rps\": {:.4},\n",
            run.engine_batched_rps
        ));
        json.push_str(&format!(
            "      \"speedup_single_vs_interpreter\": {:.2},\n",
            run.speedup_single()
        ));
        json.push_str(&format!(
            "      \"speedup_fused_vs_per_unit\": {:.2},\n",
            run.speedup_fused()
        ));
        json.push_str(&format!(
            "      \"speedup_batched_vs_interpreter\": {:.2},\n",
            run.speedup_batched()
        ));
        json.push_str(&format!(
            "      \"parallel_single_request_p50_ms\": {:.2},\n",
            run.parallel_single_latency_ms
        ));
        json.push_str(&format!(
            "      \"parallel_single_request_threads\": {},\n",
            run.parallel_threads
        ));
        json.push_str(&format!(
            "      \"batched_latency_p50_ms\": {:.2},\n",
            run.batched_p50_ms
        ));
        json.push_str(&format!(
            "      \"batched_latency_p95_ms\": {:.2},\n",
            run.batched_p95_ms
        ));
        json.push_str(&format!(
            "      \"batched_latency_p99_ms\": {:.2},\n",
            run.batched_p99_ms
        ));
        json.push_str(&format!(
            "      \"input_stream_cache_hit_rate\": {:.4},\n",
            run.cache_hit_rate
        ));
        json.push_str(&format!(
            "      \"steady_state_stream_allocs\": {},\n",
            run.steady_stream_allocs()
        ));
        json.push_str(&format!(
            "      \"steady_state_count_allocs\": {},\n",
            run.steady_count_allocs()
        ));
        json.push_str(&format!(
            "      \"arena_stream_reuse_rate\": {:.4}\n",
            run.stream_reuse_rate()
        ));
        json.push_str(if i + 1 == runs.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ],\n");
    if let Some(run) = &router_run {
        json.push_str("  \"router\": {\n");
        json.push_str(
            "    \"note\": \"two multi-model replicas behind the replica router; replica A \
             killed mid-load; zero failed requests and bit-exact responses asserted before \
             recording\",\n",
        );
        let names: Vec<String> = run
            .model_names
            .iter()
            .map(|name| format!("\"{}\"", json_escape(name)))
            .collect();
        json.push_str(&format!(
            "    \"models_per_replica\": [{}],\n",
            names.join(", ")
        ));
        json.push_str(&format!("    \"stream_length\": {},\n", run.stream_length));
        json.push_str(&format!("    \"clients\": {},\n", run.clients));
        json.push_str(&format!(
            "    \"total_requests\": {},\n",
            run.total_requests
        ));
        json.push_str(&format!("    \"router_rps\": {:.4},\n", run.router_rps));
        json.push_str(&format!(
            "    \"client_latency_p50_ms\": {:.2},\n",
            run.client_p50_ms
        ));
        json.push_str(&format!(
            "    \"client_latency_p95_ms\": {:.2},\n",
            run.client_p95_ms
        ));
        json.push_str(&format!("    \"failovers\": {},\n", run.failovers));
        json.push_str(&format!("    \"failed_requests\": {},\n", run.failed));
        json.push_str(&format!(
            "    \"replica_forwarded\": [{}]\n",
            run.replica_forwarded
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ));
        json.push_str("  },\n");
    } else {
        json.push_str("  \"router\": null,\n");
    }
    if let Some(run) = &router_run {
        json.push_str("  \"stages\": {\n");
        json.push_str(
            "    \"note\": \"per-stage serving latency during the router phase, merged across \
             both replicas' log-linear stage histograms (the same aggregation a scraper of the \
             per-replica /metrics endpoints would compute)\",\n",
        );
        json.push_str(&format!(
            "    \"queue_wait_p50_ms\": {:.3},\n",
            run.stage_queue_p50_ms
        ));
        json.push_str(&format!(
            "    \"queue_wait_p99_ms\": {:.3},\n",
            run.stage_queue_p99_ms
        ));
        json.push_str(&format!(
            "    \"compute_p50_ms\": {:.3},\n",
            run.stage_compute_p50_ms
        ));
        json.push_str(&format!(
            "    \"compute_p99_ms\": {:.3}\n",
            run.stage_compute_p99_ms
        ));
        json.push_str("  },\n");
    } else {
        json.push_str("  \"stages\": null,\n");
    }
    if concurrency_runs.is_empty() {
        json.push_str("  \"concurrency\": null,\n");
    } else {
        json.push_str("  \"concurrency\": {\n");
        json.push_str(
            "    \"note\": \"closed-loop connection ladder through the hedged router over two \
             replicas; every request asserted answered Ok and bit-exact before recording (zero \
             lost requests at every rung); hedge rate = hedges / requests\",\n",
        );
        json.push_str("    \"rungs\": [\n");
        for (i, run) in concurrency_runs.iter().enumerate() {
            json.push_str("      {\n");
            json.push_str(&format!("        \"connections\": {},\n", run.connections));
            json.push_str(&format!(
                "        \"total_requests\": {},\n",
                run.total_requests
            ));
            json.push_str(&format!("        \"throughput_rps\": {:.4},\n", run.rps));
            json.push_str(&format!("        \"latency_p50_ms\": {:.2},\n", run.p50_ms));
            json.push_str(&format!("        \"latency_p99_ms\": {:.2},\n", run.p99_ms));
            json.push_str(&format!("        \"hedges\": {},\n", run.hedges));
            json.push_str(&format!("        \"hedge_wins\": {},\n", run.hedge_wins));
            json.push_str(&format!(
                "        \"hedge_rate\": {:.4},\n",
                run.hedge_rate()
            ));
            json.push_str(&format!("        \"failed_requests\": {}\n", run.failed));
            json.push_str(if i + 1 == concurrency_runs.len() {
                "      }\n"
            } else {
                "      },\n"
            });
        }
        json.push_str("    ]\n");
        json.push_str("  },\n");
    }
    if let Some(run) = &overload_run {
        json.push_str("  \"overload\": {\n");
        json.push_str(
            "    \"note\": \"single worker behind a depth-4 queue hit with a pipelined burst; \
             zero-silent-loss asserted before recording (every offered request answered with a \
             bit-exact result or a typed OVERLOADED); latencies are the accepted requests' \
             server-side figures while shedding\",\n",
        );
        json.push_str(&format!("    \"stream_length\": {},\n", run.stream_length));
        json.push_str(&format!("    \"offered_requests\": {},\n", run.offered));
        json.push_str(&format!("    \"accepted_requests\": {},\n", run.accepted));
        json.push_str(&format!("    \"shed_requests\": {},\n", run.shed));
        json.push_str(&format!("    \"shed_rate\": {:.4},\n", run.shed_rate()));
        json.push_str(&format!(
            "    \"accepted_latency_p50_ms\": {:.2},\n",
            run.accepted_p50_ms
        ));
        json.push_str(&format!(
            "    \"accepted_latency_p99_ms\": {:.2},\n",
            run.accepted_p99_ms
        ));
        json.push_str("    \"silent_losses\": 0\n");
        json.push_str("  },\n");
    } else {
        json.push_str("  \"overload\": null,\n");
    }
    if let Some(run) = &cold_start_run {
        json.push_str("  \"cold_start\": {\n");
        json.push_str(
            "    \"note\": \"time to a serving-ready engine: the storeless boot (train + lower \
             + compile, what `serve --config` does on every start) vs the plan-store boot \
             (`serve --load-plan`: decode the CRC-guarded file + regenerate weight streams \
             deterministically); the two engines asserted bit-exact before recording\",\n",
        );
        json.push_str(&format!("    \"stream_length\": {},\n", run.stream_length));
        json.push_str(&format!(
            "    \"train_compile_ms\": {:.1},\n",
            run.train_compile_ms
        ));
        json.push_str(&format!("    \"plan_load_ms\": {:.2},\n", run.plan_load_ms));
        json.push_str(&format!("    \"plan_file_bytes\": {},\n", run.plan_bytes));
        json.push_str(&format!("    \"speedup\": {:.1}\n", run.speedup()));
        json.push_str("  }\n");
    } else {
        json.push_str("  \"cold_start\": null\n");
    }
    json.push_str("}\n");

    // Only a full, unfiltered run may replace the committed recording: a
    // `--quick` smoke or a `--config` subset would silently clobber the
    // three-run reference with partial rows.
    if quick || filter != ConfigFilter::All {
        println!(
            "\nskipping BENCH_serving.json write (partial run: --quick / --config); \
             rerun without those flags to refresh the recording"
        );
        return;
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serving.json");
    std::fs::write(&path, &json).expect("write BENCH_serving.json");
    println!("\nwrote {}", path.display());
}
