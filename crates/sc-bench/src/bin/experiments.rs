//! Runs the complete experiment suite (all tables and figures) in one go.
use sc_bench::ExperimentSettings;

fn main() {
    let settings = ExperimentSettings::from_args(std::env::args().skip(1));
    let _ = sc_bench::run_table1(&settings);
    let _ = sc_bench::run_table2(&settings);
    let _ = sc_bench::run_table3(&settings);
    let _ = sc_bench::run_table4(&settings);
    let _ = sc_bench::run_table5(&settings);
    let _ = sc_bench::run_fig9(&settings);
    let _ = sc_bench::run_fig13(&settings);
    let _ = sc_bench::run_fig14(&settings);
    let _ = sc_bench::run_fig15();
    let _ = sc_bench::run_fig16(&settings);
    let _ = sc_bench::run_table6(&settings);
    let _ = sc_bench::run_table7(&settings);
    let _ = sc_bench::run_weight_storage(&settings);
    println!("\nAll experiments completed.");
}
