//! Regenerates Table 6 (LeNet-5 configurations) of the SC-DCNN paper.
use sc_bench::ExperimentSettings;

fn main() {
    let settings = ExperimentSettings::from_args(std::env::args().skip(1));
    let _ = sc_bench::run_table6(&settings);
}
