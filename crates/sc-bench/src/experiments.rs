//! One function per table / figure of the paper's evaluation.
//!
//! Every function prints a human-readable table to stdout and returns the
//! raw data so tests (and downstream tooling) can assert on the trends
//! rather than scrape text.

use crate::settings::ExperimentSettings;
use sc_blocks::accuracy::{
    apc_vs_exact_error, feature_block_inaccuracy, hardware_max_pool_deviation,
    mux_inner_product_error, or_inner_product_error, stanh_inaccuracy, stanh_transfer_point,
};
use sc_blocks::feature_block::FeatureBlockKind;
use sc_dcnn::config::table6_configurations;
use sc_dcnn::error_model::{ErrorInjection, FebErrorModel};
use sc_dcnn::mapping::lenet5_cost;
use sc_dcnn::optimizer::CandidateEvaluation;
use sc_dcnn::platforms::{paper_scdcnn_rows, reference_platforms, PlatformRow};
use sc_dcnn::report;
use sc_dcnn::weight_storage::{
    evaluate_layer_wise_precision, evaluate_single_layer_precision, evaluate_uniform_precision,
    lenet5_sram_savings,
};
use sc_hw::block_cost::{feature_block_report, FeatureBlockCostReport};
use sc_nn::dataset::SyntheticDigits;
use sc_nn::lenet::tiny_lenet;
use sc_nn::network::{Network, TrainingOptions};

/// Input sizes swept by the inner-product tables (Tables 1–3).
pub const INNER_PRODUCT_SIZES: [usize; 3] = [16, 32, 64];

/// A generic labelled measurement grid: one row label, one value per column.
#[derive(Debug, Clone, PartialEq)]
pub struct GridRow {
    /// Row label (e.g. "Unipolar inputs" or an input size).
    pub label: String,
    /// One value per swept column.
    pub values: Vec<f64>,
}

fn print_grid(title: &str, column_header: &str, columns: &[String], rows: &[GridRow]) {
    println!("\n=== {title} ===");
    print!("{column_header:<18}");
    for column in columns {
        print!("{column:>12}");
    }
    println!();
    for row in rows {
        print!("{:<18}", row.label);
        for value in &row.values {
            print!("{value:>12.4}");
        }
        println!();
    }
}

/// Table 1: absolute errors of the OR-gate inner-product block.
pub fn run_table1(settings: &ExperimentSettings) -> Vec<GridRow> {
    let stream_length = 1024;
    let mut rows = Vec::new();
    for (label, unipolar) in [("Unipolar inputs", true), ("Bipolar inputs", false)] {
        let values = INNER_PRODUCT_SIZES
            .iter()
            .map(|&n| {
                or_inner_product_error(unipolar, n, stream_length, settings.trials, settings.seed)
                    .mean_absolute
            })
            .collect();
        rows.push(GridRow {
            label: label.to_string(),
            values,
        });
    }
    let columns: Vec<String> = INNER_PRODUCT_SIZES.iter().map(|n| n.to_string()).collect();
    print_grid(
        "Table 1: absolute error of OR-gate inner product (L = 1024)",
        "Input size",
        &columns,
        &rows,
    );
    rows
}

/// Table 2: absolute errors of the MUX inner-product block.
pub fn run_table2(settings: &ExperimentSettings) -> Vec<GridRow> {
    let lengths = [512usize, 1024, 2048, 4096];
    let mut rows = Vec::new();
    for &n in &INNER_PRODUCT_SIZES {
        let values = lengths
            .iter()
            .map(|&l| mux_inner_product_error(n, l, settings.trials, settings.seed).mean_absolute)
            .collect();
        rows.push(GridRow {
            label: n.to_string(),
            values,
        });
    }
    let columns: Vec<String> = lengths.iter().map(|l| l.to_string()).collect();
    print_grid(
        "Table 2: absolute error of MUX inner product vs bit-stream length",
        "Input size",
        &columns,
        &rows,
    );
    rows
}

/// Table 3: relative errors of the APC vs the conventional parallel counter.
pub fn run_table3(settings: &ExperimentSettings) -> Vec<GridRow> {
    let lengths = [128usize, 256, 384, 512];
    let mut rows = Vec::new();
    for &n in &INNER_PRODUCT_SIZES {
        let values = lengths
            .iter()
            .map(|&l| {
                apc_vs_exact_error(n, l, settings.trials, settings.seed).mean_relative * 100.0
            })
            .collect();
        rows.push(GridRow {
            label: n.to_string(),
            values,
        });
    }
    let columns: Vec<String> = lengths.iter().map(|l| l.to_string()).collect();
    print_grid(
        "Table 3: relative error (%) of APC vs conventional parallel counter",
        "Input size",
        &columns,
        &rows,
    );
    rows
}

/// Table 4: relative deviation of hardware-oriented max pooling.
pub fn run_table4(settings: &ExperimentSettings) -> Vec<GridRow> {
    let lengths = [128usize, 256, 384, 512];
    let pool_sizes = [4usize, 9, 16];
    let mut rows = Vec::new();
    for &n in &pool_sizes {
        let values = lengths
            .iter()
            .map(|&l| {
                hardware_max_pool_deviation(n, l, 16, settings.trials, settings.seed).mean_relative
            })
            .collect();
        rows.push(GridRow {
            label: n.to_string(),
            values,
        });
    }
    let columns: Vec<String> = lengths.iter().map(|l| l.to_string()).collect();
    print_grid(
        "Table 4: relative deviation of hardware-oriented max pooling vs software max",
        "Input size",
        &columns,
        &rows,
    );
    rows
}

/// Table 5: Stanh state count versus relative inaccuracy.
pub fn run_table5(settings: &ExperimentSettings) -> Vec<(usize, f64)> {
    let stream_length = 8192;
    let states = [8usize, 10, 12, 14, 16, 18, 20];
    let points: Vec<(usize, f64)> = states
        .iter()
        .map(|&k| {
            let summary = stanh_inaccuracy(k, stream_length, settings.trials, settings.seed);
            (k, summary.mean_relative * 100.0)
        })
        .collect();
    println!("\n=== Table 5: Stanh state count vs relative inaccuracy (L = 8192) ===");
    println!("{:<14}{:>20}", "State number", "Rel. inaccuracy (%)");
    for (k, inaccuracy) in &points {
        println!("{k:<14}{inaccuracy:>20.2}");
    }
    points
}

/// Figure 9: the Stanh transfer curve compared to tanh(K·x/2).
pub fn run_fig9(settings: &ExperimentSettings) -> Vec<(f64, f64, f64)> {
    let states = 8usize;
    let stream_length = 8192;
    let mut points = Vec::new();
    let steps = 21;
    for i in 0..steps {
        let x = -1.0 + 2.0 * i as f64 / (steps - 1) as f64;
        let measured = stanh_transfer_point(states, stream_length, x, settings.seed + i as u64);
        let reference = (states as f64 / 2.0 * x).tanh();
        points.push((x, measured, reference));
    }
    println!("\n=== Figure 9: Stanh(8, x) vs tanh(4x) ===");
    println!("{:<10}{:>14}{:>14}", "x", "Stanh", "tanh(4x)");
    for (x, measured, reference) in &points {
        println!("{x:<10.2}{measured:>14.4}{reference:>14.4}");
    }
    points
}

/// Trains the reduced LeNet used by the network-level experiments and
/// returns it together with its dataset.
pub fn trained_network(settings: &ExperimentSettings) -> (Network, SyntheticDigits) {
    let data = SyntheticDigits::generate(settings.train_per_class, settings.seed);
    let mut network = tiny_lenet(settings.seed);
    let options = TrainingOptions {
        epochs: settings.epochs,
        learning_rate: 0.08,
        shuffle_seed: settings.seed,
        learning_rate_decay: 0.9,
    };
    network.train(&data.train_images, &data.train_labels, &options);
    (network, data)
}

/// Figure 13: network error rate versus weight precision, per layer and for
/// all layers simultaneously. Returns `(precision, error_rate)` series keyed
/// by their label.
pub fn run_fig13(settings: &ExperimentSettings) -> Vec<(String, Vec<(usize, f64)>)> {
    let (mut network, data) = trained_network(settings);
    let baseline = network.error_rate(&data.test_images, &data.test_labels);
    let precisions = [2usize, 3, 4, 5, 6, 7, 8, 10, 12];
    let mut series = Vec::new();
    for layer in 0..3 {
        let points: Vec<(usize, f64)> = precisions
            .iter()
            .map(|&bits| {
                let eval = evaluate_single_layer_precision(
                    &mut network,
                    layer,
                    bits,
                    &data.test_images,
                    &data.test_labels,
                );
                (bits, eval.error_rate)
            })
            .collect();
        series.push((format!("Layer{layer}"), points));
    }
    let all_points: Vec<(usize, f64)> = precisions
        .iter()
        .map(|&bits| {
            let eval = evaluate_uniform_precision(
                &mut network,
                bits,
                &data.test_images,
                &data.test_labels,
            );
            (bits, eval.error_rate)
        })
        .collect();
    series.push(("All layers".to_string(), all_points));
    println!(
        "\n=== Figure 13: network error rate vs weight precision (baseline {:.3}) ===",
        baseline
    );
    print!("{:<12}", "Bits");
    for (label, _) in &series {
        print!("{label:>12}");
    }
    println!();
    for (index, &bits) in precisions.iter().enumerate() {
        print!("{bits:<12}");
        for (_, points) in &series {
            print!("{:>12.3}", points[index].1);
        }
        println!();
    }
    series
}

/// Figure 14: feature-extraction-block inaccuracy versus input size for the
/// four configurations and several bit-stream lengths.
pub fn run_fig14(settings: &ExperimentSettings) -> Vec<(FeatureBlockKind, usize, usize, f64)> {
    let input_sizes = [16usize, 32, 64, 128, 256];
    let lengths = [256usize, 512, 1024];
    // The 60 (kind × N × L) design points are independent simulations, so
    // they fan out across threads; results are collected in sweep order and
    // printed afterwards, keeping the output (and the returned series)
    // bit-identical to a serial run.
    let design_points: Vec<(FeatureBlockKind, usize, usize)> = FeatureBlockKind::ALL
        .into_iter()
        .flat_map(|kind| {
            input_sizes
                .into_iter()
                .flat_map(move |n| lengths.into_iter().map(move |l| (kind, n, l)))
        })
        .collect();
    let points: Vec<(FeatureBlockKind, usize, usize, f64)> =
        sc_core::parallel::parallel_map(&design_points, |_, &(kind, n, l)| {
            let summary =
                feature_block_inaccuracy(kind, n, l, settings.trials.min(24), settings.seed);
            (kind, n, l, summary.mean_absolute)
        });
    println!("\n=== Figure 14: feature extraction block inaccuracy vs input size ===");
    let mut cursor = points.iter();
    for kind in FeatureBlockKind::ALL {
        println!("\n-- {} --", kind.name());
        print!("{:<12}", "Input size");
        for &l in &lengths {
            print!("{:>12}", format!("L={l}"));
        }
        println!();
        for &n in &input_sizes {
            print!("{n:<12}");
            for _ in &lengths {
                let &(_, _, _, mean_absolute) = cursor.next().expect("one result per design point");
                print!("{mean_absolute:>12.4}");
            }
            println!();
        }
    }
    points
}

/// Figure 15: feature-extraction-block area / delay / power / energy versus
/// input size (bit-stream length fixed at 1024).
pub fn run_fig15() -> Vec<FeatureBlockCostReport> {
    let input_sizes = [16usize, 32, 64, 128, 256];
    let mut reports = Vec::new();
    println!(
        "\n=== Figure 15: feature extraction block hardware cost vs input size (L = 1024) ==="
    );
    println!(
        "{:<16}{:>12}{:>14}{:>14}{:>12}{:>14}",
        "Design", "Input size", "Area (um2)", "Delay (ns)", "Power (mW)", "Energy (pJ)"
    );
    for kind in FeatureBlockKind::ALL {
        for &n in &input_sizes {
            let report = feature_block_report(kind, n, 1024);
            println!(
                "{:<16}{:>12}{:>14.1}{:>14.3}{:>12.4}{:>14.1}",
                kind.name(),
                n,
                report.area_um2,
                report.path_delay_ns,
                report.power_mw,
                report.energy_pj
            );
            reports.push(report);
        }
    }
    reports
}

/// Figure 16: sensitivity of the network accuracy to inaccuracy injected in
/// a single layer. Returns `(layer, sigma, error_rate)` points.
pub fn run_fig16(settings: &ExperimentSettings) -> Vec<(usize, f64, f64)> {
    let (mut network, data) = trained_network(settings);
    let sigmas = [0.0f64, 0.1, 0.2, 0.4, 0.6];
    let mut points = Vec::new();
    println!("\n=== Figure 16: per-layer sensitivity to injected inaccuracy ===");
    print!("{:<10}", "Sigma");
    for layer in 0..3 {
        print!("{:>12}", format!("Layer{layer}"));
    }
    println!();
    let model = FebErrorModel::new(settings.calibration_trials, settings.seed);
    let injection = ErrorInjection::lenet5(&model);
    for &sigma in &sigmas {
        print!("{sigma:<10.2}");
        for layer in 0..3 {
            // Build a synthetic configuration whose calibrated sigmas are
            // overridden so only one layer sees noise: evaluate directly via
            // the injection helper by constructing per-layer sigma vectors.
            let mut layer_sigmas = vec![0.0; 3];
            layer_sigmas[layer] = sigma;
            let error = error_rate_with_sigmas(
                &mut network,
                &injection,
                &layer_sigmas,
                &data,
                settings.seed + layer as u64,
            );
            print!("{error:>12.3}");
            points.push((layer, sigma, error));
        }
        println!();
    }
    points
}

/// Evaluates the trained network with explicit per-layer noise sigmas by
/// routing through the error-injection machinery with a custom configuration.
fn error_rate_with_sigmas(
    network: &mut Network,
    _injection: &ErrorInjection<'_>,
    sigmas: &[f64],
    data: &SyntheticDigits,
    seed: u64,
) -> f64 {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut errors = 0usize;
    for (image, &label) in data.test_images.iter().zip(data.test_labels.iter()) {
        let mut current = image.clone();
        let mut activation_index = 0usize;
        let layer_count = network.layer_count();
        for (index, layer) in network.layers_mut().iter_mut().enumerate() {
            current = layer.forward(&current);
            let is_last = index + 1 == layer_count;
            let sigma = if layer.name() == "tanh" {
                let s = sigmas.get(activation_index).copied().unwrap_or(0.0);
                activation_index += 1;
                s
            } else if is_last {
                sigmas.last().copied().unwrap_or(0.0)
            } else {
                0.0
            };
            if sigma > 0.0 {
                for value in current.as_mut_slice() {
                    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                    let u2: f32 = rng.gen_range(0.0..1.0);
                    let noise = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
                    *value = (*value + noise * sigma as f32).clamp(-5.0, 5.0);
                }
            }
        }
        if current.argmax() != label {
            errors += 1;
        }
    }
    errors as f64 / data.test_images.len() as f64
}

/// Table 6: the twelve LeNet-5 configurations with accuracy degradation and
/// hardware cost.
pub fn run_table6(settings: &ExperimentSettings) -> Vec<CandidateEvaluation> {
    let (mut network, data) = trained_network(settings);
    let model = FebErrorModel::new(settings.calibration_trials, settings.seed);
    let injection = ErrorInjection::lenet5(&model);
    let mut evaluations = Vec::new();
    println!("\n=== Table 6: SC-DCNN LeNet-5 configurations ===");
    println!("{}", report::table6_header());
    for config in table6_configurations() {
        let inaccuracy = injection.inaccuracy_percent(
            &mut network,
            &config,
            &data.test_images,
            &data.test_labels,
            settings.seed,
        );
        let evaluation = CandidateEvaluation {
            cost: lenet5_cost(&config),
            inaccuracy_percent: inaccuracy,
            meets_accuracy: inaccuracy <= 1.5,
            config,
        };
        println!("{}", report::table6_row(&evaluation));
        evaluations.push(evaluation);
    }
    evaluations
}

/// Table 7: platform comparison. Returns the full set of rows (published
/// references, the paper's SC-DCNN rows, and this reproduction's measured
/// No.6 / No.11 rows).
pub fn run_table7(settings: &ExperimentSettings) -> Vec<PlatformRow> {
    let (mut network, data) = trained_network(settings);
    let model = FebErrorModel::new(settings.calibration_trials, settings.seed);
    let injection = ErrorInjection::lenet5(&model);
    let baseline_error = network.error_rate(&data.test_images, &data.test_labels);
    let mut rows = reference_platforms();
    rows.extend(paper_scdcnn_rows());
    for config in table6_configurations() {
        if config.name == "No.6" || config.name == "No.11" {
            let cost = lenet5_cost(&config);
            let noisy_error = injection.error_rate(
                &mut network,
                &config,
                &data.test_images,
                &data.test_labels,
                settings.seed,
            );
            let accuracy = (1.0 - noisy_error.max(baseline_error)) * 100.0;
            rows.push(PlatformRow {
                platform: if config.name == "No.6" {
                    "SC-DCNN (No.6, this repro)"
                } else {
                    "SC-DCNN (No.11, this repro)"
                },
                dataset: "Synthetic digits",
                network_type: "CNN",
                year: 2016,
                platform_type: "ASIC",
                area_mm2: Some(cost.area_mm2),
                power_w: Some(cost.power_w),
                accuracy_percent: Some(accuracy),
                throughput_images_per_s: cost.throughput_images_per_s,
                area_efficiency: Some(cost.area_efficiency),
                energy_efficiency: cost.energy_efficiency,
            });
        }
    }
    println!("\n=== Table 7: platform comparison ===");
    println!("{}", report::table7_header());
    for row in &rows {
        println!("{}", report::table7_row(row));
    }
    rows
}

/// Section 5.2 / 5.3: weight-storage savings of low-precision and layer-wise
/// precision schemes, plus their accuracy impact on the trained network.
pub fn run_weight_storage(settings: &ExperimentSettings) -> Vec<(String, f64, f64, f64)> {
    let (mut network, data) = trained_network(settings);
    let baseline_error = network.error_rate(&data.test_images, &data.test_labels);
    let mut rows = Vec::new();
    let uniform7 =
        evaluate_uniform_precision(&mut network, 7, &data.test_images, &data.test_labels);
    rows.push((
        "uniform 7-bit".to_string(),
        uniform7.area_saving,
        uniform7.power_saving,
        uniform7.error_rate,
    ));
    let layerwise = evaluate_layer_wise_precision(
        &mut network,
        &[7, 7, 6],
        &data.test_images,
        &data.test_labels,
    );
    rows.push((
        "layer-wise 7-7-6".to_string(),
        layerwise.area_saving,
        layerwise.power_saving,
        layerwise.error_rate,
    ));
    let (area_64, power_64) = lenet5_sram_savings(&[64, 64, 64]);
    rows.push((
        "64-bit baseline".to_string(),
        area_64,
        power_64,
        baseline_error,
    ));
    println!("\n=== Section 5: weight storage optimization ===");
    println!(
        "{:<20}{:>16}{:>16}{:>14}",
        "Scheme", "Area saving", "Power saving", "Error rate"
    );
    for (label, area, power, error) in &rows {
        println!("{label:<20}{area:>15.1}x{power:>15.1}x{error:>14.3}");
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_settings() -> ExperimentSettings {
        ExperimentSettings {
            trials: 6,
            train_per_class: 6,
            epochs: 1,
            calibration_trials: 3,
            seed: 99,
        }
    }

    #[test]
    fn table1_bipolar_is_worse_than_unipolar() {
        let rows = run_table1(&tiny_settings());
        assert_eq!(rows.len(), 2);
        for (uni, bip) in rows[0].values.iter().zip(rows[1].values.iter()) {
            assert!(
                bip > uni,
                "bipolar OR error should exceed unipolar ({bip} vs {uni})"
            );
        }
    }

    #[test]
    fn table2_error_drops_with_length() {
        let rows = run_table2(&tiny_settings());
        for row in rows {
            assert!(
                row.values.first().unwrap() > row.values.last().unwrap(),
                "MUX error should decrease with longer streams"
            );
        }
    }

    #[test]
    fn table3_errors_are_small_percentages() {
        let rows = run_table3(&tiny_settings());
        for row in rows {
            for value in row.values {
                assert!(
                    value < 5.0,
                    "APC relative error {value}% unexpectedly large"
                );
            }
        }
    }

    #[test]
    fn table5_has_a_minimum_in_the_swept_range() {
        let points = run_table5(&tiny_settings());
        assert_eq!(points.len(), 7);
        assert!(points.iter().all(|(_, e)| *e > 0.0));
    }

    #[test]
    fn fig15_orders_designs_by_cost() {
        let reports = run_fig15();
        let area = |kind: FeatureBlockKind, n: usize| {
            reports
                .iter()
                .find(|r| r.kind == kind && r.input_size == n)
                .map(|r| r.area_um2)
                .unwrap()
        };
        for &n in &[16usize, 64, 256] {
            assert!(
                area(FeatureBlockKind::MuxAvgStanh, n) <= area(FeatureBlockKind::ApcMaxBtanh, n)
            );
        }
    }

    #[test]
    fn weight_storage_savings_match_paper_magnitude() {
        let rows = run_weight_storage(&tiny_settings());
        let layerwise = rows
            .iter()
            .find(|(label, ..)| label.contains("7-7-6"))
            .unwrap();
        assert!(
            layerwise.1 > 5.0,
            "7-7-6 area saving {} too small",
            layerwise.1
        );
    }
}
