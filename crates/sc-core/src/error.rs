//! Error type shared by the `sc-core` public API.

use std::fmt;

/// Errors produced by stochastic-computing primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum ScError {
    /// A value was outside the representable range of the requested encoding.
    ///
    /// Unipolar encoding represents `[0, 1]`; bipolar encoding represents
    /// `[-1, 1]`. Values outside the range must be pre-scaled first (see
    /// [`crate::encoding::prescale`]).
    ValueOutOfRange {
        /// The offending value.
        value: f64,
        /// Lower bound of the representable range.
        min: f64,
        /// Upper bound of the representable range.
        max: f64,
    },
    /// Two streams that must have equal length had different lengths.
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// A stream length of zero (or otherwise unusable) was requested.
    InvalidLength(usize),
    /// An operation required a non-empty set of inputs but none were given.
    EmptyInput,
    /// A configuration parameter was invalid (for example a zero-state FSM).
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        message: String,
    },
}

impl fmt::Display for ScError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScError::ValueOutOfRange { value, min, max } => {
                write!(
                    f,
                    "value {value} is outside the representable range [{min}, {max}]"
                )
            }
            ScError::LengthMismatch { left, right } => {
                write!(f, "bit-stream length mismatch: {left} vs {right}")
            }
            ScError::InvalidLength(len) => write!(f, "invalid bit-stream length {len}"),
            ScError::EmptyInput => write!(f, "operation requires at least one input"),
            ScError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
        }
    }
}

impl std::error::Error for ScError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            ScError::ValueOutOfRange {
                value: 2.0,
                min: -1.0,
                max: 1.0,
            },
            ScError::LengthMismatch { left: 8, right: 16 },
            ScError::InvalidLength(0),
            ScError::EmptyInput,
            ScError::InvalidParameter {
                name: "states",
                message: "must be even".into(),
            },
        ];
        for err in errors {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ScError>();
    }
}
