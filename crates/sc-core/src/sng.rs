//! Stochastic number generators (SNGs).
//!
//! An SNG converts a binary-encoded probability into a stochastic bit-stream:
//! at every cycle the probability (as a fixed-point threshold) is compared
//! against a fresh pseudo-random value; the comparator output is the stream
//! bit. The randomness source and how it is shared across SNGs dominate both
//! the correlation error and the peripheral hardware cost, so the generator
//! kind is an explicit configuration knob throughout this reproduction.

use crate::bitstream::{BitStream, StreamLength};
use crate::encoding::{Bipolar, Encoding, Unipolar};
use crate::error::ScError;
use crate::rng::{Lfsr, LfsrWidth, RandomSource, SoftwareRng};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Resolution (in bits) of the comparator threshold inside the SNG.
///
/// 16 bits comfortably exceeds the longest stream length the paper uses
/// (8192), so quantization of the threshold itself never dominates the error.
const THRESHOLD_BITS: u32 = 16;

/// The randomness source driving an SNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SngKind {
    /// 16-bit maximal-length LFSR (cheapest hardware, visible correlation).
    Lfsr16,
    /// 32-bit maximal-length LFSR (the default hardware model).
    Lfsr32,
    /// Software Mersenne-quality RNG (ideal randomness reference).
    Ideal,
}

enum Source {
    Lfsr(Lfsr),
    Ideal(SoftwareRng<StdRng>),
}

impl Source {
    fn next_threshold_sample(&mut self) -> u32 {
        let raw = match self {
            Source::Lfsr(lfsr) => lfsr.next_u32(),
            Source::Ideal(rng) => rng.next_u32(),
        };
        raw & ((1u32 << THRESHOLD_BITS) - 1)
    }
}

/// A comparator-based stochastic number generator.
///
/// Each [`Sng`] owns one randomness source. Generating several streams from
/// the *same* generator models hardware that shares one LFSR across several
/// comparators (cheap, but the streams become correlated); use separate
/// generators with different seeds to model independent LFSRs.
pub struct Sng {
    source: Source,
    kind: SngKind,
    seed: u64,
}

impl std::fmt::Debug for Sng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sng").field("kind", &self.kind).field("seed", &self.seed).finish()
    }
}

impl Sng {
    /// Creates a generator of the given kind seeded with `seed`.
    pub fn new(kind: SngKind, seed: u64) -> Self {
        let source = match kind {
            SngKind::Lfsr16 => Source::Lfsr(Lfsr::new(LfsrWidth::W16, seed as u32)),
            SngKind::Lfsr32 => Source::Lfsr(Lfsr::new(LfsrWidth::W32, seed as u32 ^ 0x9E37_79B9)),
            SngKind::Ideal => Source::Ideal(SoftwareRng::new(StdRng::seed_from_u64(seed))),
        };
        Self { source, kind, seed }
    }

    /// The generator kind.
    pub fn kind(&self) -> SngKind {
        self.kind
    }

    /// The seed the generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates a stream whose one-density approximates `probability`.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::ValueOutOfRange`] if `probability` is not within
    /// `[0, 1]`.
    pub fn generate_probability(
        &mut self,
        probability: f64,
        length: StreamLength,
    ) -> Result<BitStream, ScError> {
        if !(0.0..=1.0).contains(&probability) || probability.is_nan() {
            return Err(ScError::ValueOutOfRange { value: probability, min: 0.0, max: 1.0 });
        }
        let threshold = (probability * f64::from(1u32 << THRESHOLD_BITS)).round() as u32;
        let mut stream = BitStream::zeros(length);
        for i in 0..length.bits() {
            let sample = self.source.next_threshold_sample();
            if sample < threshold {
                stream.set(i, true);
            }
        }
        Ok(stream)
    }

    /// Generates a unipolar stream encoding `value ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::ValueOutOfRange`] for values outside `[0, 1]`.
    pub fn generate_unipolar(
        &mut self,
        value: f64,
        length: StreamLength,
    ) -> Result<BitStream, ScError> {
        let p = Unipolar::to_probability(value)?;
        self.generate_probability(p, length)
    }

    /// Generates a bipolar stream encoding `value ∈ [-1, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::ValueOutOfRange`] for values outside `[-1, 1]`.
    pub fn generate_bipolar(
        &mut self,
        value: f64,
        length: StreamLength,
    ) -> Result<BitStream, ScError> {
        let p = Bipolar::to_probability(value)?;
        self.generate_probability(p, length)
    }

    /// Generates one bipolar stream per input value, reusing this generator's
    /// randomness source for all of them (shared-LFSR hardware model).
    ///
    /// # Errors
    ///
    /// Returns an error if any value is outside `[-1, 1]` or `values` is empty.
    pub fn generate_bipolar_batch(
        &mut self,
        values: &[f64],
        length: StreamLength,
    ) -> Result<Vec<BitStream>, ScError> {
        if values.is_empty() {
            return Err(ScError::EmptyInput);
        }
        values.iter().map(|&v| self.generate_bipolar(v, length)).collect()
    }
}

/// A bank of independent SNGs, one per input lane.
///
/// This is the faithful model for an inner-product block where every input
/// and every weight has its own generator (or a rotated/offset share of a
/// larger one) so that streams entering a multiplier are uncorrelated.
#[derive(Debug)]
pub struct SngBank {
    generators: Vec<Sng>,
}

impl SngBank {
    /// Creates a bank of `lanes` generators, each seeded differently from
    /// `base_seed`.
    pub fn new(kind: SngKind, lanes: usize, base_seed: u64) -> Self {
        let generators = (0..lanes)
            .map(|lane| Sng::new(kind, base_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(lane as u64 + 1))))
            .collect();
        Self { generators }
    }

    /// Number of lanes in the bank.
    pub fn lanes(&self) -> usize {
        self.generators.len()
    }

    /// Generates one bipolar stream per value, each from its own lane.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] if `values` is empty,
    /// [`ScError::InvalidParameter`] if there are more values than lanes, and
    /// [`ScError::ValueOutOfRange`] for values outside `[-1, 1]`.
    pub fn generate_bipolar(
        &mut self,
        values: &[f64],
        length: StreamLength,
    ) -> Result<Vec<BitStream>, ScError> {
        if values.is_empty() {
            return Err(ScError::EmptyInput);
        }
        if values.len() > self.generators.len() {
            return Err(ScError::InvalidParameter {
                name: "values",
                message: format!(
                    "{} values exceed the {} available SNG lanes",
                    values.len(),
                    self.generators.len()
                ),
            });
        }
        values
            .iter()
            .zip(self.generators.iter_mut())
            .map(|(&v, sng)| sng.generate_bipolar(v, length))
            .collect()
    }

    /// Mutable access to an individual lane.
    pub fn lane_mut(&mut self, lane: usize) -> Option<&mut Sng> {
        self.generators.get_mut(lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn length() -> StreamLength {
        StreamLength::new(2048)
    }

    #[test]
    fn unipolar_density_tracks_value() {
        let mut sng = Sng::new(SngKind::Lfsr32, 11);
        for &value in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            let stream = sng.generate_unipolar(value, length()).unwrap();
            assert!(
                (stream.unipolar_value() - value).abs() < 0.05,
                "value {value} decoded as {}",
                stream.unipolar_value()
            );
        }
    }

    #[test]
    fn bipolar_density_tracks_value() {
        let mut sng = Sng::new(SngKind::Lfsr32, 13);
        for &value in &[-1.0, -0.5, 0.0, 0.5, 1.0] {
            let stream = sng.generate_bipolar(value, length()).unwrap();
            assert!(
                (stream.bipolar_value() - value).abs() < 0.08,
                "value {value} decoded as {}",
                stream.bipolar_value()
            );
        }
    }

    #[test]
    fn ideal_source_also_tracks_value() {
        let mut sng = Sng::new(SngKind::Ideal, 5);
        let stream = sng.generate_bipolar(0.3, length()).unwrap();
        assert!((stream.bipolar_value() - 0.3).abs() < 0.08);
    }

    #[test]
    fn out_of_range_values_are_rejected() {
        let mut sng = Sng::new(SngKind::Lfsr32, 1);
        assert!(sng.generate_unipolar(1.5, length()).is_err());
        assert!(sng.generate_bipolar(-1.5, length()).is_err());
        assert!(sng.generate_probability(f64::NAN, length()).is_err());
    }

    #[test]
    fn same_seed_reproduces_streams() {
        let mut a = Sng::new(SngKind::Lfsr32, 99);
        let mut b = Sng::new(SngKind::Lfsr32, 99);
        let sa = a.generate_bipolar(0.25, length()).unwrap();
        let sb = b.generate_bipolar(0.25, length()).unwrap();
        assert_eq!(sa, sb);
    }

    #[test]
    fn different_seeds_decorrelate_streams() {
        let mut a = Sng::new(SngKind::Lfsr32, 1);
        let mut b = Sng::new(SngKind::Lfsr32, 2);
        let sa = a.generate_bipolar(0.5, length()).unwrap();
        let sb = b.generate_bipolar(0.5, length()).unwrap();
        assert_ne!(sa, sb);
    }

    #[test]
    fn bank_rejects_too_many_values() {
        let mut bank = SngBank::new(SngKind::Lfsr32, 2, 7);
        assert_eq!(bank.lanes(), 2);
        let err = bank.generate_bipolar(&[0.1, 0.2, 0.3], length());
        assert!(err.is_err());
    }

    #[test]
    fn bank_lanes_are_independent() {
        let mut bank = SngBank::new(SngKind::Lfsr32, 3, 7);
        let streams = bank.generate_bipolar(&[0.5, 0.5, 0.5], length()).unwrap();
        assert_ne!(streams[0], streams[1]);
        assert_ne!(streams[1], streams[2]);
        assert!(bank.lane_mut(0).is_some());
        assert!(bank.lane_mut(3).is_none());
    }

    #[test]
    fn batch_requires_values() {
        let mut sng = Sng::new(SngKind::Lfsr32, 3);
        assert_eq!(sng.generate_bipolar_batch(&[], length()), Err(ScError::EmptyInput));
    }
}
