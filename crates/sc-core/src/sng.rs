//! Stochastic number generators (SNGs).
//!
//! An SNG converts a binary-encoded probability into a stochastic bit-stream:
//! at every cycle the probability (as a fixed-point threshold) is compared
//! against a fresh pseudo-random value; the comparator output is the stream
//! bit. The randomness source and how it is shared across SNGs dominate both
//! the correlation error and the peripheral hardware cost, so the generator
//! kind is an explicit configuration knob throughout this reproduction.

use crate::bitstream::{BitStream, StreamLength};
use crate::encoding::{Bipolar, Encoding, Unipolar};
use crate::error::ScError;
use crate::rng::{Lfsr, LfsrWidth, RandomSource, SoftwareRng};
use crate::word::{dispatch_word_kernel, Word};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Resolution (in bits) of the comparator threshold inside the SNG.
///
/// 16 bits comfortably exceeds the longest stream length the paper uses
/// (8192), so quantization of the threshold itself never dominates the error.
const THRESHOLD_BITS: u32 = 16;

/// The comparator threshold an SNG uses for a one-density of `probability`.
///
/// A generated stream is a pure function of the lane seed and this
/// threshold, which is exactly the key a [`crate::cache::StreamCache`] is
/// indexed by: two values mapping to the same threshold produce identical
/// streams from the same generator.
///
/// # Errors
///
/// Returns [`ScError::ValueOutOfRange`] if `probability` is not within
/// `[0, 1]`.
pub fn probability_threshold(probability: f64) -> Result<u32, ScError> {
    if !(0.0..=1.0).contains(&probability) || probability.is_nan() {
        return Err(ScError::ValueOutOfRange {
            value: probability,
            min: 0.0,
            max: 1.0,
        });
    }
    Ok((probability * f64::from(1u32 << THRESHOLD_BITS)).round() as u32)
}

/// The randomness source driving an SNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SngKind {
    /// 16-bit maximal-length LFSR (cheapest hardware, visible correlation).
    Lfsr16,
    /// 32-bit maximal-length LFSR (the default hardware model).
    Lfsr32,
    /// Software Mersenne-quality RNG (ideal randomness reference).
    Ideal,
}

enum Source {
    Lfsr(Lfsr),
    Ideal(SoftwareRng<StdRng>),
}

impl Source {
    /// The randomness source a fresh [`Sng`] of this kind and seed drives —
    /// the single point of truth for the per-kind seed whitening, shared by
    /// [`Sng::new`] and the batched [`BatchSng`] fill.
    fn for_seed(kind: SngKind, seed: u64) -> Self {
        match kind {
            SngKind::Lfsr16 => Source::Lfsr(Lfsr::new(LfsrWidth::W16, seed as u32)),
            SngKind::Lfsr32 => Source::Lfsr(Lfsr::new(LfsrWidth::W32, seed as u32 ^ 0x9E37_79B9)),
            SngKind::Ideal => Source::Ideal(SoftwareRng::new(StdRng::seed_from_u64(seed))),
        }
    }

    fn next_threshold_sample(&mut self) -> u32 {
        let raw = match self {
            Source::Lfsr(lfsr) => lfsr.next_u32(),
            Source::Ideal(rng) => rng.next_u32(),
        };
        raw & ((1u32 << THRESHOLD_BITS) - 1)
    }

    /// Fills `words` with comparator outputs 64 bits at a time.
    ///
    /// The enum dispatch is hoisted out of the per-bit loop: each source
    /// runs a tight word-filling loop over its own state. The default
    /// 32-bit LFSR additionally takes a batched path that generates the
    /// register's bit-sequence a byte at a time and evaluates the threshold
    /// comparator bit-sliced, 64 samples per iteration. Sample order is
    /// identical to calling [`Source::next_threshold_sample`] once per bit,
    /// so the output is bit-exact with the per-bit reference path.
    fn fill_words(
        &mut self,
        threshold: u32,
        words: &mut [u64],
        bits: usize,
        scratch: &mut Vec<u8>,
    ) {
        match self {
            Source::Lfsr(lfsr) if lfsr.width() == LfsrWidth::W32 => {
                fill_words_lfsr32_batched(lfsr, threshold, words, bits, scratch)
            }
            Source::Lfsr(lfsr) => fill_words_with(|| lfsr.next_u32(), threshold, words, bits),
            Source::Ideal(rng) => fill_words_with(|| rng.next_u32(), threshold, words, bits),
        }
    }
}

/// Batched comparator fill for the width-32 LFSR (the default hardware RNG).
///
/// The register's bit-sequence is produced by [`Lfsr::w32_sequence_into`]
/// (staged GF(2) recurrences, no per-bit serial dependency), and the
/// comparator reads `state & 0xFFFF`, i.e. the 16-bit window `c_{n-15..n}`.
/// The threshold comparison is evaluated bit-sliced — 16 shifted bit-planes
/// of the sequence against the threshold's bits — yielding 64 comparator
/// outputs per iteration.
///
/// Bit-exact with the per-bit loop: the same `c` sequence is produced (it is
/// the unique solution of the recurrence from the register seed) and the
/// register state is resynchronized at the end, so subsequent draws continue
/// the identical stream.
fn fill_words_lfsr32_batched(
    lfsr: &mut Lfsr,
    threshold: u32,
    words: &mut [u64],
    bits: usize,
    seq: &mut Vec<u8>,
) {
    if bits < 128 {
        fill_words_with(|| lfsr.next_u32(), threshold, words, bits);
        return;
    }
    let batch_bits = bits / 64 * 64;
    let batch_words = batch_bits / 64;
    let tail_bits = bits - batch_bits;
    lfsr.w32_sequence_into(batch_bits, seq);

    // Bit-sliced threshold comparison, 64 samples per iteration.
    if threshold > 0xFFFF {
        // p == 1.0: every sample satisfies `sample < threshold`.
        for word in words.iter_mut().take(batch_words) {
            *word = u64::MAX;
        }
    } else if threshold == 0 {
        for word in words.iter_mut().take(batch_words) {
            *word = 0;
        }
    } else {
        comparator_fill(seq, threshold, words, batch_words);
    }

    // Tail: remaining bits (< 64) run serially from the resynced state.
    if tail_bits > 0 {
        let mut tail_word = 0u64;
        for bit in 0..tail_bits {
            let sample = lfsr.step();
            tail_word |= u64::from((sample & 0xFFFF) < threshold) << bit;
        }
        words[batch_words] = tail_word;
    }
}

/// Extracts the 128-bit sequence window of output word `w`: sequence bits
/// `w·64 − 15 .. w·64 + 63` (buffer bit offset `w·64 + 17`). For the first
/// word the window reaches into the 32 virtual seed bits of the buffer.
#[inline(always)]
fn sequence_window(seq: &[u8], w: usize) -> u128 {
    let base = w * 64 + 32 - 15;
    let byte = base / 8;
    let shift = (base % 8) as u32;
    u128::from_le_bytes(seq[byte..byte + 16].try_into().expect("16 bytes")) >> shift
}

/// Bit-sliced threshold comparator over the staged GF(2) sequence buffer,
/// generic over the kernel backend: evaluates `sample < threshold` for
/// `64 · W::LANES` samples per iteration of the outer loop.
///
/// Per group of [`Word::LANES`] output words, each lane's 128-bit window is
/// extracted exactly as in the scalar reference; plane `j` — sample bit `j`
/// of the 64 samples of a word — is the window shifted right by `15 − j`,
/// which for the whole group is two uniform lane shifts and an OR. The
/// `lt`/`eq` comparator recurrence then runs in whole-word lane operations.
/// `lt` is final once the threshold's lowest set bit has been processed:
/// below it every threshold bit is zero, which only narrows `eq`.
#[inline(always)]
fn comparator_fill_impl<W: Word>(
    seq: &[u8],
    threshold: u32,
    words: &mut [u64],
    batch_words: usize,
) {
    debug_assert!((1..=0xFFFF).contains(&threshold));
    let low_bit = threshold.trailing_zeros();
    let mut w = 0;
    if W::LANES > 1 {
        let mut lo_lanes = [0u64; 4];
        let mut hi_lanes = [0u64; 4];
        while w + W::LANES <= batch_words {
            for (lane, (lo, hi)) in lo_lanes.iter_mut().zip(hi_lanes.iter_mut()).enumerate() {
                if lane == W::LANES {
                    break;
                }
                let window = sequence_window(seq, w + lane);
                *lo = window as u64;
                // Only the low 15 bits of the window's upper half ever feed
                // a plane (shifted left by ≥ 49), so the bits past the
                // 16-byte read being zero is immaterial.
                *hi = (window >> 64) as u64;
            }
            let lo = W::load(&lo_lanes);
            let hi = W::load(&hi_lanes);
            let mut lt = W::zero();
            let mut eq = W::splat(u64::MAX);
            for j in (low_bit..16).rev() {
                let s = 15 - j;
                let plane = if s == 0 {
                    lo
                } else {
                    lo.shr(s).or(hi.shl(64 - s))
                };
                if (threshold >> j) & 1 == 1 {
                    lt = lt.or(eq.andnot(plane));
                    eq = eq.and(plane);
                } else {
                    eq = eq.andnot(plane);
                }
            }
            lt.store(&mut words[w..w + W::LANES]);
            w += W::LANES;
        }
    }
    // Remaining words (all of them for the scalar backend): the reference
    // single-word loop.
    for out_word in words.iter_mut().take(batch_words).skip(w) {
        let window = sequence_window(seq, w);
        let mut lt = 0u64;
        let mut eq = u64::MAX;
        for j in (low_bit..16).rev() {
            let plane = (window >> (15 - j)) as u64;
            if (threshold >> j) & 1 == 1 {
                lt |= eq & !plane;
                eq &= plane;
            } else {
                eq &= !plane;
            }
        }
        *out_word = lt;
        w += 1;
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod comparator_avx2 {
    use super::*;
    use crate::word::WAvx2;

    /// # Safety
    ///
    /// The CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn comparator_fill_avx2(
        seq: &[u8],
        threshold: u32,
        words: &mut [u64],
        batch_words: usize,
    ) {
        comparator_fill_impl::<WAvx2>(seq, threshold, words, batch_words)
    }
}
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
use comparator_avx2::comparator_fill_avx2;

/// Backend-dispatched bit-sliced comparator fill.
fn comparator_fill(seq: &[u8], threshold: u32, words: &mut [u64], batch_words: usize) {
    dispatch_word_kernel!(
        comparator_fill_impl,
        comparator_fill_avx2,
        (seq, threshold, words, batch_words)
    )
}

/// Word-at-a-time comparator fill: draws one 16-bit threshold sample per bit
/// and packs the comparator outputs into `u64` words directly, eliminating
/// the per-bit `BitStream::set` bounds check / read-modify-write.
fn fill_words_with(mut raw: impl FnMut() -> u32, threshold: u32, words: &mut [u64], bits: usize) {
    let mask = (1u32 << THRESHOLD_BITS) - 1;
    let full_words = bits / 64;
    for word in words.iter_mut().take(full_words) {
        let mut packed = 0u64;
        for bit in 0..64 {
            packed |= u64::from((raw() & mask) < threshold) << bit;
        }
        *word = packed;
    }
    let tail_bits = bits % 64;
    if tail_bits != 0 {
        let mut packed = 0u64;
        for bit in 0..tail_bits {
            packed |= u64::from((raw() & mask) < threshold) << bit;
        }
        words[full_words] = packed;
    }
}

/// A comparator-based stochastic number generator.
///
/// Each [`Sng`] owns one randomness source. Generating several streams from
/// the *same* generator models hardware that shares one LFSR across several
/// comparators (cheap, but the streams become correlated); use separate
/// generators with different seeds to model independent LFSRs.
pub struct Sng {
    source: Source,
    kind: SngKind,
    seed: u64,
    /// Reusable byte buffer for the batched LFSR32 fill path.
    scratch: Vec<u8>,
}

impl std::fmt::Debug for Sng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sng")
            .field("kind", &self.kind)
            .field("seed", &self.seed)
            .finish()
    }
}

impl Sng {
    /// Creates a generator of the given kind seeded with `seed`.
    pub fn new(kind: SngKind, seed: u64) -> Self {
        Self {
            source: Source::for_seed(kind, seed),
            kind,
            seed,
            scratch: Vec::new(),
        }
    }

    /// The generator kind.
    pub fn kind(&self) -> SngKind {
        self.kind
    }

    /// The seed the generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates a stream whose one-density approximates `probability`.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::ValueOutOfRange`] if `probability` is not within
    /// `[0, 1]`.
    pub fn generate_probability(
        &mut self,
        probability: f64,
        length: StreamLength,
    ) -> Result<BitStream, ScError> {
        let mut stream = BitStream::zeros(length);
        self.generate_probability_into(probability, &mut stream)?;
        Ok(stream)
    }

    /// Fills an existing stream with a fresh encoding of `probability`,
    /// word-parallel and without allocating. Every word of `stream` is
    /// overwritten; the stream keeps its length.
    ///
    /// Output is bit-exact with [`Sng::generate_probability_bitwise`] for the
    /// same generator state: both consume one threshold sample per bit in
    /// stream order.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::ValueOutOfRange`] if `probability` is not within
    /// `[0, 1]`.
    pub fn generate_probability_into(
        &mut self,
        probability: f64,
        stream: &mut BitStream,
    ) -> Result<(), ScError> {
        let threshold = probability_threshold(probability)?;
        let bits = stream.len();
        self.source
            .fill_words(threshold, stream.words_mut(), bits, &mut self.scratch);
        Ok(())
    }

    /// Per-bit reference implementation of [`Sng::generate_probability`].
    ///
    /// This is the original comparator loop (one `BitStream::set` per bit),
    /// kept as the baseline the word-parallel fill is property-tested and
    /// benchmarked against. Not for production use.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::ValueOutOfRange`] if `probability` is not within
    /// `[0, 1]`.
    pub fn generate_probability_bitwise(
        &mut self,
        probability: f64,
        length: StreamLength,
    ) -> Result<BitStream, ScError> {
        let threshold = probability_threshold(probability)?;
        let mut stream = BitStream::zeros(length);
        for i in 0..length.bits() {
            let sample = self.source.next_threshold_sample();
            if sample < threshold {
                stream.set(i, true);
            }
        }
        Ok(stream)
    }

    /// Generates a unipolar stream encoding `value ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::ValueOutOfRange`] for values outside `[0, 1]`.
    pub fn generate_unipolar(
        &mut self,
        value: f64,
        length: StreamLength,
    ) -> Result<BitStream, ScError> {
        let p = Unipolar::to_probability(value)?;
        self.generate_probability(p, length)
    }

    /// Generates a bipolar stream encoding `value ∈ [-1, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::ValueOutOfRange`] for values outside `[-1, 1]`.
    pub fn generate_bipolar(
        &mut self,
        value: f64,
        length: StreamLength,
    ) -> Result<BitStream, ScError> {
        let p = Bipolar::to_probability(value)?;
        self.generate_probability(p, length)
    }

    /// Fills an existing stream with a unipolar encoding of `value ∈ [0, 1]`
    /// (allocation-free variant of [`Sng::generate_unipolar`]).
    ///
    /// # Errors
    ///
    /// Returns [`ScError::ValueOutOfRange`] for values outside `[0, 1]`.
    pub fn generate_unipolar_into(
        &mut self,
        value: f64,
        stream: &mut BitStream,
    ) -> Result<(), ScError> {
        let p = Unipolar::to_probability(value)?;
        self.generate_probability_into(p, stream)
    }

    /// Fills an existing stream with a bipolar encoding of `value ∈ [-1, 1]`
    /// (allocation-free variant of [`Sng::generate_bipolar`]).
    ///
    /// # Errors
    ///
    /// Returns [`ScError::ValueOutOfRange`] for values outside `[-1, 1]`.
    pub fn generate_bipolar_into(
        &mut self,
        value: f64,
        stream: &mut BitStream,
    ) -> Result<(), ScError> {
        let p = Bipolar::to_probability(value)?;
        self.generate_probability_into(p, stream)
    }

    /// Generates one bipolar stream per input value, reusing this generator's
    /// randomness source for all of them (shared-LFSR hardware model).
    ///
    /// # Errors
    ///
    /// Returns an error if any value is outside `[-1, 1]` or `values` is empty.
    pub fn generate_bipolar_batch(
        &mut self,
        values: &[f64],
        length: StreamLength,
    ) -> Result<Vec<BitStream>, ScError> {
        if values.is_empty() {
            return Err(ScError::EmptyInput);
        }
        values
            .iter()
            .map(|&v| self.generate_bipolar(v, length))
            .collect()
    }
}

/// Batched multi-stream SNG fill.
///
/// The per-call paths construct one [`Sng`] per lane per evaluation; each
/// fresh generator grows its own staged-recurrence scratch buffer on first
/// use, so a layer evaluation that misses its stream cache pays one heap
/// allocation (plus growth) per generated stream. A [`BatchSng`] generates
/// any number of lanes — a whole SNG bank's worth of weight or input streams
/// for one layer — through a **single** staged-recurrence scratch that
/// persists across calls: steady-state stream generation touches the heap
/// only for the output buffers, which the arena-backed entry points recycle
/// too.
///
/// Output is bit-exact with a fresh `Sng::new(kind, lane_seed)` per lane:
/// the seed whitening and the sequence generation are shared code.
#[derive(Debug)]
pub struct BatchSng {
    kind: SngKind,
    /// Reused staged-recurrence byte buffer (see [`Lfsr::w32_sequence_into`]).
    scratch: Vec<u8>,
}

impl BatchSng {
    /// Creates a batched generator producing streams of the given SNG kind.
    pub fn new(kind: SngKind) -> Self {
        Self {
            kind,
            scratch: Vec::new(),
        }
    }

    /// The generator kind every filled stream is drawn from.
    pub fn kind(&self) -> SngKind {
        self.kind
    }

    /// Fills `stream` with a fresh encoding of `probability` from the lane
    /// generator seeded with `lane_seed`, bit-exact with
    /// `Sng::new(self.kind(), lane_seed).generate_probability_into(..)`.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::ValueOutOfRange`] if `probability` is not within
    /// `[0, 1]`.
    pub fn fill_probability(
        &mut self,
        lane_seed: u64,
        probability: f64,
        stream: &mut BitStream,
    ) -> Result<(), ScError> {
        let threshold = probability_threshold(probability)?;
        let bits = stream.len();
        Source::for_seed(self.kind, lane_seed).fill_words(
            threshold,
            stream.words_mut(),
            bits,
            &mut self.scratch,
        );
        Ok(())
    }

    /// Fills `stream` with a bipolar encoding of `value ∈ [-1, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::ValueOutOfRange`] for values outside `[-1, 1]`.
    pub fn fill_bipolar(
        &mut self,
        lane_seed: u64,
        value: f64,
        stream: &mut BitStream,
    ) -> Result<(), ScError> {
        let p = Bipolar::to_probability(value)?;
        self.fill_probability(lane_seed, p, stream)
    }

    /// Generates one bipolar stream per value with the lane seeds of an
    /// [`SngBank`] based at `base_seed`, all through this generator's shared
    /// scratch, with the stream buffers taken from `arena`. Bit-identical to
    /// `SngBank::new(kind, values.len(), base_seed).generate_bipolar(..)`.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] for an empty value slice and
    /// [`ScError::ValueOutOfRange`] for values outside `[-1, 1]` (taken
    /// buffers are recycled back into `arena` on error).
    pub fn generate_bipolar_bank_with(
        &mut self,
        base_seed: u64,
        values: &[f64],
        length: StreamLength,
        arena: &mut crate::arena::StreamArena,
    ) -> Result<Vec<BitStream>, ScError> {
        if values.is_empty() {
            return Err(ScError::EmptyInput);
        }
        let mut streams = Vec::with_capacity(values.len());
        for (lane, &value) in values.iter().enumerate() {
            let mut stream = arena.take_zeroed(length);
            match self.fill_bipolar(SngBank::lane_seed(base_seed, lane), value, &mut stream) {
                Ok(()) => streams.push(stream),
                Err(error) => {
                    arena.recycle(stream);
                    arena.recycle_all(streams);
                    return Err(error);
                }
            }
        }
        Ok(streams)
    }

    /// Allocating variant of [`BatchSng::generate_bipolar_bank_with`] (used
    /// by compile-time weight-stream pre-generation, where the streams live
    /// for the engine's lifetime).
    ///
    /// # Errors
    ///
    /// Same conditions as [`BatchSng::generate_bipolar_bank_with`].
    pub fn generate_bipolar_bank(
        &mut self,
        base_seed: u64,
        values: &[f64],
        length: StreamLength,
    ) -> Result<Vec<BitStream>, ScError> {
        if values.is_empty() {
            return Err(ScError::EmptyInput);
        }
        values
            .iter()
            .enumerate()
            .map(|(lane, &value)| {
                let mut stream = BitStream::zeros(length);
                self.fill_bipolar(SngBank::lane_seed(base_seed, lane), value, &mut stream)?;
                Ok(stream)
            })
            .collect()
    }
}

/// A bank of independent SNGs, one per input lane.
///
/// This is the faithful model for an inner-product block where every input
/// and every weight has its own generator (or a rotated/offset share of a
/// larger one) so that streams entering a multiplier are uncorrelated.
#[derive(Debug)]
pub struct SngBank {
    generators: Vec<Sng>,
}

impl SngBank {
    /// Creates a bank of `lanes` generators, each seeded differently from
    /// `base_seed`.
    pub fn new(kind: SngKind, lanes: usize, base_seed: u64) -> Self {
        let generators = (0..lanes)
            .map(|lane| Sng::new(kind, Self::lane_seed(base_seed, lane)))
            .collect();
        Self { generators }
    }

    /// The seed of lane `lane` in a bank created from `base_seed` (the
    /// splitmix stride). A fresh `Sng::new(kind, lane_seed(base, l))`
    /// reproduces exactly the stream lane `l` of a fresh bank generates, so
    /// compiled engines can regenerate or cache individual lane streams
    /// without constructing whole banks.
    pub fn lane_seed(base_seed: u64, lane: usize) -> u64 {
        base_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(lane as u64 + 1))
    }

    /// Number of lanes in the bank.
    pub fn lanes(&self) -> usize {
        self.generators.len()
    }

    /// Generates one bipolar stream per value, each from its own lane.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] if `values` is empty,
    /// [`ScError::InvalidParameter`] if there are more values than lanes, and
    /// [`ScError::ValueOutOfRange`] for values outside `[-1, 1]`.
    pub fn generate_bipolar(
        &mut self,
        values: &[f64],
        length: StreamLength,
    ) -> Result<Vec<BitStream>, ScError> {
        if values.is_empty() {
            return Err(ScError::EmptyInput);
        }
        if values.len() > self.generators.len() {
            return Err(ScError::InvalidParameter {
                name: "values",
                message: format!(
                    "{} values exceed the {} available SNG lanes",
                    values.len(),
                    self.generators.len()
                ),
            });
        }
        values
            .iter()
            .zip(self.generators.iter_mut())
            .map(|(&v, sng)| sng.generate_bipolar(v, length))
            .collect()
    }

    /// Arena-backed variant of [`SngBank::generate_bipolar`]: stream buffers
    /// come from (and should later be recycled into) `arena`, so repeated
    /// evaluations allocate nothing in steady state. Output is bit-identical
    /// to the allocating variant.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SngBank::generate_bipolar`].
    pub fn generate_bipolar_with(
        &mut self,
        values: &[f64],
        length: StreamLength,
        arena: &mut crate::arena::StreamArena,
    ) -> Result<Vec<BitStream>, ScError> {
        if values.is_empty() {
            return Err(ScError::EmptyInput);
        }
        if values.len() > self.generators.len() {
            return Err(ScError::InvalidParameter {
                name: "values",
                message: format!(
                    "{} values exceed the {} available SNG lanes",
                    values.len(),
                    self.generators.len()
                ),
            });
        }
        let mut streams = Vec::with_capacity(values.len());
        for (&value, sng) in values.iter().zip(self.generators.iter_mut()) {
            let mut stream = arena.take_zeroed(length);
            match sng.generate_bipolar_into(value, &mut stream) {
                Ok(()) => streams.push(stream),
                Err(error) => {
                    arena.recycle(stream);
                    arena.recycle_all(streams);
                    return Err(error);
                }
            }
        }
        Ok(streams)
    }

    /// Mutable access to an individual lane.
    pub fn lane_mut(&mut self, lane: usize) -> Option<&mut Sng> {
        self.generators.get_mut(lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn length() -> StreamLength {
        StreamLength::new(2048)
    }

    #[test]
    fn unipolar_density_tracks_value() {
        let mut sng = Sng::new(SngKind::Lfsr32, 11);
        for &value in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            let stream = sng.generate_unipolar(value, length()).unwrap();
            assert!(
                (stream.unipolar_value() - value).abs() < 0.05,
                "value {value} decoded as {}",
                stream.unipolar_value()
            );
        }
    }

    #[test]
    fn bipolar_density_tracks_value() {
        let mut sng = Sng::new(SngKind::Lfsr32, 13);
        for &value in &[-1.0, -0.5, 0.0, 0.5, 1.0] {
            let stream = sng.generate_bipolar(value, length()).unwrap();
            assert!(
                (stream.bipolar_value() - value).abs() < 0.08,
                "value {value} decoded as {}",
                stream.bipolar_value()
            );
        }
    }

    #[test]
    fn ideal_source_also_tracks_value() {
        let mut sng = Sng::new(SngKind::Ideal, 5);
        let stream = sng.generate_bipolar(0.3, length()).unwrap();
        assert!((stream.bipolar_value() - 0.3).abs() < 0.08);
    }

    #[test]
    fn out_of_range_values_are_rejected() {
        let mut sng = Sng::new(SngKind::Lfsr32, 1);
        assert!(sng.generate_unipolar(1.5, length()).is_err());
        assert!(sng.generate_bipolar(-1.5, length()).is_err());
        assert!(sng.generate_probability(f64::NAN, length()).is_err());
    }

    #[test]
    fn same_seed_reproduces_streams() {
        let mut a = Sng::new(SngKind::Lfsr32, 99);
        let mut b = Sng::new(SngKind::Lfsr32, 99);
        let sa = a.generate_bipolar(0.25, length()).unwrap();
        let sb = b.generate_bipolar(0.25, length()).unwrap();
        assert_eq!(sa, sb);
    }

    #[test]
    fn different_seeds_decorrelate_streams() {
        let mut a = Sng::new(SngKind::Lfsr32, 1);
        let mut b = Sng::new(SngKind::Lfsr32, 2);
        let sa = a.generate_bipolar(0.5, length()).unwrap();
        let sb = b.generate_bipolar(0.5, length()).unwrap();
        assert_ne!(sa, sb);
    }

    #[test]
    fn bank_rejects_too_many_values() {
        let mut bank = SngBank::new(SngKind::Lfsr32, 2, 7);
        assert_eq!(bank.lanes(), 2);
        let err = bank.generate_bipolar(&[0.1, 0.2, 0.3], length());
        assert!(err.is_err());
    }

    #[test]
    fn bank_lanes_are_independent() {
        let mut bank = SngBank::new(SngKind::Lfsr32, 3, 7);
        let streams = bank.generate_bipolar(&[0.5, 0.5, 0.5], length()).unwrap();
        assert_ne!(streams[0], streams[1]);
        assert_ne!(streams[1], streams[2]);
        assert!(bank.lane_mut(0).is_some());
        assert!(bank.lane_mut(3).is_none());
    }

    #[test]
    fn batch_requires_values() {
        let mut sng = Sng::new(SngKind::Lfsr32, 3);
        assert_eq!(
            sng.generate_bipolar_batch(&[], length()),
            Err(ScError::EmptyInput)
        );
    }

    #[test]
    fn word_fill_is_bit_exact_with_bitwise_reference() {
        for kind in [SngKind::Lfsr16, SngKind::Lfsr32, SngKind::Ideal] {
            for bits in [1usize, 63, 64, 65, 100, 127, 1024] {
                for &p in &[0.0, 0.25, 0.5, 0.9, 1.0] {
                    let len = StreamLength::new(bits);
                    let mut fast = Sng::new(kind, 42);
                    let mut reference = Sng::new(kind, 42);
                    let a = fast.generate_probability(p, len).unwrap();
                    let b = reference.generate_probability_bitwise(p, len).unwrap();
                    assert_eq!(a, b, "{kind:?} p={p} bits={bits}");
                }
            }
        }
    }

    /// Every wide comparator backend must agree bit-for-bit with the scalar
    /// `u64` reference, across thresholds exercising every branch of the
    /// bit-sliced `lt`/`eq` recurrence and word counts leaving ragged
    /// super-word groups.
    #[test]
    fn comparator_fill_bit_exact_across_backends() {
        use crate::word::W4;
        fn check<W: Word>(backend: &str) {
            for &bits in &[128usize, 1024, 8128] {
                for &threshold in &[1u32, 2, 0x0007, 0x00FF, 0x8000, 0xABCD, 0xFFFF] {
                    let mut lfsr = Lfsr::new(LfsrWidth::W32, 0x00C0_FFEE ^ threshold);
                    let mut seq = Vec::new();
                    lfsr.w32_sequence_into(bits, &mut seq);
                    let batch_words = bits / 64;
                    let mut reference = vec![0u64; batch_words];
                    comparator_fill_impl::<u64>(&seq, threshold, &mut reference, batch_words);
                    let mut wide = vec![0u64; batch_words];
                    comparator_fill_impl::<W>(&seq, threshold, &mut wide, batch_words);
                    assert_eq!(
                        wide, reference,
                        "{backend} threshold {threshold:#x} bits {bits}"
                    );
                }
            }
        }
        check::<W4>("wide");
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if crate::word::Backend::Avx2.is_available() {
            check::<crate::word::WAvx2>("avx2");
        }
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        check::<crate::word::WNeon>("neon");
    }

    #[test]
    fn generate_into_reuses_buffer_and_matches() {
        let len = StreamLength::new(777);
        let mut a = Sng::new(SngKind::Lfsr32, 9);
        let mut b = Sng::new(SngKind::Lfsr32, 9);
        let mut reused = BitStream::zeros(len);
        // Fill the buffer twice; the second fill must fully overwrite the first.
        a.generate_bipolar_into(0.9, &mut reused).unwrap();
        a.generate_bipolar_into(-0.3, &mut reused).unwrap();
        let fresh_first = b.generate_bipolar(0.9, len).unwrap();
        let fresh_second = b.generate_bipolar(-0.3, len).unwrap();
        assert_ne!(reused, fresh_first);
        assert_eq!(reused, fresh_second);
    }

    #[test]
    fn generate_into_rejects_bad_values() {
        let mut sng = Sng::new(SngKind::Lfsr32, 1);
        let mut stream = BitStream::zeros(length());
        assert!(sng.generate_probability_into(1.5, &mut stream).is_err());
        assert!(sng.generate_bipolar_into(-2.0, &mut stream).is_err());
        assert!(sng.generate_unipolar_into(-0.1, &mut stream).is_err());
    }

    #[test]
    fn batch_sng_matches_per_lane_generators() {
        for kind in [SngKind::Lfsr16, SngKind::Lfsr32, SngKind::Ideal] {
            for bits in [63usize, 100, 127, 1024] {
                let len = StreamLength::new(bits);
                let values = [0.25, -0.5, 0.75, 0.0, -1.0];
                let mut bank = SngBank::new(kind, values.len(), 91);
                let expected = bank.generate_bipolar(&values, len).unwrap();
                let mut batch = BatchSng::new(kind);
                assert_eq!(batch.kind(), kind);
                let via_batch = batch.generate_bipolar_bank(91, &values, len).unwrap();
                assert_eq!(via_batch, expected, "{kind:?} bits={bits}");
                // Arena-backed variant, twice, to prove the shared scratch
                // and recycled buffers reproduce the same bits.
                let mut arena = crate::arena::StreamArena::new();
                for round in 0..2 {
                    let pooled = batch
                        .generate_bipolar_bank_with(91, &values, len, &mut arena)
                        .unwrap();
                    assert_eq!(pooled, expected, "{kind:?} bits={bits} round {round}");
                    arena.recycle_all(pooled);
                }
                assert_eq!(arena.stats().stream_allocs, values.len() as u64);
            }
        }
    }

    #[test]
    fn batch_sng_validates_inputs() {
        let mut batch = BatchSng::new(SngKind::Lfsr32);
        let mut arena = crate::arena::StreamArena::new();
        let len = StreamLength::new(64);
        assert_eq!(
            batch.generate_bipolar_bank(1, &[], len),
            Err(ScError::EmptyInput)
        );
        assert!(batch
            .generate_bipolar_bank_with(1, &[], len, &mut arena)
            .is_err());
        // Out-of-range value mid-bank: taken buffers return to the arena.
        assert!(batch
            .generate_bipolar_bank_with(1, &[0.5, 2.0], len, &mut arena)
            .is_err());
        assert_eq!(arena.pooled(), arena.stats().stream_allocs as usize);
        let mut stream = BitStream::zeros(len);
        assert!(batch.fill_probability(1, f64::NAN, &mut stream).is_err());
        assert!(batch.fill_bipolar(1, -1.5, &mut stream).is_err());
    }

    #[test]
    fn arena_bank_generation_matches_allocating_bank() {
        let mut arena = crate::arena::StreamArena::new();
        let values = [0.25, -0.5, 0.75];
        let mut plain = SngBank::new(SngKind::Lfsr32, 3, 7);
        let mut pooled = SngBank::new(SngKind::Lfsr32, 3, 7);
        let expected = plain.generate_bipolar(&values, length()).unwrap();
        let streams = pooled
            .generate_bipolar_with(&values, length(), &mut arena)
            .unwrap();
        assert_eq!(streams, expected);
        arena.recycle_all(streams);
        // Second round reuses the recycled buffers and must still match.
        let expected = plain.generate_bipolar(&values, length()).unwrap();
        let streams = pooled
            .generate_bipolar_with(&values, length(), &mut arena)
            .unwrap();
        assert_eq!(streams, expected);
    }
}
