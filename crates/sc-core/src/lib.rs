//! # sc-core
//!
//! Stochastic computing (SC) primitives used by the SC-DCNN reproduction.
//!
//! Stochastic computing represents a number by the density of ones in a
//! random bit-stream. In *unipolar* encoding a stream with probability `p` of
//! a bit being one represents the value `p ∈ [0, 1]`; in *bipolar* encoding it
//! represents `2p − 1 ∈ [−1, 1]`. Arithmetic then reduces to tiny logic:
//! multiplication is an AND (unipolar) or XNOR (bipolar) gate, scaled addition
//! is a multiplexer, and non-scaled accumulation uses parallel counters.
//!
//! This crate provides:
//!
//! * [`BitStream`] — a packed (64 bits/word) stochastic bit-stream with cheap
//!   logical operations and population counts.
//! * [`encoding`] — unipolar/bipolar encode/decode and pre-scaling helpers.
//! * [`rng`] / [`sng`] — linear-feedback shift registers and comparator-based
//!   stochastic number generators (SNGs), including shared-LFSR generation.
//! * [`multiply`] — AND/XNOR stochastic multipliers.
//! * [`add`] — the four adder families studied by the paper: OR-gate, MUX,
//!   approximate parallel counter (APC), and two-line representation.
//! * [`activation`] — `Stanh` (FSM) and `Btanh` (saturating counter)
//!   stochastic hyperbolic-tangent implementations, plus the empirical state
//!   count formulas from the paper (Eqs. 1–3).
//! * [`stats`] — Monte-Carlo error-measurement helpers shared by the
//!   experiment harness.
//!
//! ## Quick example
//!
//! ```rust
//! use sc_core::prelude::*;
//!
//! let mut sng = Sng::new(SngKind::Lfsr32, 7);
//! let length = StreamLength::new(1024);
//! let a = sng.generate_bipolar(0.5, length)?;
//! let b = sng.generate_bipolar(-0.25, length)?;
//! let product = multiply::bipolar(&a, &b);
//! let value = product.bipolar_value();
//! assert!((value - (-0.125)).abs() < 0.1);
//! # Ok::<(), sc_core::ScError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod activation;
pub mod add;
pub mod arena;
pub mod bitstream;
pub mod cache;
pub mod csa;
pub mod encoding;
pub mod error;
pub mod hist;
pub mod multiply;
pub mod parallel;
pub mod rng;
pub mod sng;
pub mod stats;
pub mod twoline;
pub mod word;

pub use arena::{ArenaStats, StreamArena};
pub use bitstream::{BitStream, StreamLength};
pub use cache::StreamCache;
pub use error::ScError;
pub use hist::LogHistogram;
pub use word::{active_backend, force_backend, Backend};

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::activation::{Btanh, Stanh, StanhMode};
    pub use crate::add::{Apc, ExactParallelCounter, MuxAdder, OrAdder};
    pub use crate::arena::StreamArena;
    pub use crate::bitstream::{BitStream, StreamLength};
    pub use crate::cache::StreamCache;
    pub use crate::encoding::{Bipolar, Encoding, Unipolar};
    pub use crate::error::ScError;
    pub use crate::hist::LogHistogram;
    pub use crate::multiply;
    pub use crate::parallel;
    pub use crate::rng::Lfsr;
    pub use crate::sng::{Sng, SngKind};
    pub use crate::stats;
    pub use crate::twoline::{TwoLineAdder, TwoLineStream};
}
