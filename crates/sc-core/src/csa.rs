//! Bit-transposed carry-save column accumulation.
//!
//! The APC-based inner-product kernels need, for every cycle `t`, the number
//! of lanes whose (product) stream carries a one at `t` — a *column count*
//! across lanes. The straightforward software rendering walks each lane word
//! with `trailing_zeros` and increments a `u16` per set bit, which costs one
//! loop iteration per set bit per lane: for the ~50 %-dense streams bipolar
//! encodings produce, that is ~32 iterations per lane per 64-cycle word.
//!
//! [`VerticalCounter`] is the software emulation of the paper's parallel
//! counter hardware: lanes are summed *in the transposed domain*. The counter
//! keeps one `u64` **bit-plane** per binary weight (plane `k`, bit `t` is bit
//! `k` of column `t`'s running count), and a lane word is added with a
//! ripple of half-adders over the planes — amortized ~2 word operations per
//! lane regardless of density. Groups of three lane words are first pushed
//! through a 3:2 compressor (a full adder over whole words, the CSA tree of
//! the hardware APC), which cuts the number of ripple chains by a third.
//! Only when every lane of a word position has been absorbed are the planes
//! unpacked into the `u16` column counts — `⌈log₂(lanes+1)⌉` plane walks
//! instead of `lanes` lane walks.
//!
//! The counts are **exact** — identical to per-lane accumulation in any
//! order — so the kernels built on top stay bit-compatible with their
//! per-lane references (property-tested in [`crate::add`]).

use crate::word::Word;

/// Maximum number of bit-planes a counter can hold: counts are capped by the
/// `u16` column-count representation, so 16 planes (values up to 65 535)
/// always suffice, plus one guard plane for the transient carry of the 3:2
/// compressor path (`add_at` with `plane = 1` on a full plane 0..15 chain).
const MAX_PLANES: usize = 17;

/// A bit-transposed (vertical) counter over one 64-column word position.
///
/// `planes[k]` bit `t` holds bit `k` of the running count of column `t`.
/// Absorb lane words with [`VerticalCounter::add`] /
/// [`VerticalCounter::add3`], then convert to `u16` column counts with
/// [`VerticalCounter::drain_into`] (which also resets the counter for the
/// next word position).
#[derive(Debug, Clone)]
pub struct VerticalCounter {
    planes: [u64; MAX_PLANES],
    /// Upper bound on the number of planes currently in use.
    used: usize,
}

impl Default for VerticalCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl VerticalCounter {
    /// Creates an empty counter (all column counts zero).
    pub fn new() -> Self {
        Self {
            planes: [0u64; MAX_PLANES],
            used: 0,
        }
    }

    /// Adds one lane word: every set bit increments its column's count by 1.
    #[inline]
    pub fn add(&mut self, word: u64) {
        self.add_at(word, 0);
    }

    /// Adds `word` with binary weight `2^plane` (a carry word from a 3:2
    /// compressor enters at plane 1) via a ripple of half-adders: the carry
    /// chain is as long as the highest column count overflowed, which makes
    /// the amortized cost ~2 plane updates per call.
    #[inline]
    pub fn add_at(&mut self, mut word: u64, plane: usize) {
        let mut k = plane;
        while word != 0 {
            debug_assert!(k < MAX_PLANES, "column count exceeded the u16 range");
            let carry = self.planes[k] & word;
            self.planes[k] ^= word;
            word = carry;
            k += 1;
        }
        self.used = self.used.max(k);
    }

    /// Adds three lane words through a 3:2 compressor (one full adder over
    /// whole words): the sum word enters at plane 0 and the carry word at
    /// plane 1, replacing three ripple chains by two.
    #[inline]
    pub fn add3(&mut self, a: u64, b: u64, c: u64) {
        let partial = a ^ b;
        let sum = partial ^ c;
        let carry = (a & b) | (partial & c);
        self.add_at(sum, 0);
        self.add_at(carry, 1);
    }

    /// Unpacks the planes into `counts` (adding `2^k` for every set bit of
    /// plane `k` at its column index) and resets the counter.
    ///
    /// `counts` covers the 64 columns of this word position; pass a shorter
    /// slice for a tail word — the caller guarantees no bit beyond the slice
    /// was ever added (the kernels mask tail words before absorbing them).
    ///
    /// Full-width positions with at most 8 planes in use (lane counts up to
    /// 255 — every realistic layer) take the byte-sliced path: 8 columns ×
    /// ≤8 planes are spread into the byte lanes of one word and resolved
    /// with an 8×8 bit transpose, a cost independent of stream density. The
    /// plane-by-plane `trailing_zeros` walk remains the reference (and the
    /// tail / >8-plane fallback); both produce identical counts
    /// (property-tested below).
    #[inline]
    pub fn drain_into(&mut self, counts: &mut [u16]) {
        if self.used <= 8 && counts.len() == 64 {
            self.drain_into_byte_sliced(counts);
        } else {
            self.drain_into_walk(counts);
        }
    }

    /// Reference drain: per-plane `trailing_zeros` walk, cost proportional
    /// to the number of set plane bits.
    #[inline]
    fn drain_into_walk(&mut self, counts: &mut [u16]) {
        for k in 0..self.used {
            let mut bits = self.planes[k];
            self.planes[k] = 0;
            let weight = 1u16 << k;
            while bits != 0 {
                let t = bits.trailing_zeros() as usize;
                counts[t] += weight;
                bits &= bits - 1;
            }
        }
        self.used = 0;
    }

    /// Byte-sliced drain for `used <= 8` planes over a full 64-column word.
    ///
    /// For each group of 8 columns, byte `g` of plane `k` is packed into
    /// byte `k` of one word; bit `8k + j` of that word is then bit `k` of
    /// column `8g + j`'s count, so an 8×8 bit-matrix transpose turns byte
    /// `j` into the complete count of column `8g + j` (counts fit a byte:
    /// at most 8 planes → counts < 256).
    #[inline]
    fn drain_into_byte_sliced(&mut self, counts: &mut [u16]) {
        debug_assert!(self.used <= 8 && counts.len() == 64);
        for (group, group_counts) in counts.chunks_exact_mut(8).enumerate() {
            let shift = 8 * group as u32;
            let mut packed = 0u64;
            for k in 0..self.used {
                packed |= ((self.planes[k] >> shift) & 0xFF) << (8 * k);
            }
            if packed == 0 {
                continue;
            }
            let transposed = transpose8(packed);
            for (j, count) in group_counts.iter_mut().enumerate() {
                *count += ((transposed >> (8 * j)) & 0xFF) as u16;
            }
        }
        for plane in self.planes.iter_mut().take(self.used) {
            *plane = 0;
        }
        self.used = 0;
    }

    /// Whether all column counts are zero (the post-`drain_into` state).
    pub fn is_empty(&self) -> bool {
        self.used == 0
    }
}

/// Transposes an 8×8 bit matrix held row-per-byte (bit `8r + c` is entry
/// `(r, c)`): three masked delta-swaps (Hacker's Delight 7-3).
#[inline(always)]
fn transpose8(mut x: u64) -> u64 {
    let t = (x ^ (x >> 7)) & 0x00AA_00AA_00AA_00AA;
    x ^= t ^ (t << 7);
    let t = (x ^ (x >> 14)) & 0x0000_CCCC_0000_CCCC;
    x ^= t ^ (t << 14);
    let t = (x ^ (x >> 28)) & 0x0000_0000_F0F0_F0F0;
    x ^= t ^ (t << 28);
    x
}

/// A [`VerticalCounter`] over [`Word::LANES`] word positions at once: the
/// planes are super-words, so the half-adder ripples and 3:2 compressors of
/// `LANES` adjacent 64-column positions run in single lane operations.
///
/// Draining stores the planes back to scalar words and reuses the scalar
/// counter's drain per lane (byte-sliced when it applies), so the unpacking
/// is bit-for-bit the scalar path. Generic kernels hold one of these for
/// their full-group word positions and a scalar counter for the ragged tail.
pub(crate) struct WideVerticalCounter<W: Word> {
    planes: [W; MAX_PLANES],
    used: usize,
}

impl<W: Word> WideVerticalCounter<W> {
    /// Creates an empty counter (all column counts zero).
    pub(crate) fn new() -> Self {
        Self {
            planes: [W::zero(); MAX_PLANES],
            used: 0,
        }
    }

    /// Adds one lane super-word: every set bit increments its column.
    #[inline(always)]
    pub(crate) fn add(&mut self, word: W) {
        self.add_at(word, 0);
    }

    /// Adds `word` with binary weight `2^plane`; see
    /// [`VerticalCounter::add_at`]. The ripple continues while *any* lane
    /// still carries — lanes whose carry is already zero are XORed with
    /// zero, which is exact.
    #[inline(always)]
    pub(crate) fn add_at(&mut self, mut word: W, plane: usize) {
        let mut k = plane;
        while !word.is_zero() {
            debug_assert!(k < MAX_PLANES, "column count exceeded the u16 range");
            let carry = self.planes[k].and(word);
            self.planes[k] = self.planes[k].xor(word);
            word = carry;
            k += 1;
        }
        self.used = self.used.max(k);
    }

    /// Adds three lane super-words through a 3:2 compressor; see
    /// [`VerticalCounter::add3`].
    #[inline(always)]
    pub(crate) fn add3(&mut self, a: W, b: W, c: W) {
        let partial = a.xor(b);
        let sum = partial.xor(c);
        let carry = a.and(b).or(partial.and(c));
        self.add_at(sum, 0);
        self.add_at(carry, 1);
    }

    /// Unpacks the planes into `counts` (covering `LANES * 64` columns,
    /// lane `l` owning `counts[l*64..(l+1)*64]`) and resets the counter.
    #[inline]
    pub(crate) fn drain_into(&mut self, counts: &mut [u16]) {
        debug_assert!(counts.len() >= W::LANES * 64);
        let mut lanes = [[0u64; 4]; MAX_PLANES];
        for (k, lane_words) in lanes.iter_mut().enumerate().take(self.used) {
            self.planes[k].store(lane_words);
            self.planes[k] = W::zero();
        }
        let mut scalar = VerticalCounter::new();
        for (lane, lane_counts) in counts.chunks_exact_mut(64).take(W::LANES).enumerate() {
            for (k, lane_words) in lanes.iter().enumerate().take(self.used) {
                scalar.planes[k] = lane_words[lane];
            }
            scalar.used = self.used;
            scalar.drain_into(lane_counts);
        }
        self.used = 0;
    }
}

/// Accumulates exact column counts of `words` (one word per lane, all at the
/// same word position) into `counts` through a [`VerticalCounter`]:
/// `counts[t] += |{lane : bit t of words[lane] set}|`.
///
/// This is the convenience entry point for counting at a single word
/// position; the hot kernels in [`crate::add`] keep their own counters so
/// the compressor state threads across an entire layer evaluation.
pub fn accumulate_column_counts(words: &[u64], counts: &mut [u16]) {
    let mut counter = VerticalCounter::new();
    let mut chunks = words.chunks_exact(3);
    for triple in &mut chunks {
        counter.add3(triple[0], triple[1], triple[2]);
    }
    for &word in chunks.remainder() {
        counter.add(word);
    }
    counter.drain_into(counts);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Per-bit reference: count set bits per column with shifts only.
    fn reference_counts(words: &[u64]) -> Vec<u16> {
        (0..64)
            .map(|t| words.iter().filter(|w| (*w >> t) & 1 == 1).count() as u16)
            .collect()
    }

    fn pseudo_words(lanes: usize, salt: u64) -> Vec<u64> {
        (0..lanes)
            .map(|i| {
                let x = (i as u64 + 1)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(salt);
                x ^ (x >> 29) ^ x.rotate_left(17)
            })
            .collect()
    }

    #[test]
    fn vertical_counts_match_reference_across_lane_counts() {
        for lanes in [1usize, 2, 3, 4, 7, 32, 33, 100, 255, 300] {
            let words = pseudo_words(lanes, 41);
            let mut counts = vec![0u16; 64];
            accumulate_column_counts(&words, &mut counts);
            assert_eq!(counts, reference_counts(&words), "lanes {lanes}");
        }
    }

    #[test]
    fn drain_resets_for_reuse() {
        let mut counter = VerticalCounter::new();
        counter.add(u64::MAX);
        counter.add(0xAAAA_AAAA_AAAA_AAAA);
        let mut counts = vec![0u16; 64];
        counter.drain_into(&mut counts);
        assert!(counter.is_empty());
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 2);
        // Second round starts from zero.
        counter.add(1);
        let mut counts = vec![0u16; 64];
        counter.drain_into(&mut counts);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 0);
    }

    #[test]
    fn add3_equals_three_adds() {
        let words = pseudo_words(3, 77);
        let mut a = VerticalCounter::new();
        a.add3(words[0], words[1], words[2]);
        let mut b = VerticalCounter::new();
        for &w in &words {
            b.add(w);
        }
        let mut counts_a = vec![0u16; 64];
        let mut counts_b = vec![0u16; 64];
        a.drain_into(&mut counts_a);
        b.drain_into(&mut counts_b);
        assert_eq!(counts_a, counts_b);
    }

    #[test]
    fn weighted_entry_points_compose() {
        // Adding at plane 1 counts double.
        let mut counter = VerticalCounter::new();
        counter.add_at(0b101, 1);
        counter.add(0b001);
        let mut counts = vec![0u16; 64];
        counter.drain_into(&mut counts);
        assert_eq!(&counts[..3], &[3, 0, 2]);
    }

    #[test]
    fn tail_slices_accept_masked_words() {
        // Only the low 10 columns are populated; a 10-entry slice suffices.
        let mask = (1u64 << 10) - 1;
        let words: Vec<u64> = pseudo_words(5, 9).iter().map(|w| w & mask).collect();
        let mut counts = vec![0u16; 10];
        accumulate_column_counts(&words, &mut counts);
        let reference = reference_counts(&words);
        assert_eq!(counts.as_slice(), &reference[..10]);
    }

    /// The byte-sliced drain must agree with both the plane-unpack walk and
    /// a per-bit reference computed straight from the planes, for every
    /// plane population up to the 8-plane limit.
    #[test]
    fn byte_sliced_drain_matches_plane_unpack_reference() {
        for lanes in [1usize, 2, 3, 4, 7, 8, 31, 63, 100, 255] {
            let words = pseudo_words(lanes, 1000 + lanes as u64);
            let mut counter = VerticalCounter::new();
            let mut chunks = words.chunks_exact(3);
            for t in &mut chunks {
                counter.add3(t[0], t[1], t[2]);
            }
            for &w in chunks.remainder() {
                counter.add(w);
            }
            // Per-bit reference from the packed planes themselves.
            let expected: Vec<u16> = (0..64)
                .map(|t| {
                    (0..counter.used)
                        .map(|k| (((counter.planes[k] >> t) & 1) as u16) << k)
                        .sum()
                })
                .collect();
            let mut walk = counter.clone();
            let mut walk_counts = vec![0u16; 64];
            walk.drain_into_walk(&mut walk_counts);
            assert_eq!(walk_counts, expected, "walk at lanes {lanes}");
            let uses_byte_path = counter.used <= 8;
            let mut counts = vec![0u16; 64];
            counter.drain_into(&mut counts);
            assert!(counter.is_empty());
            assert_eq!(counts, expected, "drain at lanes {lanes}");
            // Lane counts up to 255 must actually exercise the byte path.
            assert_eq!(uses_byte_path, lanes <= 255, "path choice at {lanes}");
            // Draining accumulates rather than overwrites.
            let mut second = VerticalCounter::new();
            second.add(words[0]);
            second.drain_into(&mut counts);
            for t in 0..64 {
                let bit = ((words[0] >> t) & 1) as u16;
                assert_eq!(counts[t], expected[t] + bit, "accumulate at {t}");
            }
        }
    }

    /// The wide (super-word) counter must produce the scalar counter's
    /// counts for every lane position, across backends.
    #[test]
    fn wide_counter_matches_scalar_counter() {
        fn check<W: Word>(backend: &str) {
            for lanes in [1usize, 3, 7, 32, 33, 100] {
                let mut wide = WideVerticalCounter::<W>::new();
                let mut scalars: Vec<VerticalCounter> =
                    (0..W::LANES).map(|_| VerticalCounter::new()).collect();
                // Per lane position, distinct pseudo-random words.
                let mut lane_words = vec![0u64; W::LANES];
                let mut remainder = Vec::new();
                for lane in 0..lanes {
                    for (pos, slot) in lane_words.iter_mut().enumerate() {
                        *slot = pseudo_words(1, (lane * 64 + pos) as u64)[0];
                    }
                    for (pos, scalar) in scalars.iter_mut().enumerate() {
                        scalar.add(lane_words[pos]);
                    }
                    remainder.push(W::load(&lane_words));
                }
                let mut triples = remainder.chunks_exact(3);
                for t in &mut triples {
                    wide.add3(t[0], t[1], t[2]);
                }
                for &w in triples.remainder() {
                    wide.add(w);
                }
                let mut wide_counts = vec![0u16; W::LANES * 64];
                wide.drain_into(&mut wide_counts);
                for (pos, scalar) in scalars.iter_mut().enumerate() {
                    let mut expected = vec![0u16; 64];
                    scalar.drain_into(&mut expected);
                    assert_eq!(
                        &wide_counts[pos * 64..(pos + 1) * 64],
                        expected.as_slice(),
                        "{backend} lanes {lanes} position {pos}"
                    );
                }
            }
        }
        check::<u64>("scalar");
        check::<crate::word::W4>("wide");
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if crate::word::Backend::Avx2.is_available() {
            check::<crate::word::WAvx2>("avx2");
        }
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        check::<crate::word::WNeon>("neon");
    }

    #[test]
    fn saturating_many_lanes_stays_exact() {
        // 65535 all-ones lanes: the maximum u16 column count, touching every
        // plane.
        let words = vec![u64::MAX; 65_535];
        let mut counter = VerticalCounter::new();
        let mut chunks = words.chunks_exact(3);
        for t in &mut chunks {
            counter.add3(t[0], t[1], t[2]);
        }
        for &w in chunks.remainder() {
            counter.add(w);
        }
        let mut counts = vec![0u16; 64];
        counter.drain_into(&mut counts);
        assert!(counts.iter().all(|&c| c == 65_535));
    }
}
