//! Log-linear (HDR-style) latency histogram.
//!
//! A [`LogHistogram`] covers the full `u64` value range with a fixed number
//! of buckets by combining two classic ideas:
//!
//! * **logarithmic ranges** — each power-of-two range `[2^k, 2^(k+1))` gets
//!   the same number of buckets, so nanoseconds and minutes coexist in one
//!   recorder without configuration;
//! * **linear sub-buckets** — inside a range, buckets are equal width, so
//!   the worst-case relative quantization error is bounded by
//!   `1 / SUB_BUCKETS` (~3.1% with 32 sub-buckets) at every magnitude.
//!
//! Buckets are plain `AtomicU64` counters: recording is lock-free (a few
//! relaxed atomic adds), so any number of worker threads can record into one
//! shared histogram without a mutex on the hot path, and histograms from
//! different workers or replicas [`merge`](LogHistogram::merge) by adding
//! bucket counts. Percentiles are *count-preserving*: the nearest-rank walk
//! over bucket counts lands in exactly the bucket holding the rank-th
//! smallest recorded value, so a histogram percentile is always within one
//! bucket width of the exact-sample percentile.
//!
//! The serving runtime records end-to-end and per-stage latencies here; the
//! benchmark harness reuses the same type so reported percentiles come from
//! one implementation.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two range (`2^SUB_BITS`).
const SUB_BITS: u32 = 5;
/// Number of linear sub-buckets per power-of-two range.
const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Total bucket count covering the whole `u64` range: values below
/// `2 * SUB_BUCKETS` get unit-width buckets, and each of the remaining
/// `63 - SUB_BITS` ranges contributes `SUB_BUCKETS` buckets.
const BUCKETS: usize = ((63 - SUB_BITS as usize) + 2) * SUB_BUCKETS as usize;

/// Sentinel stored in `min` while no value has been recorded.
const NO_MIN: u64 = u64::MAX;

/// Bucket index of `value` (total order preserving: `a <= b` implies
/// `index(a) <= index(b)`).
fn bucket_index(value: u64) -> usize {
    if value < 2 * SUB_BUCKETS {
        return value as usize;
    }
    // Highest set bit is at least SUB_BITS + 1 here.
    let msb = 63 - value.leading_zeros();
    let width_bits = msb - SUB_BITS;
    ((width_bits as usize) << SUB_BITS) + (value >> width_bits) as usize
}

/// Smallest value mapping to bucket `index` (the inverse of
/// [`bucket_index`], up to quantization).
fn bucket_low(index: usize) -> u64 {
    if index < (2 * SUB_BUCKETS) as usize {
        return index as u64;
    }
    let quotient = (index >> SUB_BITS) as u32; // = msb - SUB_BITS + 1
    let remainder = (index as u64) & (SUB_BUCKETS - 1);
    (SUB_BUCKETS + remainder) << (quotient - 1)
}

/// Width of bucket `index` (all values in `[low, low + width)` share it).
fn bucket_width(index: usize) -> u64 {
    if index < (2 * SUB_BUCKETS) as usize {
        return 1;
    }
    1 << ((index >> SUB_BITS) as u32 - 1)
}

/// A mergeable, lock-free log-linear histogram of `u64` values.
///
/// See the [module docs](self) for the design. All methods take `&self`;
/// recording and merging use relaxed atomics only. Reads
/// ([`value_at_percentile`](Self::value_at_percentile) etc.) are snapshots:
/// concurrent recording may make `count`/`sum` and the bucket walk disagree
/// by in-flight samples, which is harmless for monitoring.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram covering the full `u64` range.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(NO_MIN),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Lock-free: a handful of relaxed atomic updates.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wrapping only past `u64::MAX` total).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Smallest recorded value (`0` when empty).
    pub fn min(&self) -> u64 {
        let min = self.min.load(Ordering::Relaxed);
        if min == NO_MIN {
            0
        } else {
            min
        }
    }

    /// Largest recorded value (`0` when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded values (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        self.sum() as f64 / count as f64
    }

    /// Nearest-rank percentile at bucket resolution.
    ///
    /// Returns the lower bound of the bucket containing the rank-th
    /// smallest recorded value (rank `⌈p·n/100⌉`, clamped to `[1, n]`),
    /// clamped into `[min, max]` so single-sample and extreme percentiles
    /// report exact recorded values. The result is always within one bucket
    /// width of the exact-sample percentile. Returns `0` when empty;
    /// `p ≥ 100` returns the exact maximum.
    pub fn value_at_percentile(&self, percentile: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        if percentile >= 100.0 {
            return self.max();
        }
        let rank = ((percentile.max(0.0) * count as f64) / 100.0).ceil() as u64;
        let rank = rank.clamp(1, count);
        let mut cumulative = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                return bucket_low(index).clamp(self.min(), self.max());
            }
        }
        // Racing recorders can leave `count` ahead of the bucket the sample
        // lands in; the honest answer for a tail rank is the maximum.
        self.max()
    }

    /// Several percentiles computed from one frozen snapshot of the bucket
    /// counts.
    ///
    /// Under concurrent recording, consecutive
    /// [`value_at_percentile`](Self::value_at_percentile) calls each observe
    /// a *different* histogram, so derived invariants (p99 ≥ p50) can
    /// flicker across a report. This snapshots the buckets once, derives the
    /// rank from the snapshot's own total, and answers every requested
    /// percentile from that same frozen population — within one call,
    /// a higher percentile can never report a smaller value.
    #[must_use]
    pub fn percentiles<const N: usize>(&self, percentiles: [f64; N]) -> [u64; N] {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|bucket| bucket.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        let mut out = [0u64; N];
        if total == 0 {
            return out;
        }
        let (min, max) = (self.min(), self.max());
        for (slot, &percentile) in out.iter_mut().zip(percentiles.iter()) {
            if percentile >= 100.0 {
                *slot = max;
                continue;
            }
            let rank = ((percentile.max(0.0) * total as f64) / 100.0).ceil() as u64;
            let rank = rank.clamp(1, total);
            let mut cumulative = 0u64;
            *slot = max;
            for (index, &count) in counts.iter().enumerate() {
                cumulative += count;
                if cumulative >= rank {
                    *slot = bucket_low(index).clamp(min, max);
                    break;
                }
            }
        }
        out
    }

    /// Adds every count of `other` into `self` (bucket-wise), preserving
    /// totals, min, and max. Merging per-worker or per-replica histograms
    /// yields the same buckets as recording the concatenated samples.
    pub fn merge(&self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let delta = theirs.load(Ordering::Relaxed);
            if delta != 0 {
                mine.fetch_add(delta, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Non-empty buckets as `(lower_bound, width, count)` triples, in value
    /// order — the raw material for exporters and tests.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(index, bucket)| {
                let count = bucket.load(Ordering::Relaxed);
                (count > 0).then(|| (bucket_low(index), bucket_width(index), count))
            })
            .collect()
    }

    /// Largest quantization error possible for `value`: the width of the
    /// bucket it falls into. Exposed so tests (and doc examples) can assert
    /// the "within one bucket width" contract without re-deriving the
    /// bucket layout.
    #[must_use]
    pub fn bucket_width_of(value: u64) -> u64 {
        bucket_width(bucket_index(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic 64-bit generator for property tests (SplitMix64).
    fn mix(state: u64) -> u64 {
        let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Exact nearest-rank percentile over raw samples (the convention the
    /// histogram must match at bucket resolution).
    fn exact_percentile(sorted: &[u64], percentile: f64) -> u64 {
        if percentile >= 100.0 {
            return *sorted.last().unwrap();
        }
        let rank = ((percentile.max(0.0) * sorted.len() as f64) / 100.0).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    #[test]
    fn bucket_mapping_is_monotone_and_invertible() {
        // Every bucket boundary and its neighbors, across all magnitudes.
        let mut values: Vec<u64> = (0..64u32)
            .flat_map(|exponent| {
                [0u64, 1, 2].map(|offset| (1u64 << exponent).saturating_add(offset))
            })
            .collect();
        values.sort_unstable();
        let mut previous = 0usize;
        for value in values {
            let index = bucket_index(value);
            assert!(index >= previous, "index must be monotone at {value}");
            previous = index;
            let low = bucket_low(index);
            let width = bucket_width(index);
            assert!(
                low <= value && (value - low) < width,
                "value {value} outside its bucket [{low}, {low}+{width})"
            );
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Small values get exact (unit-width) buckets.
        for value in 0..64u64 {
            assert_eq!(bucket_low(bucket_index(value)), value);
            assert_eq!(bucket_width(bucket_index(value)), 1);
        }
    }

    #[test]
    fn relative_error_is_bounded_by_sub_bucket_resolution() {
        for exponent in 6..63u32 {
            let value = (1u64 << exponent) + (1u64 << (exponent - 1));
            let width = bucket_width(bucket_index(value));
            assert!(
                (width as f64) / (value as f64) <= 1.0 / SUB_BUCKETS as f64 + 1e-12,
                "width {width} too coarse for {value}"
            );
        }
    }

    #[test]
    fn empty_and_single_sample_edges() {
        let hist = LogHistogram::new();
        assert!(hist.is_empty());
        assert_eq!(hist.value_at_percentile(50.0), 0);
        assert_eq!(hist.min(), 0);
        assert_eq!(hist.max(), 0);
        assert_eq!(hist.mean(), 0.0);
        // A single sample is every percentile — exactly, even in a wide
        // bucket (min/max clamping).
        let value = 1_234_567_890;
        hist.record(value);
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(hist.value_at_percentile(p), value, "p{p}");
        }
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.sum(), value);
    }

    #[test]
    fn percentiles_match_exact_samples_within_one_bucket_width() {
        // Values spanning nanoseconds to minutes (recorded as ns), three
        // distributions: uniform-log, heavy-tailed, and boundary-heavy.
        let mut state = 7u64;
        let mut next = move || {
            state = state.wrapping_add(1);
            mix(state)
        };
        let mut samples: Vec<u64> = Vec::new();
        for i in 0..4000u64 {
            let magnitude = next() % 36; // 2^0 .. 2^35 ns (~1 ns .. ~34 s)
            let base = 1u64 << magnitude;
            samples.push(base + next() % base.max(1));
            if i % 7 == 0 {
                // Exact power-of-two boundary values.
                samples.push(base);
            }
            if i % 11 == 0 {
                // Minutes-scale tail.
                samples.push(60_000_000_000 + next() % 120_000_000_000);
            }
        }
        let hist = LogHistogram::new();
        for &sample in &samples {
            hist.record(sample);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for p in [0.1, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9] {
            let exact = exact_percentile(&sorted, p);
            let estimated = hist.value_at_percentile(p);
            let width = LogHistogram::bucket_width_of(exact);
            assert!(
                estimated.abs_diff(exact) < width,
                "p{p}: estimate {estimated} not within one bucket width ({width}) of exact {exact}"
            );
        }
        assert_eq!(hist.value_at_percentile(100.0), *sorted.last().unwrap());
        assert_eq!(hist.min(), sorted[0]);
        assert_eq!(hist.count(), sorted.len() as u64);
    }

    #[test]
    fn merge_is_associative_and_count_preserving() {
        // merge(worker histograms) == histogram of the concatenated samples,
        // whichever way the merges associate.
        let mut state = 99u64;
        let mut next = move || {
            state = state.wrapping_add(1);
            mix(state)
        };
        let parts: Vec<Vec<u64>> = (0..3)
            .map(|_| (0..500).map(|_| next() % 10_000_000).collect())
            .collect();
        let hists: Vec<LogHistogram> = parts
            .iter()
            .map(|part| {
                let hist = LogHistogram::new();
                for &value in part {
                    hist.record(value);
                }
                hist
            })
            .collect();

        let left = LogHistogram::new(); // (a ∪ b) ∪ c
        left.merge(&hists[0]);
        left.merge(&hists[1]);
        left.merge(&hists[2]);
        let bc = LogHistogram::new(); // a ∪ (b ∪ c)
        bc.merge(&hists[1]);
        bc.merge(&hists[2]);
        let right = LogHistogram::new();
        right.merge(&hists[0]);
        right.merge(&bc);
        let direct = LogHistogram::new(); // recording the concatenation
        for part in &parts {
            for &value in part {
                direct.record(value);
            }
        }

        for reference in [&right, &direct] {
            assert_eq!(left.count(), reference.count());
            assert_eq!(left.sum(), reference.sum());
            assert_eq!(left.min(), reference.min());
            assert_eq!(left.max(), reference.max());
            assert_eq!(left.nonzero_buckets(), reference.nonzero_buckets());
            for p in [1.0, 50.0, 99.0, 100.0] {
                assert_eq!(
                    left.value_at_percentile(p),
                    reference.value_at_percentile(p),
                    "p{p}"
                );
            }
        }
    }

    #[test]
    fn batch_percentiles_match_single_calls_when_quiescent() {
        let hist = LogHistogram::new();
        assert_eq!(hist.percentiles([50.0, 99.0]), [0, 0]);
        let mut state = 41u64;
        for _ in 0..2000 {
            state = state.wrapping_add(1);
            hist.record(mix(state) % 50_000_000);
        }
        let [p50, p95, p99, p100] = hist.percentiles([50.0, 95.0, 99.0, 100.0]);
        // Without concurrent recorders the frozen-snapshot walk and the live
        // walk see identical buckets.
        assert_eq!(p50, hist.value_at_percentile(50.0));
        assert_eq!(p95, hist.value_at_percentile(95.0));
        assert_eq!(p99, hist.value_at_percentile(99.0));
        assert_eq!(p100, hist.max());
        assert!(p50 <= p95 && p95 <= p99 && p99 <= p100);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        use std::sync::Arc;
        let hist = Arc::new(LogHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|thread| {
                let hist = Arc::clone(&hist);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        hist.record(thread * 1_000_000 + i);
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
        assert_eq!(hist.count(), 40_000);
        let bucket_total: u64 = hist
            .nonzero_buckets()
            .iter()
            .map(|&(_, _, count)| count)
            .sum();
        assert_eq!(bucket_total, 40_000, "no recorded sample may be lost");
    }
}
