//! Monte-Carlo error-measurement helpers.
//!
//! Every accuracy table in the paper is an average of absolute or relative
//! errors over randomly drawn inputs. This module centralizes those error
//! metrics plus a small deterministic Monte-Carlo runner so each experiment
//! binary reports numbers that are reproducible run-to-run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Mean absolute error between paired observations and references.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mean_absolute_error(observed: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(
        observed.len(),
        reference.len(),
        "paired slices must have equal length"
    );
    assert!(
        !observed.is_empty(),
        "error over an empty sample is undefined"
    );
    observed
        .iter()
        .zip(reference.iter())
        .map(|(o, r)| (o - r).abs())
        .sum::<f64>()
        / observed.len() as f64
}

/// Mean relative error `|o − r| / |r|`, skipping reference values that are
/// numerically zero (they would make the ratio meaningless).
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mean_relative_error(observed: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(
        observed.len(),
        reference.len(),
        "paired slices must have equal length"
    );
    assert!(
        !observed.is_empty(),
        "error over an empty sample is undefined"
    );
    let mut total = 0.0;
    let mut counted = 0usize;
    for (o, r) in observed.iter().zip(reference.iter()) {
        if r.abs() > 1e-9 {
            total += (o - r).abs() / r.abs();
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Root-mean-square error between paired observations and references.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn rmse(observed: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(
        observed.len(),
        reference.len(),
        "paired slices must have equal length"
    );
    assert!(
        !observed.is_empty(),
        "error over an empty sample is undefined"
    );
    let mse = observed
        .iter()
        .zip(reference.iter())
        .map(|(o, r)| (o - r).powi(2))
        .sum::<f64>()
        / observed.len() as f64;
    mse.sqrt()
}

/// Summary statistics of an error sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorSummary {
    /// Mean absolute error.
    pub mean_absolute: f64,
    /// Mean relative error.
    pub mean_relative: f64,
    /// Root-mean-square error.
    pub rmse: f64,
    /// Largest absolute error in the sample.
    pub max_absolute: f64,
    /// Number of Monte-Carlo trials aggregated.
    pub trials: usize,
}

impl ErrorSummary {
    /// Builds a summary from paired observation/reference samples.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or are empty.
    pub fn from_pairs(observed: &[f64], reference: &[f64]) -> Self {
        let max_absolute = observed
            .iter()
            .zip(reference.iter())
            .map(|(o, r)| (o - r).abs())
            .fold(0.0f64, f64::max);
        Self {
            mean_absolute: mean_absolute_error(observed, reference),
            mean_relative: mean_relative_error(observed, reference),
            rmse: rmse(observed, reference),
            max_absolute,
            trials: observed.len(),
        }
    }
}

/// Deterministic Monte-Carlo runner.
///
/// Calls `trial` once per iteration with a fresh seeded RNG and an index; the
/// closure returns an `(observed, reference)` pair. All experiment binaries
/// use this so their reported numbers are stable across runs.
pub fn monte_carlo<F>(trials: usize, seed: u64, mut trial: F) -> ErrorSummary
where
    F: FnMut(usize, &mut StdRng) -> (f64, f64),
{
    assert!(trials > 0, "at least one trial is required");
    let mut observed = Vec::with_capacity(trials);
    let mut reference = Vec::with_capacity(trials);
    for index in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(index as u64 * 0x9E37_79B9));
        let (o, r) = trial(index, &mut rng);
        observed.push(o);
        reference.push(r);
    }
    ErrorSummary::from_pairs(&observed, &reference)
}

/// Draws `count` uniform values in `[min, max]` from the provided RNG.
pub fn uniform_values(rng: &mut StdRng, count: usize, min: f64, max: f64) -> Vec<f64> {
    (0..count).map(|_| rng.gen_range(min..=max)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_of_identical_samples_is_zero() {
        let v = vec![1.0, -2.0, 3.0];
        assert_eq!(mean_absolute_error(&v, &v), 0.0);
        assert_eq!(rmse(&v, &v), 0.0);
        assert_eq!(mean_relative_error(&v, &v), 0.0);
    }

    #[test]
    fn mae_matches_hand_computation() {
        let observed = [1.0, 2.0, 3.0];
        let reference = [1.5, 1.5, 3.5];
        assert!((mean_absolute_error(&observed, &reference) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relative_error_skips_zero_references() {
        let observed = [1.0, 5.0];
        let reference = [0.0, 4.0];
        assert!((mean_relative_error(&observed, &reference) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn relative_error_all_zero_references_is_zero() {
        assert_eq!(mean_relative_error(&[1.0], &[0.0]), 0.0);
    }

    #[test]
    fn rmse_matches_hand_computation() {
        let observed = [0.0, 2.0];
        let reference = [0.0, 0.0];
        assert!((rmse(&observed, &reference) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = mean_absolute_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn summary_reports_max_error() {
        let observed = [1.0, 4.0];
        let reference = [1.0, 2.0];
        let summary = ErrorSummary::from_pairs(&observed, &reference);
        assert_eq!(summary.max_absolute, 2.0);
        assert_eq!(summary.trials, 2);
    }

    #[test]
    fn monte_carlo_is_deterministic() {
        let run = |seed| {
            monte_carlo(32, seed, |_, rng| {
                let x: f64 = rng.gen_range(-1.0..1.0);
                (x + 0.01, x)
            })
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b);
        assert!((a.mean_absolute - 0.01).abs() < 1e-12);
    }

    #[test]
    fn uniform_values_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let values = uniform_values(&mut rng, 100, -0.5, 0.5);
        assert_eq!(values.len(), 100);
        assert!(values.iter().all(|v| (-0.5..=0.5).contains(v)));
    }
}
