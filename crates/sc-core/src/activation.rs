//! Stochastic activation functions.
//!
//! The paper selects the hyperbolic tangent because it maps naturally onto
//! tiny sequential SC hardware:
//!
//! * [`Stanh`] — a `K`-state finite state machine reading a bipolar stream bit
//!   by bit. `Stanh(K, x) ≈ tanh(K·x/2)`. Two output threshold modes are
//!   provided: the classic half-way split and the re-designed 1/5 split used
//!   by the MUX-Max-Stanh feature extraction block (Fig. 11).
//! * [`Btanh`] — a saturating up/down counter that converts the binary counts
//!   coming out of an APC-based adder back into a stochastic stream while
//!   applying a scaled tanh.
//!
//! The empirical state-count formulas of Eqs. (1)–(3) are provided as free
//! functions so the feature-extraction-block layer can pick `K` per
//! configuration.

use crate::add::CountStream;
use crate::bitstream::{BitStream, StreamLength};
use crate::error::ScError;
use crate::word::{dispatch_word_kernel, Word};
use serde::{Deserialize, Serialize};

/// Output threshold mode for the [`Stanh`] FSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StanhMode {
    /// Classic Stanh: output 1 when the state is in the upper half.
    Standard,
    /// Re-designed Stanh for MUX-Max feature blocks: output 1 when the state
    /// is beyond the left fifth of the diagram (Fig. 11), compensating the
    /// systematic under-counting of the hardware-oriented max pooling block.
    ShiftedFifth,
}

impl StanhMode {
    fn threshold(self, states: usize) -> usize {
        match self {
            StanhMode::Standard => states / 2,
            StanhMode::ShiftedFifth => states / 5,
        }
    }
}

/// `K`-state FSM implementing a stochastic hyperbolic tangent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stanh {
    states: usize,
    mode: StanhMode,
    state: usize,
}

impl Stanh {
    /// Creates a standard Stanh FSM with `states` states.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParameter`] unless `states` is an even
    /// number of at least two.
    pub fn new(states: usize) -> Result<Self, ScError> {
        Self::with_mode(states, StanhMode::Standard)
    }

    /// Creates a Stanh FSM with an explicit output threshold mode.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParameter`] unless `states` is an even
    /// number of at least two.
    pub fn with_mode(states: usize, mode: StanhMode) -> Result<Self, ScError> {
        if states < 2 || !states.is_multiple_of(2) {
            return Err(ScError::InvalidParameter {
                name: "states",
                message: format!("state count must be an even number >= 2, got {states}"),
            });
        }
        Ok(Self {
            states,
            mode,
            state: states / 2,
        })
    }

    /// Number of FSM states `K`.
    pub fn states(&self) -> usize {
        self.states
    }

    /// The configured output threshold mode.
    pub fn mode(&self) -> StanhMode {
        self.mode
    }

    /// Resets the FSM to its centre state.
    pub fn reset(&mut self) {
        self.state = self.states / 2;
    }

    /// Advances the FSM by one input bit and returns the output bit.
    pub fn step(&mut self, input: bool) -> bool {
        if input {
            if self.state < self.states - 1 {
                self.state += 1;
            }
        } else if self.state > 0 {
            self.state -= 1;
        }
        self.state >= self.mode.threshold(self.states)
    }

    /// Runs the FSM over a whole input stream, producing the output stream.
    ///
    /// The FSM is reset before processing so repeated calls are independent.
    pub fn transform(&mut self, input: &BitStream) -> BitStream {
        self.reset();
        input.iter().map(|bit| self.step(bit)).collect()
    }

    /// Runs one independent copy of this FSM over every input stream,
    /// interleaved word-by-word across units: all units advance through
    /// word `w` before any unit touches word `w + 1`, so a layer's worth of
    /// activations walks the stream buffers once front-to-back instead of
    /// re-streaming per unit.
    ///
    /// Each copy is reset before processing; `result[u]` is bit-exact with
    /// [`Stanh::transform`] on `inputs[u]`. Streams may differ in length.
    pub fn transform_batch(&self, inputs: &[&BitStream]) -> Vec<BitStream> {
        self.transform_batch_with(inputs, &mut crate::arena::StreamArena::new())
    }

    /// [`Stanh::transform_batch`] with the output stream buffers taken from
    /// `arena` (recycle them when done). Results are identical.
    pub fn transform_batch_with(
        &self,
        inputs: &[&BitStream],
        arena: &mut crate::arena::StreamArena,
    ) -> Vec<BitStream> {
        let mut outputs: Vec<BitStream> = inputs
            .iter()
            .map(|s| arena.take_zeroed(s.stream_length()))
            .collect();
        let threshold = self.mode.threshold(self.states);
        stanh_batch_words(inputs, &mut outputs, self.states, threshold);
        outputs
    }

    /// The continuous function this FSM approximates: `tanh(K·x / 2)`.
    pub fn reference(&self, x: f64) -> f64 {
        (self.states as f64 / 2.0 * x).tanh()
    }
}

/// Saturating up/down counter implementing a binary-input stochastic tanh.
///
/// The counter consumes the per-cycle binary counts of an APC-based adder.
/// Each cycle the state moves up by the number of ones and down by the number
/// of zeros seen across the `n` lanes (`Δ = 2·count − n`), saturating at the
/// ends; the output bit is one when the state is in the upper half.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Btanh {
    states: usize,
    state: i64,
}

impl Btanh {
    /// Creates a Btanh counter with `states` states.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParameter`] unless `states` is an even
    /// number of at least two.
    pub fn new(states: usize) -> Result<Self, ScError> {
        if states < 2 || !states.is_multiple_of(2) {
            return Err(ScError::InvalidParameter {
                name: "states",
                message: format!("state count must be an even number >= 2, got {states}"),
            });
        }
        Ok(Self {
            states,
            state: states as i64 / 2,
        })
    }

    /// Number of counter states `K`.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Resets the counter to its centre state.
    pub fn reset(&mut self) {
        self.state = self.states as i64 / 2;
    }

    /// Advances the counter with one APC count (ones across `lanes` inputs)
    /// and returns the output bit.
    pub fn step(&mut self, count: u16, lanes: usize) -> bool {
        let delta = 2 * i64::from(count) - lanes as i64;
        self.state = (self.state + delta).clamp(0, self.states as i64 - 1);
        self.state >= self.states as i64 / 2
    }

    /// Runs the counter over an entire [`CountStream`], producing the output
    /// bit-stream. The counter is reset before processing.
    pub fn transform(&mut self, counts: &CountStream) -> BitStream {
        self.reset();
        counts
            .counts()
            .iter()
            .map(|&c| self.step(c, counts.lanes()))
            .collect()
    }

    /// Runs one independent copy of this counter over every count stream,
    /// interleaved in 64-cycle blocks across units (the binary-domain twin
    /// of [`Stanh::transform_batch`]): all units consume cycles
    /// `64w..64(w+1)` before any unit consumes the next block.
    ///
    /// Each copy is reset before processing; `result[u]` is bit-exact with
    /// [`Btanh::transform`] on `inputs[u]`. Streams may differ in length.
    pub fn transform_batch(&self, inputs: &[&CountStream]) -> Vec<BitStream> {
        self.transform_batch_with(inputs, &mut crate::arena::StreamArena::new())
    }

    /// [`Btanh::transform_batch`] with the output stream buffers taken from
    /// `arena` (recycle them when done). Results are identical.
    pub fn transform_batch_with(
        &self,
        inputs: &[&CountStream],
        arena: &mut crate::arena::StreamArena,
    ) -> Vec<BitStream> {
        let mut outputs: Vec<BitStream> = inputs
            .iter()
            .map(|c| arena.take_zeroed(StreamLength::new(c.len())))
            .collect();
        btanh_batch_words(inputs, &mut outputs, self.states);
        outputs
    }

    /// The continuous function the counter approximates for `n` input lanes:
    /// `tanh(n·x / 2)` where `x` is the mean of the summed bipolar inputs.
    pub fn reference(&self, lanes: usize, mean_input: f64) -> f64 {
        (lanes as f64 * mean_input / 2.0).tanh()
    }
}

fn stanh_batch_words(
    inputs: &[&BitStream],
    outputs: &mut [BitStream],
    states: usize,
    threshold: usize,
) {
    dispatch_word_kernel!(
        stanh_batch_words_impl,
        act_avx2::stanh_batch_avx2,
        (inputs, outputs, states, threshold)
    )
}

fn btanh_batch_words(inputs: &[&CountStream], outputs: &mut [BitStream], states: usize) {
    dispatch_word_kernel!(
        btanh_batch_words_impl,
        act_avx2::btanh_batch_avx2,
        (inputs, outputs, states)
    )
}

/// Word-generic batch Stanh: groups of `LANES` equal-length units walk their
/// streams with the FSM states held as super-word lanes (the per-bit update
/// is `state = clamp(state ± 1, 0, K−1)`, which maps to a compare/blend
/// chain); remaining units — the tail group, or all units once a group with
/// mixed lengths is hit — take the word-interleaved scalar walk. Each unit's
/// output is bit-exact with [`Stanh::transform`] either way.
#[inline(always)]
fn stanh_batch_words_impl<W: Word>(
    inputs: &[&BitStream],
    outputs: &mut [BitStream],
    states: usize,
    threshold: usize,
) {
    let mut unit = 0;
    if W::LANES > 1 {
        while unit + W::LANES <= inputs.len() {
            let len = inputs[unit].len();
            if !(1..W::LANES).all(|l| inputs[unit + l].len() == len) {
                break;
            }
            stanh_unit_group::<W>(
                &inputs[unit..unit + W::LANES],
                &mut outputs[unit..unit + W::LANES],
                states,
                threshold,
                len,
            );
            unit += W::LANES;
        }
    }
    // Scalar walk for the remaining units, word-interleaved as before.
    let rest = &inputs[unit..];
    if rest.is_empty() {
        return;
    }
    let mut unit_states: Vec<i64> = vec![states as i64 / 2; rest.len()];
    let max_words = rest.iter().map(|s| s.as_words().len()).max().unwrap_or(0);
    for w in 0..max_words {
        for (u, input) in rest.iter().enumerate() {
            let words = input.as_words();
            if w >= words.len() {
                continue;
            }
            let bits = (input.len() - w * 64).min(64);
            let in_word = words[w];
            let mut out_word = 0u64;
            let mut state = unit_states[u];
            for bit in 0..bits {
                let delta = if (in_word >> bit) & 1 == 1 { 1 } else { -1 };
                state = (state + delta).clamp(0, states as i64 - 1);
                out_word |= u64::from(state >= threshold as i64) << bit;
            }
            unit_states[u] = state;
            outputs[unit + u].words_mut()[w] = out_word;
        }
    }
}

/// One wide group of the batch Stanh walk: `LANES` units advance in
/// lock-step, one FSM state per super-word lane.
#[inline(always)]
fn stanh_unit_group<W: Word>(
    inputs: &[&BitStream],
    outputs: &mut [BitStream],
    states: usize,
    threshold: usize,
    len: usize,
) {
    let words = len.div_ceil(64);
    let mut state = W::splat_i64(states as i64 / 2);
    let top = W::splat_i64(states as i64 - 1);
    let zero = W::zero();
    let one = W::splat(1);
    let minus_one = W::splat_i64(-1);
    let plus_one = W::splat_i64(1);
    // `state >= threshold` as a lane compare: `state > threshold − 1`.
    let out_threshold = W::splat_i64(threshold as i64 - 1);
    let mut lane_words = [0u64; 4];
    let mut out_lanes = [0u64; 4];
    for w in 0..words {
        for (l, s) in inputs.iter().enumerate() {
            lane_words[l] = s.as_words()[w];
        }
        let in_word = W::load(&lane_words);
        let bits = ((len - w * 64).min(64)) as u32;
        let mut out = W::zero();
        for bit in 0..bits {
            let input_mask = in_word.shr(bit).and(one).cmp_gt_i64(zero);
            state = state.add_i64(minus_one.blend(plus_one, input_mask));
            state = state.blend(top, state.cmp_gt_i64(top));
            state = state.blend(zero, zero.cmp_gt_i64(state));
            out = out.or(state.cmp_gt_i64(out_threshold).and(one).shl(bit));
        }
        out.store(&mut out_lanes);
        for (l, o) in outputs.iter_mut().enumerate() {
            o.words_mut()[w] = out_lanes[l];
        }
    }
}

/// Word-generic batch Btanh, the binary-domain twin of
/// [`stanh_batch_words_impl`]: groups of `LANES` units with equal length and
/// lane count walk their count streams with the counter states as super-word
/// lanes; remaining units take the 64-cycle-block scalar walk. Each unit's
/// output is bit-exact with [`Btanh::transform`] either way.
#[inline(always)]
fn btanh_batch_words_impl<W: Word>(
    inputs: &[&CountStream],
    outputs: &mut [BitStream],
    states: usize,
) {
    let mut unit = 0;
    if W::LANES > 1 {
        while unit + W::LANES <= inputs.len() {
            let len = inputs[unit].len();
            let lanes = inputs[unit].lanes();
            if !(1..W::LANES)
                .all(|l| inputs[unit + l].len() == len && inputs[unit + l].lanes() == lanes)
            {
                break;
            }
            btanh_unit_group::<W>(
                &inputs[unit..unit + W::LANES],
                &mut outputs[unit..unit + W::LANES],
                states,
                lanes,
                len,
            );
            unit += W::LANES;
        }
    }
    let rest = &inputs[unit..];
    if rest.is_empty() {
        return;
    }
    let mut unit_states: Vec<i64> = vec![states as i64 / 2; rest.len()];
    let max_words = rest.iter().map(|c| c.len().div_ceil(64)).max().unwrap_or(0);
    for w in 0..max_words {
        let start = w * 64;
        for (u, input) in rest.iter().enumerate() {
            if start >= input.len() {
                continue;
            }
            let end = (start + 64).min(input.len());
            let lanes = input.lanes() as i64;
            let mut out_word = 0u64;
            let mut state = unit_states[u];
            for (bit, &count) in input.counts()[start..end].iter().enumerate() {
                let delta = 2 * i64::from(count) - lanes;
                state = (state + delta).clamp(0, states as i64 - 1);
                out_word |= u64::from(state >= states as i64 / 2) << bit;
            }
            unit_states[u] = state;
            outputs[unit + u].words_mut()[w] = out_word;
        }
    }
}

/// One wide group of the batch Btanh walk: per cycle the `LANES` units'
/// counts are gathered into lanes and the saturating update
/// `state = clamp(state + 2·count − n, 0, K−1)` runs across all units.
#[inline(always)]
fn btanh_unit_group<W: Word>(
    inputs: &[&CountStream],
    outputs: &mut [BitStream],
    states: usize,
    lanes: usize,
    len: usize,
) {
    let words = len.div_ceil(64);
    let mut state = W::splat_i64(states as i64 / 2);
    let top = W::splat_i64(states as i64 - 1);
    let zero = W::zero();
    let one = W::splat(1);
    let neg_lanes = W::splat_i64(-(lanes as i64));
    let out_threshold = W::splat_i64(states as i64 / 2 - 1);
    let mut lane_counts = [0u64; 4];
    let mut out_lanes = [0u64; 4];
    for w in 0..words {
        let start = w * 64;
        let bits = ((len - start).min(64)) as u32;
        let mut out = W::zero();
        for bit in 0..bits {
            let t = start + bit as usize;
            for (l, c) in inputs.iter().enumerate() {
                lane_counts[l] = u64::from(c.counts()[t]);
            }
            let count = W::load(&lane_counts);
            state = state.add_i64(count.add_i64(count).add_i64(neg_lanes));
            state = state.blend(top, state.cmp_gt_i64(top));
            state = state.blend(zero, zero.cmp_gt_i64(state));
            out = out.or(state.cmp_gt_i64(out_threshold).and(one).shl(bit));
        }
        out.store(&mut out_lanes);
        for (l, o) in outputs.iter_mut().enumerate() {
            o.words_mut()[w] = out_lanes[l];
        }
    }
}

/// Concrete AVX2 entry points: `#[target_feature]` wrappers over the
/// `#[inline(always)]` generic kernels (see [`crate::word`]).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod act_avx2 {
    use super::*;
    use crate::word::WAvx2;

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn stanh_batch_avx2(
        inputs: &[&BitStream],
        outputs: &mut [BitStream],
        states: usize,
        threshold: usize,
    ) {
        stanh_batch_words_impl::<WAvx2>(inputs, outputs, states, threshold)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn btanh_batch_avx2(
        inputs: &[&CountStream],
        outputs: &mut [BitStream],
        states: usize,
    ) {
        btanh_batch_words_impl::<WAvx2>(inputs, outputs, states)
    }
}

/// Rounds a floating-point state count to the nearest even integer, flooring
/// at two (every FSM/counter in the paper uses an even state count).
pub fn nearest_even_state(value: f64) -> usize {
    let rounded = value.round() as i64;
    let even = if rounded % 2 == 0 {
        rounded
    } else {
        rounded + 1
    };
    even.max(2) as usize
}

/// Eq. (1): optimal Stanh state count for the MUX-Avg-Stanh block.
///
/// `K ≈ 2·log2(N) + log2(L)·N / (α·log2(N))` with `α = 33.27`, where `N` is
/// the input size and `L` the bit-stream length.
pub fn mux_avg_stanh_states(input_size: usize, stream_length: usize) -> usize {
    let n = input_size.max(2) as f64;
    let l = stream_length.max(2) as f64;
    let alpha = 33.27;
    let k = 2.0 * n.log2() + (l.log2() * n) / (alpha * n.log2());
    nearest_even_state(k)
}

/// Eq. (2): optimal Stanh state count for the MUX-Max-Stanh block.
///
/// `K ≈ 2·(log2 N + log2 L) − α/log2(N) − β/log5(L)` with `α = 37` and
/// `β = 16.5`.
pub fn mux_max_stanh_states(input_size: usize, stream_length: usize) -> usize {
    let n = input_size.max(2) as f64;
    let l = stream_length.max(2) as f64;
    let alpha = 37.0;
    let beta = 16.5;
    let k = 2.0 * (n.log2() + l.log2()) - alpha / n.log2() - beta / (l.ln() / 5f64.ln());
    nearest_even_state(k)
}

/// Eq. (3): optimal Btanh state count for the APC-Avg-Btanh block: `K ≈ N/2`.
pub fn apc_avg_btanh_states(input_size: usize) -> usize {
    nearest_even_state(input_size as f64 / 2.0)
}

/// Btanh state count for the APC-Max-Btanh block.
///
/// The paper reuses the original Btanh sizing (Kim et al., DAC'16) without
/// adjustment. For a counter fed by a single (un-averaged) APC the per-cycle
/// step has variance ≈ `N`, so matching the `tanh` gain requires `K ≈ 2·N`
/// (the four-way averaging in APC-Avg reduces that variance by four, which is
/// where Eq. 3's `N/2` comes from).
pub fn apc_max_btanh_states(input_size: usize) -> usize {
    nearest_even_state(2.0 * input_size as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::add::ExactParallelCounter;
    use crate::bitstream::StreamLength;
    use crate::sng::{Sng, SngKind};

    #[test]
    fn stanh_rejects_bad_state_counts() {
        assert!(Stanh::new(0).is_err());
        assert!(Stanh::new(3).is_err());
        assert!(Stanh::new(2).is_ok());
        assert!(Btanh::new(0).is_err());
        assert!(Btanh::new(5).is_err());
    }

    #[test]
    fn stanh_tracks_tanh() {
        let len = StreamLength::new(8192);
        for &x in &[-0.8f64, -0.4, 0.0, 0.4, 0.8] {
            let mut sng = Sng::new(SngKind::Lfsr32, (x.to_bits() & 0xFFFF) + 17);
            let input = sng.generate_bipolar(x, len).unwrap();
            let mut stanh = Stanh::new(8).unwrap();
            let output = stanh.transform(&input);
            let expected = stanh.reference(x);
            assert!(
                (output.bipolar_value() - expected).abs() < 0.25,
                "Stanh(8, {x}) = {} but tanh(4x) = {expected}",
                output.bipolar_value()
            );
        }
    }

    #[test]
    fn stanh_saturates_at_extremes() {
        let len = StreamLength::new(2048);
        let mut sng = Sng::new(SngKind::Lfsr32, 5);
        let input = sng.generate_bipolar(0.95, len).unwrap();
        let mut stanh = Stanh::new(16).unwrap();
        let output = stanh.transform(&input);
        assert!(output.bipolar_value() > 0.9);
    }

    #[test]
    fn stanh_is_antisymmetric_statistically() {
        let len = StreamLength::new(8192);
        let mut sng_pos = Sng::new(SngKind::Lfsr32, 42);
        let mut sng_neg = Sng::new(SngKind::Lfsr32, 42);
        let pos = sng_pos.generate_bipolar(0.5, len).unwrap();
        let neg = sng_neg.generate_bipolar(-0.5, len).unwrap();
        let mut stanh = Stanh::new(10).unwrap();
        let out_pos = stanh.transform(&pos).bipolar_value();
        let out_neg = stanh.transform(&neg).bipolar_value();
        assert!((out_pos + out_neg).abs() < 0.2);
    }

    #[test]
    fn shifted_mode_biases_output_upward() {
        let len = StreamLength::new(4096);
        let mut sng = Sng::new(SngKind::Lfsr32, 9);
        let input = sng.generate_bipolar(-0.2, len).unwrap();
        let mut standard = Stanh::with_mode(20, StanhMode::Standard).unwrap();
        let mut shifted = Stanh::with_mode(20, StanhMode::ShiftedFifth).unwrap();
        let standard_out = standard.transform(&input).bipolar_value();
        let shifted_out = shifted.transform(&input).bipolar_value();
        assert!(shifted_out > standard_out);
    }

    #[test]
    fn stanh_reset_between_transforms() {
        let a = BitStream::from_binary_str("1111111100000000").unwrap();
        let mut stanh = Stanh::new(4).unwrap();
        let first = stanh.transform(&a);
        let second = stanh.transform(&a);
        assert_eq!(first, second);
    }

    #[test]
    fn btanh_tracks_scaled_tanh() {
        let len = StreamLength::new(4096);
        let values = [0.3, 0.3, 0.3, 0.3];
        let streams: Vec<BitStream> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                Sng::new(SngKind::Lfsr32, 300 + i as u64)
                    .generate_bipolar(v, len)
                    .unwrap()
            })
            .collect();
        let counts = ExactParallelCounter::new().count(&streams).unwrap();
        let mut btanh = Btanh::new(apc_avg_btanh_states(values.len())).unwrap();
        let output = btanh.transform(&counts);
        // The sum is 1.2; Btanh saturates towards +1 for clearly positive sums.
        assert!(output.bipolar_value() > 0.5);
    }

    #[test]
    fn btanh_is_negative_for_negative_sums() {
        let len = StreamLength::new(4096);
        let values = [-0.4, -0.3, -0.5, -0.2];
        let streams: Vec<BitStream> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                Sng::new(SngKind::Lfsr32, 400 + i as u64)
                    .generate_bipolar(v, len)
                    .unwrap()
            })
            .collect();
        let counts = ExactParallelCounter::new().count(&streams).unwrap();
        let mut btanh = Btanh::new(4).unwrap();
        let output = btanh.transform(&counts);
        assert!(output.bipolar_value() < -0.5);
    }

    #[test]
    fn stanh_batch_matches_per_unit_transform() {
        let lengths = [64usize, 100, 127, 256, 1];
        let streams: Vec<BitStream> = lengths
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                Sng::new(SngKind::Lfsr32, 70 + i as u64)
                    .generate_bipolar(0.3 - 0.15 * i as f64, StreamLength::new(len))
                    .unwrap()
            })
            .collect();
        let refs: Vec<&BitStream> = streams.iter().collect();
        for mode in [StanhMode::Standard, StanhMode::ShiftedFifth] {
            let template = Stanh::with_mode(8, mode).unwrap();
            let batch = template.transform_batch(&refs);
            assert_eq!(batch.len(), streams.len());
            for (unit, stream) in streams.iter().enumerate() {
                let mut fsm = Stanh::with_mode(8, mode).unwrap();
                assert_eq!(batch[unit], fsm.transform(stream), "unit {unit} {mode:?}");
            }
        }
        assert!(Stanh::new(8).unwrap().transform_batch(&[]).is_empty());
    }

    #[test]
    fn btanh_batch_matches_per_unit_transform() {
        let counts: Vec<CountStream> = [64usize, 100, 127, 1]
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                let streams: Vec<BitStream> = (0..4)
                    .map(|lane| {
                        Sng::new(SngKind::Lfsr32, 500 + i as u64 * 7 + lane)
                            .generate_bipolar(0.4 - 0.2 * lane as f64, StreamLength::new(len))
                            .unwrap()
                    })
                    .collect();
                ExactParallelCounter::new().count(&streams).unwrap()
            })
            .collect();
        let refs: Vec<&CountStream> = counts.iter().collect();
        let template = Btanh::new(6).unwrap();
        let batch = template.transform_batch(&refs);
        for (unit, count_stream) in counts.iter().enumerate() {
            let mut counter = Btanh::new(6).unwrap();
            assert_eq!(batch[unit], counter.transform(count_stream), "unit {unit}");
        }
        assert!(template.transform_batch(&[]).is_empty());
    }

    /// Every super-word backend of the batch activation walks must match the
    /// scalar backend bit-for-bit, across unit counts that exercise both the
    /// wide groups and the scalar remainder, thresholds of both modes, and
    /// ragged stream tails.
    #[test]
    fn activation_batches_bit_exact_across_backends() {
        fn check<W: Word>(backend: &str) {
            for &len in &[100usize, 127, 1024] {
                // 9 units: at least one wide group plus a remainder for
                // every backend lane width.
                let streams: Vec<BitStream> = (0..9)
                    .map(|i| {
                        Sng::new(SngKind::Lfsr32, 70 + i as u64)
                            .generate_bipolar(0.4 - 0.09 * i as f64, StreamLength::new(len))
                            .unwrap()
                    })
                    .collect();
                let refs: Vec<&BitStream> = streams.iter().collect();
                for threshold in [4usize, 1] {
                    let mut expected: Vec<BitStream> = streams
                        .iter()
                        .map(|s| BitStream::zeros(s.stream_length()))
                        .collect();
                    let mut got = expected.clone();
                    stanh_batch_words_impl::<u64>(&refs, &mut expected, 8, threshold);
                    stanh_batch_words_impl::<W>(&refs, &mut got, 8, threshold);
                    assert_eq!(
                        got, expected,
                        "{backend} stanh len {len} threshold {threshold}"
                    );
                }
                let counts: Vec<CountStream> = (0..9)
                    .map(|u| {
                        let lanes: Vec<BitStream> = (0..4)
                            .map(|lane| {
                                Sng::new(SngKind::Lfsr32, 500 + u as u64 * 7 + lane)
                                    .generate_bipolar(
                                        0.4 - 0.2 * lane as f64,
                                        StreamLength::new(len),
                                    )
                                    .unwrap()
                            })
                            .collect();
                        ExactParallelCounter::new().count(&lanes).unwrap()
                    })
                    .collect();
                let count_refs: Vec<&CountStream> = counts.iter().collect();
                let mut expected: Vec<BitStream> = counts
                    .iter()
                    .map(|c| BitStream::zeros(StreamLength::new(c.len())))
                    .collect();
                let mut got = expected.clone();
                btanh_batch_words_impl::<u64>(&count_refs, &mut expected, 6);
                btanh_batch_words_impl::<W>(&count_refs, &mut got, 6);
                assert_eq!(got, expected, "{backend} btanh len {len}");
            }
        }
        check::<crate::word::W4>("wide");
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if crate::word::Backend::Avx2.is_available() {
            check::<crate::word::WAvx2>("avx2");
        }
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        check::<crate::word::WNeon>("neon");
    }

    #[test]
    fn nearest_even_state_rounds_correctly() {
        assert_eq!(nearest_even_state(7.2), 8);
        assert_eq!(nearest_even_state(8.0), 8);
        assert_eq!(nearest_even_state(8.9), 10);
        assert_eq!(nearest_even_state(0.3), 2);
        assert_eq!(nearest_even_state(-3.0), 2);
    }

    #[test]
    fn state_formulas_are_even_and_positive() {
        for &n in &[4usize, 16, 25, 64, 256] {
            for &l in &[128usize, 256, 1024, 4096] {
                for k in [
                    mux_avg_stanh_states(n, l),
                    mux_max_stanh_states(n, l),
                    apc_avg_btanh_states(n),
                    apc_max_btanh_states(n),
                ] {
                    assert!(k >= 2);
                    assert_eq!(k % 2, 0);
                }
            }
        }
    }

    #[test]
    fn eq1_matches_paper_magnitude() {
        // For N = 16, L = 1024 the formula gives roughly K ≈ 2*4 + 10*16/(33.27*4) ≈ 9.2 → 10.
        assert_eq!(mux_avg_stanh_states(16, 1024), 10);
    }

    #[test]
    fn eq3_is_half_input_size() {
        assert_eq!(apc_avg_btanh_states(16), 8);
        assert_eq!(apc_avg_btanh_states(64), 32);
    }
}
