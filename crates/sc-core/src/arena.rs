//! Reusable bit-stream buffers.
//!
//! Hot loops (feature-extraction blocks evaluating four receptive fields,
//! Monte-Carlo trials regenerating operand streams every iteration) used to
//! allocate a fresh `Vec<u64>` per stream per iteration. A [`StreamArena`]
//! keeps the word buffers of recycled streams and hands them back out, so
//! steady-state evaluation performs no heap allocation.
//!
//! The arena is deliberately dumb: it is a LIFO stack of word buffers with
//! no size classes. All streams inside one evaluation share a single length,
//! so the buffer on top of the stack is almost always the right capacity.

use crate::bitstream::{BitStream, StreamLength};

/// A pool of reusable bit-stream word buffers.
#[derive(Debug, Default)]
pub struct StreamArena {
    pool: Vec<Vec<u64>>,
}

impl StreamArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes an all-zeros stream of the given length, reusing a pooled
    /// buffer when one is available.
    pub fn take_zeroed(&mut self, length: StreamLength) -> BitStream {
        match self.pool.pop() {
            Some(mut words) => {
                words.clear();
                words.resize(length.words(), 0);
                BitStream::from_raw_words(words, length.bits())
            }
            None => BitStream::zeros(length),
        }
    }

    /// Returns a stream's buffer to the pool for reuse.
    pub fn recycle(&mut self, stream: BitStream) {
        self.pool.push(stream.into_raw_words());
    }

    /// Recycles every stream in an iterator.
    pub fn recycle_all<I: IntoIterator<Item = BitStream>>(&mut self, streams: I) {
        for stream in streams {
            self.recycle(stream);
        }
    }

    /// Number of pooled buffers currently held.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_round_trip() {
        let mut arena = StreamArena::new();
        let len = StreamLength::new(130);
        let a = arena.take_zeroed(len);
        assert_eq!(a.len(), 130);
        assert_eq!(a.count_ones(), 0);
        arena.recycle(a);
        assert_eq!(arena.pooled(), 1);
        let b = arena.take_zeroed(len);
        assert_eq!(arena.pooled(), 0);
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn recycled_buffers_are_rezeroed() {
        let mut arena = StreamArena::new();
        let len = StreamLength::new(70);
        let mut a = arena.take_zeroed(len);
        a.set(0, true);
        a.set(69, true);
        arena.recycle(a);
        let b = arena.take_zeroed(len);
        assert_eq!(b.count_ones(), 0, "recycled buffer leaked bits");
    }

    #[test]
    fn length_changes_are_handled() {
        let mut arena = StreamArena::new();
        let a = arena.take_zeroed(StreamLength::new(1024));
        arena.recycle(a);
        let b = arena.take_zeroed(StreamLength::new(65));
        assert_eq!(b.len(), 65);
        assert_eq!(b.count_ones(), 0);
        arena.recycle(b);
        let c = arena.take_zeroed(StreamLength::new(4096));
        assert_eq!(c.len(), 4096);
        assert_eq!(c.count_ones(), 0);
    }
}
