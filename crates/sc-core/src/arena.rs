//! Reusable bit-stream and count buffers.
//!
//! Hot loops (feature-extraction blocks evaluating four receptive fields,
//! the layer-fused serving path, Monte-Carlo trials regenerating operand
//! streams every iteration) used to allocate a fresh `Vec` per stream per
//! iteration. A [`StreamArena`] keeps the word buffers of recycled streams
//! (and the `u16` buffers of recycled APC count streams) and hands them back
//! out, so steady-state evaluation performs no heap allocation.
//!
//! The arena is deliberately dumb: it is a LIFO stack of buffers with no
//! size classes. All streams inside one evaluation share a single length, so
//! the buffer on top of the stack is almost always the right capacity.
//!
//! ## Ownership contract
//!
//! The arena is owned by the outermost evaluation loop (a serving
//! [`Session`], a feature-block call, a benchmark) and threaded *down*
//! through kernels by `&mut` borrow. A kernel that takes a buffer either
//! returns it to the caller (outputs) or recycles it before returning
//! (intermediates); whoever receives a returned stream recycles it once the
//! bits are decoded. Buffers recycled into a different arena than they were
//! taken from are fine — a buffer is just a `Vec`.
//!
//! [`Session`]: https://docs.rs/sc-serve

use crate::bitstream::{BitStream, StreamLength};

/// Running reuse counters of a [`StreamArena`].
///
/// `stream_reuses / (stream_reuses + stream_allocs)` is the buffer reuse
/// rate; a steady-state hot loop should report a `stream_allocs` delta of
/// zero between snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Stream requests served from the pool (no heap allocation).
    pub stream_reuses: u64,
    /// Stream requests that had to allocate a fresh buffer.
    pub stream_allocs: u64,
    /// Count-buffer requests served from the pool.
    pub count_reuses: u64,
    /// Count-buffer requests that had to allocate.
    pub count_allocs: u64,
    /// Stream buffers currently pooled.
    pub pooled_streams: usize,
    /// Total `u64` words held by pooled stream buffers (capacity, i.e. the
    /// memory the pool pins).
    pub pooled_words: usize,
    /// Count buffers currently pooled.
    pub pooled_counts: usize,
}

impl ArenaStats {
    /// Total buffer requests that allocated (streams + counts).
    pub fn total_allocs(&self) -> u64 {
        self.stream_allocs + self.count_allocs
    }

    /// Merges another arena's counters into this one (used to aggregate over
    /// fan-out worker sessions).
    pub fn merge(&mut self, other: &ArenaStats) {
        self.stream_reuses += other.stream_reuses;
        self.stream_allocs += other.stream_allocs;
        self.count_reuses += other.count_reuses;
        self.count_allocs += other.count_allocs;
        self.pooled_streams += other.pooled_streams;
        self.pooled_words += other.pooled_words;
        self.pooled_counts += other.pooled_counts;
    }
}

/// A pool of reusable bit-stream word buffers and APC count buffers.
#[derive(Debug, Default)]
pub struct StreamArena {
    pool: Vec<Vec<u64>>,
    counts: Vec<Vec<u16>>,
    stream_reuses: u64,
    stream_allocs: u64,
    count_reuses: u64,
    count_allocs: u64,
}

impl StreamArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes an all-zeros stream of the given length, reusing a pooled
    /// buffer when one is available.
    ///
    /// Only the live word span (`length.words()` words) is written: a
    /// recycled 8192-bit buffer serving a 64-bit stream costs a one-word
    /// clear, not a full-capacity memset. This relies on every recycled
    /// stream having its tail bits masked (debug-asserted in
    /// [`StreamArena::recycle`]) and on [`BitStream`] never exposing words
    /// beyond its logical length.
    pub fn take_zeroed(&mut self, length: StreamLength) -> BitStream {
        match self.pool.pop() {
            Some(mut words) => {
                self.stream_reuses += 1;
                // `clear` + `resize` writes exactly the live span: the
                // truncation is free and `resize` zeroes `length.words()`
                // entries regardless of the buffer's previous (possibly much
                // larger) length or capacity.
                words.clear();
                words.resize(length.words(), 0);
                BitStream::from_raw_words(words, length.bits())
            }
            None => {
                self.stream_allocs += 1;
                BitStream::zeros(length)
            }
        }
    }

    /// Returns a stream's buffer to the pool for reuse.
    pub fn recycle(&mut self, stream: BitStream) {
        debug_assert!(
            stream.tail_is_masked(),
            "recycled stream carries bits beyond its logical length"
        );
        self.pool.push(stream.into_raw_words());
    }

    /// Recycles every stream in an iterator.
    pub fn recycle_all<I: IntoIterator<Item = BitStream>>(&mut self, streams: I) {
        for stream in streams {
            self.recycle(stream);
        }
    }

    /// Takes an all-zeros `u16` count buffer of `len` entries, reusing a
    /// pooled buffer when one is available (the binary-domain twin of
    /// [`StreamArena::take_zeroed`], used by the APC kernels).
    pub fn take_counts(&mut self, len: usize) -> Vec<u16> {
        match self.counts.pop() {
            Some(mut buffer) => {
                self.count_reuses += 1;
                buffer.clear();
                buffer.resize(len, 0);
                buffer
            }
            None => {
                self.count_allocs += 1;
                vec![0u16; len]
            }
        }
    }

    /// Returns a count buffer to the pool for reuse.
    pub fn recycle_counts(&mut self, buffer: Vec<u16>) {
        self.counts.push(buffer);
    }

    /// Number of pooled stream buffers currently held.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Current reuse counters and pool occupancy.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            stream_reuses: self.stream_reuses,
            stream_allocs: self.stream_allocs,
            count_reuses: self.count_reuses,
            count_allocs: self.count_allocs,
            pooled_streams: self.pool.len(),
            pooled_words: self.pool.iter().map(Vec::capacity).sum(),
            pooled_counts: self.counts.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_round_trip() {
        let mut arena = StreamArena::new();
        let len = StreamLength::new(130);
        let a = arena.take_zeroed(len);
        assert_eq!(a.len(), 130);
        assert_eq!(a.count_ones(), 0);
        arena.recycle(a);
        assert_eq!(arena.pooled(), 1);
        let b = arena.take_zeroed(len);
        assert_eq!(arena.pooled(), 0);
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn recycled_buffers_are_rezeroed() {
        let mut arena = StreamArena::new();
        let len = StreamLength::new(70);
        let mut a = arena.take_zeroed(len);
        a.set(0, true);
        a.set(69, true);
        arena.recycle(a);
        let b = arena.take_zeroed(len);
        assert_eq!(b.count_ones(), 0, "recycled buffer leaked bits");
    }

    #[test]
    fn length_changes_are_handled() {
        let mut arena = StreamArena::new();
        let a = arena.take_zeroed(StreamLength::new(1024));
        arena.recycle(a);
        let b = arena.take_zeroed(StreamLength::new(65));
        assert_eq!(b.len(), 65);
        assert_eq!(b.count_ones(), 0);
        arena.recycle(b);
        let c = arena.take_zeroed(StreamLength::new(4096));
        assert_eq!(c.len(), 4096);
        assert_eq!(c.count_ones(), 0);
    }

    #[test]
    fn long_buffer_serves_short_stream_and_keeps_capacity_pooled() {
        let mut arena = StreamArena::new();
        let long = arena.take_zeroed(StreamLength::new(8192));
        arena.recycle(long);
        let short = arena.take_zeroed(StreamLength::new(64));
        assert_eq!(short.len(), 64);
        assert_eq!(short.as_words().len(), 1);
        arena.recycle(short);
        // The 128-word capacity stays with the pooled buffer and is reported.
        assert!(arena.stats().pooled_words >= 128);
    }

    #[test]
    fn stats_track_reuse_and_allocation() {
        let mut arena = StreamArena::new();
        let len = StreamLength::new(256);
        let a = arena.take_zeroed(len);
        let b = arena.take_zeroed(len);
        assert_eq!(arena.stats().stream_allocs, 2);
        assert_eq!(arena.stats().stream_reuses, 0);
        arena.recycle(a);
        arena.recycle(b);
        assert_eq!(arena.stats().pooled_streams, 2);
        let c = arena.take_zeroed(len);
        let stats = arena.stats();
        assert_eq!((stats.stream_allocs, stats.stream_reuses), (2, 1));
        assert_eq!(stats.pooled_streams, 1);
        assert!(stats.pooled_words >= 4);
        arena.recycle(c);
    }

    #[test]
    fn count_buffers_pool_like_streams() {
        let mut arena = StreamArena::new();
        let mut counts = arena.take_counts(100);
        assert_eq!(counts.len(), 100);
        counts[7] = 9;
        arena.recycle_counts(counts);
        let again = arena.take_counts(50);
        assert_eq!(again.len(), 50);
        assert!(again.iter().all(|&c| c == 0), "recycled counts leaked");
        let stats = arena.stats();
        assert_eq!((stats.count_allocs, stats.count_reuses), (1, 1));
        assert_eq!(stats.pooled_counts, 0);
        arena.recycle_counts(again);
        assert_eq!(arena.stats().pooled_counts, 1);
    }

    #[test]
    fn merged_stats_aggregate_workers() {
        let mut root = ArenaStats {
            stream_reuses: 1,
            stream_allocs: 2,
            ..ArenaStats::default()
        };
        let worker = ArenaStats {
            stream_reuses: 3,
            count_allocs: 4,
            pooled_streams: 5,
            ..ArenaStats::default()
        };
        root.merge(&worker);
        assert_eq!(root.stream_reuses, 4);
        assert_eq!(root.stream_allocs, 2);
        assert_eq!(root.count_allocs, 4);
        assert_eq!(root.pooled_streams, 5);
        assert_eq!(root.total_allocs(), 6);
    }
}
