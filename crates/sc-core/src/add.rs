//! Stochastic addition.
//!
//! The paper studies four adder families for the summation stage of an
//! inner-product block:
//!
//! 1. [`OrAdder`] — a single OR gate per pair of streams. Cheapest hardware,
//!    but "1 OR 1 = 1" loses counts, so it is only usable with aggressively
//!    pre-scaled unipolar streams (Table 1).
//! 2. [`MuxAdder`] — an n-to-1 multiplexer with a uniformly random selector.
//!    Produces the *scaled* sum `(1/n)·Σ xᵢ`; accuracy improves with stream
//!    length (Table 2).
//! 3. [`Apc`] — an approximate parallel counter that counts the ones in each
//!    bit column and emits a binary count per cycle. Nearly exact (<1 %
//!    relative error, Table 3) at ~40 % lower gate cost than an exact counter.
//! 4. Two-line representation adder — see [`crate::twoline`].

use crate::arena::StreamArena;
use crate::bitstream::{BitStream, StreamLength};
use crate::csa::{VerticalCounter, WideVerticalCounter};
use crate::error::ScError;
use crate::rng::RandomSource;
use crate::word::{dispatch_word_kernel, Word};
use serde::{Deserialize, Serialize};

/// Words per chunk of the plan's chunk-grouped wide replay entries. All
/// super-word backends have `LANES` dividing this, so a chunk replays in
/// `WIDE_CHUNK / LANES` full-width passes.
const WIDE_CHUNK: usize = 4;

/// OR-gate adder: bitwise OR over all input streams.
///
/// The result approximates the (unscaled) sum only when the probability of
/// two streams being one simultaneously is negligible, which requires heavy
/// pre-scaling of unipolar inputs. It is included as the paper's strawman.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrAdder;

impl OrAdder {
    /// Creates an OR-gate adder.
    pub fn new() -> Self {
        Self
    }

    /// ORs all input streams together.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] for an empty slice and
    /// [`ScError::LengthMismatch`] if the streams differ in length.
    pub fn sum(&self, inputs: &[BitStream]) -> Result<BitStream, ScError> {
        let first = inputs.first().ok_or(ScError::EmptyInput)?;
        let mut acc = first.clone();
        for stream in &inputs[1..] {
            if stream.len() != acc.len() {
                return Err(ScError::LengthMismatch {
                    left: acc.len(),
                    right: stream.len(),
                });
            }
            acc |= stream;
        }
        Ok(acc)
    }
}

/// MUX adder: selects one input stream per cycle uniformly at random.
///
/// The output stream encodes `(1/n)·Σ xᵢ`; the down-scaling factor `1/n` is
/// inherent to the structure and must be compensated later (the paper folds
/// the scale-back into the activation function design).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MuxAdder;

impl MuxAdder {
    /// Creates a MUX adder.
    pub fn new() -> Self {
        Self
    }

    /// Sums the input streams, driving the selector from `selector_rng`.
    ///
    /// The selector consumes one raw [`RandomSource::next_u32`] sample per
    /// cycle (batched via [`RandomSource::fill_u32`]) and reduces it modulo
    /// the lane count — the trait's rejection-free default reduction.
    /// Sources that override [`RandomSource::next_below`] with a different
    /// reduction are not honored here.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] for an empty slice and
    /// [`ScError::LengthMismatch`] if the streams differ in length.
    pub fn sum<R: RandomSource>(
        &self,
        inputs: &[BitStream],
        selector_rng: &mut R,
    ) -> Result<BitStream, ScError> {
        let first = inputs.first().ok_or(ScError::EmptyInput)?;
        let len = first.len();
        for stream in inputs {
            if stream.len() != len {
                return Err(ScError::LengthMismatch {
                    left: len,
                    right: stream.len(),
                });
            }
        }
        let mut out = BitStream::zeros(StreamLength::try_new(len)?);
        // One selector draw per cycle (same order as the per-bit reference),
        // drawn in batch and bit-sliced into per-lane selection masks so the
        // data movement is a handful of masked word ORs instead of 64
        // per-bit extract/insert pairs (see `SelectorSlicer`).
        let words: Vec<&[u64]> = inputs.iter().map(|s| s.as_words()).collect();
        let mut slicer = SelectorSlicer::new(inputs.len(), len, selector_rng);
        for (w, out_word) in out.words_mut().iter_mut().enumerate() {
            let bits = (len - w * 64).min(64);
            *out_word = slicer.select_word(w, bits, |lane| words[lane][w]);
        }
        Ok(out)
    }

    /// Fused multiply-select: sums the *element-wise XNOR products* of
    /// `inputs` and `weights` without materializing the product streams.
    ///
    /// Bit-exact with forming `inputs[i].xnor(&weights[i])` for every lane
    /// and then calling [`MuxAdder::sum`]: the selector is drawn once per
    /// cycle in the same order, and the forwarded bit is the product bit of
    /// the selected lane.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] for empty slices and
    /// [`ScError::LengthMismatch`] for mismatched element counts or stream
    /// lengths.
    pub fn sum_products<R: RandomSource>(
        &self,
        inputs: &[BitStream],
        weights: &[BitStream],
        selector_rng: &mut R,
    ) -> Result<BitStream, ScError> {
        let len = common_product_length(inputs, weights)?;
        let mut out = BitStream::zeros(StreamLength::try_new(len)?);
        let xs: Vec<&[u64]> = inputs.iter().map(|s| s.as_words()).collect();
        let ws: Vec<&[u64]> = weights.iter().map(|s| s.as_words()).collect();
        let mut slicer = SelectorSlicer::new(inputs.len(), len, selector_rng);
        for (w, out_word) in out.words_mut().iter_mut().enumerate() {
            let bits = (len - w * 64).min(64);
            *out_word = slicer.select_word(w, bits, |lane| !(xs[lane][w] ^ ws[lane][w]));
        }
        Ok(out)
    }

    /// Sums the input streams replaying a pre-drawn [`MuxSelectorPlan`].
    ///
    /// Bit-exact with [`MuxAdder::sum`] driven by the RNG the plan was built
    /// from: the plan records exactly the per-cycle draws that call would
    /// make.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] for an empty slice and
    /// [`ScError::LengthMismatch`] if the lane count or stream length does
    /// not match the plan.
    pub fn sum_with_plan(
        &self,
        inputs: &[BitStream],
        plan: &MuxSelectorPlan,
    ) -> Result<BitStream, ScError> {
        let len = common_length(inputs)?;
        let mut out = BitStream::zeros(StreamLength::try_new(len)?);
        self.sum_with_plan_into(inputs, plan, &mut out)?;
        Ok(out)
    }

    /// [`MuxAdder::sum_with_plan`] writing into a caller-provided stream
    /// (typically taken from a [`StreamArena`]), so the fused layer path
    /// allocates no output buffer. Every word of `out` is overwritten.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MuxAdder::sum_with_plan`], plus
    /// [`ScError::LengthMismatch`] if `out` has the wrong length.
    pub fn sum_with_plan_into(
        &self,
        inputs: &[BitStream],
        plan: &MuxSelectorPlan,
        out: &mut BitStream,
    ) -> Result<(), ScError> {
        let len = common_length(inputs)?;
        plan.check_operands(inputs.len(), len)?;
        check_output_length(out, len)?;
        let words: Vec<&[u64]> = inputs.iter().map(|s| s.as_words()).collect();
        plan_sum_words(plan, &words, out.words_mut());
        Ok(())
    }

    /// Fused multiply-select replaying a pre-drawn [`MuxSelectorPlan`].
    ///
    /// Bit-exact with [`MuxAdder::sum_products`] driven by the RNG the plan
    /// was built from; sharing one plan across the output units of a layer
    /// amortizes the selector draw + slice pass the per-unit path repeats
    /// per unit.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] for empty slices and
    /// [`ScError::LengthMismatch`] for mismatched element counts, stream
    /// lengths, or a plan built for different operand dimensions.
    pub fn sum_products_with_plan(
        &self,
        inputs: &[BitStream],
        weights: &[BitStream],
        plan: &MuxSelectorPlan,
    ) -> Result<BitStream, ScError> {
        let len = common_product_length(inputs, weights)?;
        let mut out = BitStream::zeros(StreamLength::try_new(len)?);
        self.sum_products_with_plan_into(inputs, weights, plan, &mut out)?;
        Ok(out)
    }

    /// [`MuxAdder::sum_products_with_plan`] writing into a caller-provided
    /// stream (typically taken from a [`StreamArena`]). Every word of `out`
    /// is overwritten.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MuxAdder::sum_products_with_plan`], plus
    /// [`ScError::LengthMismatch`] if `out` has the wrong length.
    pub fn sum_products_with_plan_into(
        &self,
        inputs: &[BitStream],
        weights: &[BitStream],
        plan: &MuxSelectorPlan,
        out: &mut BitStream,
    ) -> Result<(), ScError> {
        let len = common_product_length(inputs, weights)?;
        plan.check_operands(inputs.len(), len)?;
        check_output_length(out, len)?;
        let xs: Vec<&[u64]> = inputs.iter().map(|s| s.as_words()).collect();
        let ws: Vec<&[u64]> = weights.iter().map(|s| s.as_words()).collect();
        plan_products_words(plan, &xs, &ws, out.words_mut());
        Ok(())
    }

    /// The scale factor the MUX output must be multiplied by to recover the
    /// true sum (equal to the number of inputs).
    pub fn scale_factor(&self, input_count: usize) -> f64 {
        input_count as f64
    }
}

/// Exact strength-reduced modulo (Lemire's fastmod): `rem(x) == x % d` for
/// every 32-bit `x`, replacing the hardware divide in the selector hot loop
/// with two multiplies. The divide moves to construction, paid once per MUX
/// evaluation instead of once per cycle.
struct FastMod {
    d: u32,
    m: u64,
    /// `Some(d - 1)` when `d` is a power of two: the reduction is one AND.
    pow2_mask: Option<u32>,
}

impl FastMod {
    fn new(d: u32) -> Self {
        debug_assert!(d > 0, "modulus must be non-zero");
        Self {
            d,
            // For d == 1 this wraps to 0 and rem() correctly returns 0.
            m: (u64::MAX / u64::from(d)).wrapping_add(1),
            pow2_mask: d.is_power_of_two().then(|| d - 1),
        }
    }

    #[inline]
    fn rem(&self, x: u32) -> u32 {
        if let Some(mask) = self.pow2_mask {
            return x & mask;
        }
        let low = self.m.wrapping_mul(u64::from(x));
        ((u128::from(low) * u128::from(self.d)) >> 64) as u32
    }
}

/// Bit-sliced MUX selector.
///
/// Three changes over the selector-serial reference loop, none of which
/// alter a single output bit:
///
/// 1. the raw selector samples for the whole stream are drawn up front via
///    [`RandomSource::fill_u32`], which the default 32-bit LFSR services
///    through its staged GF(2) sequence recurrences — removing the
///    per-cycle serial register dependency that dominates the loop;
/// 2. the modulo reduction (`sample % lanes`, the trait's rejection-free
///    default) is strength-reduced to two multiplies (Lemire's exact
///    fastmod), paying the divide once per evaluation instead of per cycle;
/// 3. the 64 draws of an output word are sliced into per-lane selection
///    masks, assembling the word from masked ORs of whole lane words
///    instead of 64 per-bit extract/insert pairs.
///
/// The sample order is exactly the per-bit reference order, so the output
/// is bit-identical to the selector-serial loop it replaces.
struct SelectorSlicer {
    /// Raw selector samples, one per stream cycle.
    samples: Vec<u32>,
    /// Per-lane mask of the cycles (bits of the current word) that selected
    /// the lane. Only the entries listed in `touched` are non-zero (for the
    /// many-lane variant; the ≤64-lane variant scans all lanes instead).
    masks: Vec<u64>,
    /// Lanes with a non-zero mask for the current word (at most 64).
    touched: Vec<u32>,
    modulo: FastMod,
}

impl SelectorSlicer {
    fn new<R: RandomSource>(lanes: usize, stream_bits: usize, rng: &mut R) -> Self {
        let mut samples = vec![0u32; stream_bits];
        rng.fill_u32(&mut samples);
        Self {
            samples,
            masks: vec![0u64; lanes],
            touched: Vec::with_capacity(64),
            modulo: FastMod::new(lanes as u32),
        }
    }

    /// Consumes the `bits` selector samples of output word `word` (reference
    /// order) and returns the word whose bit `b` is bit `b` of
    /// `lane_word(selected_b)`.
    fn select_word(&mut self, word: usize, bits: usize, lane_word: impl Fn(usize) -> u64) -> u64 {
        let mut out = 0u64;
        self.slice_word(word, bits, |lane, mask| out |= lane_word(lane) & mask);
        out
    }

    /// Slices the `bits` selector samples of output word `word` into per-lane
    /// cycle masks and emits every non-zero `(lane, mask)` pair.
    fn slice_word(&mut self, word: usize, bits: usize, mut emit: impl FnMut(usize, u64)) {
        let samples = &self.samples[word * 64..word * 64 + bits];
        if self.masks.len() <= 64 {
            // Few lanes: branch-free slicing pass, then scan every lane.
            for (bit, &sample) in samples.iter().enumerate() {
                let lane = self.modulo.rem(sample) as usize;
                self.masks[lane] |= 1u64 << bit;
            }
            for lane in 0..self.masks.len() {
                let mask = self.masks[lane];
                if mask != 0 {
                    emit(lane, mask);
                    self.masks[lane] = 0;
                }
            }
        } else {
            // Many lanes: track the (at most 64) touched lanes so the
            // combine pass does not scan hundreds of idle ones.
            for (bit, &sample) in samples.iter().enumerate() {
                let lane = self.modulo.rem(sample) as usize;
                if self.masks[lane] == 0 {
                    self.touched.push(lane as u32);
                }
                self.masks[lane] |= 1u64 << bit;
            }
            for &lane in &self.touched {
                let lane = lane as usize;
                emit(lane, self.masks[lane]);
                self.masks[lane] = 0;
            }
            self.touched.clear();
        }
    }
}

/// Pre-drawn, reusable MUX selector masks for one stream length.
///
/// A layer of MUX inner-product blocks shares its selector wiring: every
/// output unit of the layer sees the *same* selector draws because the
/// selector LFSR is seeded per pool-window field, not per unit. The per-unit
/// path re-draws (and re-slices) those samples for every unit; a
/// [`MuxSelectorPlan`] runs the draw + fastmod + bit-slice pass once and
/// replays the resulting per-word `(lane, mask)` pairs against each unit's
/// operand words. Replaying the plan is bit-identical to re-drawing from an
/// identically-seeded RNG, and constructing the plan consumes exactly the
/// draws [`MuxAdder::sum`] would (one per stream cycle), leaving the RNG in
/// the same state.
#[derive(Debug, Clone)]
pub struct MuxSelectorPlan {
    lanes: usize,
    stream_bits: usize,
    /// Flattened `(lane, cycle-mask)` pairs; `word_starts[w]..word_starts[w+1]`
    /// indexes the pairs of output word `w`.
    entries: Vec<(u32, u64)>,
    word_starts: Vec<u32>,
    /// The same masks regrouped for super-word replay: per chunk of
    /// [`WIDE_CHUNK`] consecutive output words, one entry per lane the chunk
    /// selects, carrying that lane's mask for each word of the chunk
    /// (`chunk_starts[c]..chunk_starts[c+1]` indexes chunk `c`). Words past
    /// the last full chunk replay through the flat `entries`.
    wide_entries: Vec<(u32, [u64; WIDE_CHUNK])>,
    chunk_starts: Vec<u32>,
}

impl MuxSelectorPlan {
    /// Draws the selector samples for a whole stream and slices them into
    /// per-word lane masks.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] for a zero lane count and
    /// [`ScError::InvalidParameter`] for a zero stream length.
    pub fn new<R: RandomSource>(
        lanes: usize,
        stream_bits: usize,
        rng: &mut R,
    ) -> Result<Self, ScError> {
        if lanes == 0 {
            return Err(ScError::EmptyInput);
        }
        StreamLength::try_new(stream_bits)?;
        let mut slicer = SelectorSlicer::new(lanes, stream_bits, rng);
        let words = stream_bits.div_ceil(64);
        let mut entries = Vec::with_capacity(stream_bits.min(64 * words));
        let mut word_starts = Vec::with_capacity(words + 1);
        word_starts.push(0u32);
        for w in 0..words {
            let bits = (stream_bits - w * 64).min(64);
            slicer.slice_word(w, bits, |lane, mask| entries.push((lane as u32, mask)));
            word_starts.push(entries.len() as u32);
        }
        // Regroup the flat per-word entries by lane within each full chunk
        // of WIDE_CHUNK words, so the super-word replay loads one operand
        // super-word per touched lane per chunk instead of one word per
        // touched lane per word. A slot map keeps the grouping linear in the
        // entry count. Tail words (and word counts below one chunk) keep
        // replaying through the flat entries.
        let chunks = words / WIDE_CHUNK;
        let mut wide_entries: Vec<(u32, [u64; WIDE_CHUNK])> = Vec::new();
        let mut chunk_starts = Vec::with_capacity(chunks + 1);
        chunk_starts.push(0u32);
        let mut slots = vec![u32::MAX; lanes];
        for c in 0..chunks {
            let chunk_start = wide_entries.len();
            for j in 0..WIDE_CHUNK {
                let w = c * WIDE_CHUNK + j;
                let span = word_starts[w] as usize..word_starts[w + 1] as usize;
                for &(lane, mask) in &entries[span] {
                    let slot = &mut slots[lane as usize];
                    if *slot == u32::MAX {
                        *slot = wide_entries.len() as u32;
                        wide_entries.push((lane, [0u64; WIDE_CHUNK]));
                    }
                    wide_entries[*slot as usize].1[j] = mask;
                }
            }
            for &(lane, _) in &wide_entries[chunk_start..] {
                slots[lane as usize] = u32::MAX;
            }
            chunk_starts.push(wide_entries.len() as u32);
        }
        Ok(Self {
            lanes,
            stream_bits,
            entries,
            word_starts,
            wide_entries,
            chunk_starts,
        })
    }

    /// Number of MUX input lanes the plan selects between.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Stream length (in bits) the plan covers.
    pub fn stream_bits(&self) -> usize {
        self.stream_bits
    }

    /// Assembles output word `word` from `lane_word`, replaying the recorded
    /// masks.
    #[inline]
    fn select_word(&self, word: usize, lane_word: impl Fn(usize) -> u64) -> u64 {
        let start = self.word_starts[word] as usize;
        let end = self.word_starts[word + 1] as usize;
        let mut out = 0u64;
        for &(lane, mask) in &self.entries[start..end] {
            out |= lane_word(lane as usize) & mask;
        }
        out
    }

    fn check_operands(&self, lanes: usize, len: usize) -> Result<(), ScError> {
        if lanes != self.lanes {
            return Err(ScError::LengthMismatch {
                left: self.lanes,
                right: lanes,
            });
        }
        if len != self.stream_bits {
            return Err(ScError::LengthMismatch {
                left: self.stream_bits,
                right: len,
            });
        }
        Ok(())
    }
}

/// Replays a plan into `out`: full chunks through the chunk-grouped wide
/// entries (`fetch(lane, w)` loads a lane's operand super-word at word
/// offset `w`), trailing words through the flat per-word entries
/// (`fetch_word(lane, w)` loads a single operand word). The scalar backend
/// (`LANES == 1`) takes the flat path for every word, which is exactly the
/// pre-refactor replay loop.
///
/// Bit-exact with the flat replay for any backend: each output bit is
/// selected from exactly one lane, so the masked ORs commute, and a lane's
/// chunk masks are the same bits its per-word masks carry.
#[inline(always)]
fn replay_plan<W: Word>(
    plan: &MuxSelectorPlan,
    out: &mut [u64],
    fetch: impl Fn(usize, usize) -> W,
    fetch_word: impl Fn(usize, usize) -> u64,
) {
    let mut w = 0usize;
    if W::LANES > 1 {
        let chunks = plan.chunk_starts.len() - 1;
        for c in 0..chunks {
            let span = plan.chunk_starts[c] as usize..plan.chunk_starts[c + 1] as usize;
            let entries = &plan.wide_entries[span];
            let base = c * WIDE_CHUNK;
            let mut s = 0;
            while s < WIDE_CHUNK {
                let mut acc = W::zero();
                for &(lane, masks) in entries {
                    acc = acc.or(W::load(&masks[s..]).and(fetch(lane as usize, base + s)));
                }
                acc.store(&mut out[base + s..base + s + W::LANES]);
                s += W::LANES;
            }
        }
        w = chunks * WIDE_CHUNK;
    }
    while w < out.len() {
        out[w] = plan.select_word(w, |lane| fetch_word(lane, w));
        w += 1;
    }
}

/// [`MuxAdder::sum_with_plan_into`]'s word kernel, generic over the
/// super-word backend.
#[inline(always)]
fn plan_sum_words_impl<W: Word>(plan: &MuxSelectorPlan, words: &[&[u64]], out: &mut [u64]) {
    replay_plan::<W>(
        plan,
        out,
        |lane, w| W::load(&words[lane][w..]),
        |lane, w| words[lane][w],
    );
}

/// [`MuxAdder::sum_products_with_plan_into`]'s word kernel: the fetched
/// operand is the XNOR product super-word. The beyond-stream tail bits an
/// XNOR raises (both operands store zero there) are killed by the selector
/// masks, which never select past the stream length.
#[inline(always)]
fn plan_products_words_impl<W: Word>(
    plan: &MuxSelectorPlan,
    xs: &[&[u64]],
    ws: &[&[u64]],
    out: &mut [u64],
) {
    replay_plan::<W>(
        plan,
        out,
        |lane, w| W::load(&xs[lane][w..]).xor(W::load(&ws[lane][w..])).not(),
        |lane, w| !(xs[lane][w] ^ ws[lane][w]),
    );
}

fn plan_sum_words(plan: &MuxSelectorPlan, words: &[&[u64]], out: &mut [u64]) {
    dispatch_word_kernel!(
        plan_sum_words_impl,
        mux_avx2::plan_sum_avx2,
        (plan, words, out)
    )
}

fn plan_products_words(plan: &MuxSelectorPlan, xs: &[&[u64]], ws: &[&[u64]], out: &mut [u64]) {
    dispatch_word_kernel!(
        plan_products_words_impl,
        mux_avx2::plan_products_avx2,
        (plan, xs, ws, out)
    )
}

/// Concrete AVX2 entry points: `#[target_feature]` wrappers over the
/// `#[inline(always)]` generic kernels, so the intrinsics inline into one
/// AVX2-compiled body per kernel (see [`crate::word`]).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod mux_avx2 {
    use super::*;
    use crate::word::WAvx2;

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn plan_sum_avx2(plan: &MuxSelectorPlan, words: &[&[u64]], out: &mut [u64]) {
        plan_sum_words_impl::<WAvx2>(plan, words, out)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn plan_products_avx2(
        plan: &MuxSelectorPlan,
        xs: &[&[u64]],
        ws: &[&[u64]],
        out: &mut [u64],
    ) {
        plan_products_words_impl::<WAvx2>(plan, xs, ws, out)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn product_columns_avx2(
        inputs: &[&[u64]],
        weights: &[&[u64]],
        len: usize,
        counts: &mut [u16],
    ) {
        accumulate_product_columns_impl::<WAvx2>(inputs, weights, len, counts)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn product_columns_shared_avx2(
        inputs: &[&[u64]],
        unit_lane_words: &[Vec<&[u64]>],
        len: usize,
        counts: &mut [Vec<u16>],
    ) {
        accumulate_product_columns_shared_impl::<WAvx2>(inputs, unit_lane_words, len, counts)
    }
}

/// A per-cycle binary count sequence produced by a parallel counter.
///
/// `counts[t]` is the number of ones seen across all input streams at cycle
/// `t`. The sequence carries its lane count so its (bipolar) numeric value
/// can be recovered.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountStream {
    counts: Vec<u16>,
    lanes: usize,
}

impl CountStream {
    /// Creates a count stream from raw counts.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] if `counts` is empty and
    /// [`ScError::InvalidParameter`] if any count exceeds `lanes`.
    pub fn new(counts: Vec<u16>, lanes: usize) -> Result<Self, ScError> {
        if counts.is_empty() {
            return Err(ScError::EmptyInput);
        }
        if counts.iter().any(|&c| usize::from(c) > lanes) {
            return Err(ScError::InvalidParameter {
                name: "counts",
                message: format!("a count exceeded the lane count {lanes}"),
            });
        }
        Ok(Self { counts, lanes })
    }

    /// The per-cycle counts.
    pub fn counts(&self) -> &[u16] {
        &self.counts
    }

    /// Consumes the stream and returns its count buffer, so it can be
    /// recycled into a [`StreamArena`] count pool.
    pub fn into_counts(self) -> Vec<u16> {
        self.counts
    }

    /// Number of input lanes the counts were taken over.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of cycles (bit-stream length).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the stream is empty (never true for constructed streams).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total number of ones accumulated over all cycles.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&c| u64::from(c)).sum()
    }

    /// The bipolar value of the *unscaled* sum `Σ xᵢwᵢ` the counts represent.
    ///
    /// With `n` lanes of bipolar products and stream length `m`, the sum of
    /// the represented values is `(2·total − n·m) / m`.
    pub fn bipolar_sum(&self) -> f64 {
        let m = self.counts.len() as f64;
        let n = self.lanes as f64;
        (2.0 * self.total() as f64 - n * m) / m
    }

    /// Merges several count streams by summing their per-cycle counts, as a
    /// binary adder tree does when four APC-based inner-product blocks feed
    /// one pooling block. The lane counts add up, so the merged stream still
    /// decodes correctly via [`CountStream::bipolar_sum`].
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] if `streams` is empty and
    /// [`ScError::LengthMismatch`] if lengths differ.
    pub fn merge_sum(streams: &[CountStream]) -> Result<CountStream, ScError> {
        let len = Self::common_merge_length(streams)?;
        Self::merge_sum_into(streams, vec![0u16; len])
    }

    /// [`CountStream::merge_sum`] with the output count buffer taken from
    /// `arena`'s count pool (recycle the result's buffer via
    /// [`CountStream::into_counts`] when done). Results are identical.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CountStream::merge_sum`]; validation happens
    /// before the buffer is taken, so an invalid input cannot leak one from
    /// the pool.
    pub fn merge_sum_with(
        streams: &[CountStream],
        arena: &mut StreamArena,
    ) -> Result<CountStream, ScError> {
        let len = Self::common_merge_length(streams)?;
        Self::merge_sum_into(streams, arena.take_counts(len))
    }

    /// Validates a merge operand set and returns the common length.
    fn common_merge_length(streams: &[CountStream]) -> Result<usize, ScError> {
        let first = streams.first().ok_or(ScError::EmptyInput)?;
        let len = first.len();
        for s in streams {
            if s.len() != len {
                return Err(ScError::LengthMismatch {
                    left: len,
                    right: s.len(),
                });
            }
        }
        Ok(len)
    }

    /// Shared body of the `merge_sum` variants: accumulates every (already
    /// validated) stream's per-cycle counts into the zeroed `counts` buffer.
    fn merge_sum_into(
        streams: &[CountStream],
        mut counts: Vec<u16>,
    ) -> Result<CountStream, ScError> {
        let lanes = streams.iter().map(|s| s.lanes).sum();
        for s in streams {
            for (acc, &c) in counts.iter_mut().zip(s.counts.iter()) {
                *acc += c;
            }
        }
        CountStream::new(counts, lanes)
    }

    /// Element-wise average with integer truncation, modelling the binary
    /// divider used for average pooling after an APC (the paper notes the
    /// dropped fractional part as an extra information loss of APC-Avg).
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] if `streams` is empty and
    /// [`ScError::LengthMismatch`] if lengths differ.
    pub fn truncating_average(streams: &[CountStream]) -> Result<CountStream, ScError> {
        let first = streams.first().ok_or(ScError::EmptyInput)?;
        let len = first.len();
        let lanes = first.lanes;
        for s in streams {
            if s.len() != len {
                return Err(ScError::LengthMismatch {
                    left: len,
                    right: s.len(),
                });
            }
        }
        let k = streams.len() as u32;
        let counts = (0..len)
            .map(|i| {
                let sum: u32 = streams.iter().map(|s| u32::from(s.counts[i])).sum();
                (sum / k) as u16
            })
            .collect();
        CountStream::new(counts, lanes)
    }
}

/// Exact (conventional accumulative) parallel counter.
///
/// Counts the ones in every bit column exactly. This is the baseline the
/// approximate parallel counter is compared against in Table 3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExactParallelCounter;

impl ExactParallelCounter {
    /// Creates an exact parallel counter.
    pub fn new() -> Self {
        Self
    }

    /// Counts ones per cycle across all input streams.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] for an empty slice and
    /// [`ScError::LengthMismatch`] if the streams differ in length.
    pub fn count(&self, inputs: &[BitStream]) -> Result<CountStream, ScError> {
        let len = common_length(inputs)?;
        let mut counts = vec![0u16; len];
        for stream in inputs {
            accumulate_columns(stream.as_words(), &mut counts);
        }
        CountStream::new(counts, inputs.len())
    }

    /// Fused multiply-count: per-cycle column counts of the element-wise
    /// XNOR products of `inputs` and `weights`, without materializing the
    /// product streams. This is the inner-product hot kernel: one XOR, one
    /// NOT and a bit-unpack per 64 cycles per lane.
    ///
    /// Bit-exact with multiplying each lane via `xnor` and counting with
    /// [`ExactParallelCounter::count`].
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] for empty slices and
    /// [`ScError::LengthMismatch`] for mismatched element counts or stream
    /// lengths.
    pub fn count_products(
        &self,
        inputs: &[BitStream],
        weights: &[BitStream],
    ) -> Result<CountStream, ScError> {
        let len = common_product_length(inputs, weights)?;
        let mut counts = vec![0u16; len];
        accumulate_product_columns(inputs, weights, len, &mut counts);
        CountStream::new(counts, inputs.len())
    }
}

/// Adds each set bit of `words` into its column counter.
///
/// Words are visited sequentially and bits extracted with `trailing_zeros`,
/// so sparse streams cost proportional to their popcount, and no per-bit
/// bounds-checked `get` is involved.
fn accumulate_columns(words: &[u64], counts: &mut [u16]) {
    for (w, &word) in words.iter().enumerate() {
        let mut bits = word;
        let base = w * 64;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            counts[base + j] += 1;
            bits &= bits - 1;
        }
    }
}

/// Accumulates XNOR-product columns for every lane pair into `counts`
/// through carry-save accumulation (see [`crate::csa`]), replacing the
/// former per-lane `trailing_zeros` walk: bipolar product streams are
/// ~half ones, so the walk cost one loop iteration per set bit (~32 per
/// word per lane) where the compressor costs ~2 word operations per lane
/// plus one plane unpack per word position.
fn accumulate_product_columns(
    inputs: &[BitStream],
    weights: &[BitStream],
    len: usize,
    counts: &mut [u16],
) {
    let xs: Vec<&[u64]> = inputs.iter().map(|s| s.as_words()).collect();
    let ws: Vec<&[u64]> = weights.iter().map(|s| s.as_words()).collect();
    dispatch_word_kernel!(
        accumulate_product_columns_impl,
        mux_avx2::product_columns_avx2,
        (&xs, &ws, len, counts)
    )
}

/// Word-generic body of [`accumulate_product_columns`]: full groups of
/// `LANES` word positions compress through a [`WideVerticalCounter`], the
/// remaining words (including the ragged tail, masked to the stream length)
/// through the scalar counter.
#[inline(always)]
fn accumulate_product_columns_impl<W: Word>(
    inputs: &[&[u64]],
    weights: &[&[u64]],
    len: usize,
    counts: &mut [u16],
) {
    let lanes = inputs.len();
    let full_words = len / 64;
    let mut w = 0usize;
    if W::LANES > 1 {
        let mut counter = WideVerticalCounter::<W>::new();
        while w + W::LANES <= full_words {
            let mut lane = 0;
            while lane + 3 <= lanes {
                counter.add3(
                    product_super_word::<W>(inputs[lane], weights[lane], w),
                    product_super_word::<W>(inputs[lane + 1], weights[lane + 1], w),
                    product_super_word::<W>(inputs[lane + 2], weights[lane + 2], w),
                );
                lane += 3;
            }
            while lane < lanes {
                counter.add(product_super_word::<W>(inputs[lane], weights[lane], w));
                lane += 1;
            }
            counter.drain_into(&mut counts[w * 64..(w + W::LANES) * 64]);
            w += W::LANES;
        }
    }
    let words = len.div_ceil(64);
    let mut counter = VerticalCounter::new();
    while w < words {
        let base = w * 64;
        let span = (len - base).min(64);
        let tail_mask = if span == 64 {
            u64::MAX
        } else {
            (1u64 << span) - 1
        };
        let mut lane = 0;
        while lane + 3 <= lanes {
            counter.add3(
                !(inputs[lane][w] ^ weights[lane][w]) & tail_mask,
                !(inputs[lane + 1][w] ^ weights[lane + 1][w]) & tail_mask,
                !(inputs[lane + 2][w] ^ weights[lane + 2][w]) & tail_mask,
            );
            lane += 3;
        }
        while lane < lanes {
            counter.add(!(inputs[lane][w] ^ weights[lane][w]) & tail_mask);
            lane += 1;
        }
        counter.drain_into(&mut counts[base..base + span]);
        w += 1;
    }
}

/// XNOR product super-word of one lane at word offset `w`. Full words only:
/// the beyond-stream bits an XNOR raises in a tail word (both operands
/// store zero there) never reach this path.
#[inline(always)]
fn product_super_word<W: Word>(x: &[u64], wt: &[u64], w: usize) -> W {
    W::load(&x[w..]).xor(W::load(&wt[w..])).not()
}

/// Accumulates XNOR-product columns of one shared input set against the
/// weight sets of many output units through bit-transposed carry-save
/// accumulation (see [`crate::csa`]): for each word position, the input
/// words are loaded once per lane and, held in registers, compressed into
/// every unit's [`VerticalCounter`] — lane triples through a 3:2 compressor,
/// the remainder through ripple half-adders — before the planes are unpacked
/// into that word's column counts. Compared to the former per-lane
/// `trailing_zeros` walk, the per-unit work drops from one loop iteration
/// per *set product bit* per lane (~32 per word for bipolar-dense streams)
/// to ~2 word operations per lane plus `⌈log₂(lanes+1)⌉` plane walks.
///
/// `counts[u]` receives unit `u`'s column counts; the counts are exact, so
/// results are identical to running [`accumulate_product_columns`] once per
/// unit (property-tested below).
fn accumulate_product_columns_shared(
    inputs: &[BitStream],
    unit_weights: &[&[BitStream]],
    len: usize,
    counts: &mut [Vec<u16>],
) {
    let input_words: Vec<&[u64]> = inputs.iter().map(|s| s.as_words()).collect();
    let unit_lane_words: Vec<Vec<&[u64]>> = unit_weights
        .iter()
        .map(|weights| weights.iter().map(|s| s.as_words()).collect())
        .collect();
    dispatch_word_kernel!(
        accumulate_product_columns_shared_impl,
        mux_avx2::product_columns_shared_avx2,
        (&input_words, &unit_lane_words, len, counts)
    )
}

/// Word-generic body of [`accumulate_product_columns_shared`]: full groups
/// of `LANES` word positions compress through per-unit
/// [`WideVerticalCounter`]s, the remaining words (including the ragged tail,
/// masked to the stream length) through per-unit scalar counters.
#[inline(always)]
fn accumulate_product_columns_shared_impl<W: Word>(
    input_words: &[&[u64]],
    unit_lane_words: &[Vec<&[u64]>],
    len: usize,
    counts: &mut [Vec<u16>],
) {
    let lanes = input_words.len();
    let full_words = len / 64;
    let mut w = 0usize;
    if W::LANES > 1 {
        let mut counters: Vec<WideVerticalCounter<W>> = unit_lane_words
            .iter()
            .map(|_| WideVerticalCounter::new())
            .collect();
        while w + W::LANES <= full_words {
            let mut lane = 0;
            // Lane triples: the shared input super-words stay in registers
            // across the unit loop, so each is loaded once and compressed
            // `units` times.
            while lane + 3 <= lanes {
                let a0 = W::load(&input_words[lane][w..]);
                let a1 = W::load(&input_words[lane + 1][w..]);
                let a2 = W::load(&input_words[lane + 2][w..]);
                for (counter, lane_words) in counters.iter_mut().zip(unit_lane_words) {
                    counter.add3(
                        a0.xor(W::load(&lane_words[lane][w..])).not(),
                        a1.xor(W::load(&lane_words[lane + 1][w..])).not(),
                        a2.xor(W::load(&lane_words[lane + 2][w..])).not(),
                    );
                }
                lane += 3;
            }
            while lane < lanes {
                let a = W::load(&input_words[lane][w..]);
                for (counter, lane_words) in counters.iter_mut().zip(unit_lane_words) {
                    counter.add(a.xor(W::load(&lane_words[lane][w..])).not());
                }
                lane += 1;
            }
            for (counter, unit_counts) in counters.iter_mut().zip(counts.iter_mut()) {
                counter.drain_into(&mut unit_counts[w * 64..(w + W::LANES) * 64]);
            }
            w += W::LANES;
        }
    }
    let words = len.div_ceil(64);
    let mut counters: Vec<VerticalCounter> = unit_lane_words
        .iter()
        .map(|_| VerticalCounter::new())
        .collect();
    while w < words {
        let base = w * 64;
        let span = (len - base).min(64);
        let tail_mask = if span == 64 {
            u64::MAX
        } else {
            (1u64 << span) - 1
        };
        let mut lane = 0;
        // Lane triples: the shared input words stay in registers across the
        // unit loop, so each is loaded once and compressed `units` times.
        while lane + 3 <= lanes {
            let a0 = input_words[lane][w];
            let a1 = input_words[lane + 1][w];
            let a2 = input_words[lane + 2][w];
            for (counter, lane_words) in counters.iter_mut().zip(unit_lane_words) {
                counter.add3(
                    !(a0 ^ lane_words[lane][w]) & tail_mask,
                    !(a1 ^ lane_words[lane + 1][w]) & tail_mask,
                    !(a2 ^ lane_words[lane + 2][w]) & tail_mask,
                );
            }
            lane += 3;
        }
        while lane < lanes {
            let a = input_words[lane][w];
            for (counter, lane_words) in counters.iter_mut().zip(unit_lane_words) {
                counter.add(!(a ^ lane_words[lane][w]) & tail_mask);
            }
            lane += 1;
        }
        for (counter, unit_counts) in counters.iter_mut().zip(counts.iter_mut()) {
            counter.drain_into(&mut unit_counts[base..base + span]);
        }
        w += 1;
    }
}

/// Validates one shared input set against many per-unit weight sets and
/// returns the common stream length.
fn common_shared_product_length(
    inputs: &[BitStream],
    unit_weights: &[&[BitStream]],
) -> Result<usize, ScError> {
    if unit_weights.is_empty() {
        return Err(ScError::EmptyInput);
    }
    let mut len = None;
    for weights in unit_weights {
        let unit_len = common_product_length(inputs, weights)?;
        match len {
            None => len = Some(unit_len),
            Some(l) => debug_assert_eq!(l, unit_len, "common length is input-determined"),
        }
    }
    Ok(len.expect("at least one unit"))
}

/// Validates a paired product operand set and returns the common length.
fn common_product_length(inputs: &[BitStream], weights: &[BitStream]) -> Result<usize, ScError> {
    if inputs.is_empty() || weights.is_empty() {
        return Err(ScError::EmptyInput);
    }
    if inputs.len() != weights.len() {
        return Err(ScError::LengthMismatch {
            left: inputs.len(),
            right: weights.len(),
        });
    }
    let len = common_length(inputs)?;
    for stream in weights {
        if stream.len() != len {
            return Err(ScError::LengthMismatch {
                left: len,
                right: stream.len(),
            });
        }
    }
    Ok(len)
}

/// Approximate parallel counter (APC), after Kim et al. (ISOCC'15).
///
/// The approximate counter saves ~40 % of the gate count by not resolving the
/// least-significant bit of the column count exactly (in the paper's Fig. 7
/// the output LSB carries weight 2¹ rather than 2⁰). This model reproduces
/// that behaviour by truncating the exact count to an even value and
/// substituting a toggling dither bit for the dropped LSB, which keeps the
/// approximation unbiased over time. Per cycle the count is off by at most
/// one; accumulated over a stream the deviation from the exact counter is the
/// sub-1 % relative error reported in Table 3, shrinking as the input size
/// grows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Apc;

impl Apc {
    /// Creates an approximate parallel counter.
    pub fn new() -> Self {
        Self
    }

    /// Counts ones per cycle, with the approximate least-significant bit.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] for an empty slice and
    /// [`ScError::LengthMismatch`] if the streams differ in length.
    pub fn count(&self, inputs: &[BitStream]) -> Result<CountStream, ScError> {
        let len = common_length(inputs)?;
        let mut counts = vec![0u16; len];
        for stream in inputs {
            accumulate_columns(stream.as_words(), &mut counts);
        }
        apply_apc_lsb(&mut counts, inputs.len());
        CountStream::new(counts, inputs.len())
    }

    /// Fused multiply-count with the approximate LSB: APC column counts of
    /// the element-wise XNOR products without materializing them.
    ///
    /// Bit-exact with multiplying each lane via `xnor` and counting with
    /// [`Apc::count`].
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] for empty slices and
    /// [`ScError::LengthMismatch`] for mismatched element counts or stream
    /// lengths.
    pub fn count_products(
        &self,
        inputs: &[BitStream],
        weights: &[BitStream],
    ) -> Result<CountStream, ScError> {
        let len = common_product_length(inputs, weights)?;
        let mut counts = vec![0u16; len];
        accumulate_product_columns(inputs, weights, len, &mut counts);
        apply_apc_lsb(&mut counts, inputs.len());
        CountStream::new(counts, inputs.len())
    }

    /// Shared-input fused multiply-count: APC column counts of one input set
    /// against the weight sets of many output units, accumulated
    /// word-by-word across units (every input word is loaded once for all
    /// units). `result[u]` is bit-exact with
    /// `self.count_products(inputs, unit_weights[u])`.
    ///
    /// This is the layer-fused APC kernel: all inner-product blocks of one
    /// SC layer position share their input streams and differ only in the
    /// filter driving their weight streams.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] for empty slices and
    /// [`ScError::LengthMismatch`] for any mismatched element count or
    /// stream length.
    pub fn count_products_shared(
        &self,
        inputs: &[BitStream],
        unit_weights: &[&[BitStream]],
    ) -> Result<Vec<CountStream>, ScError> {
        let len = common_shared_product_length(inputs, unit_weights)?;
        let mut counts: Vec<Vec<u16>> = vec![vec![0u16; len]; unit_weights.len()];
        accumulate_product_columns_shared(inputs, unit_weights, len, &mut counts);
        counts
            .into_iter()
            .map(|mut unit_counts| {
                apply_apc_lsb(&mut unit_counts, inputs.len());
                CountStream::new(unit_counts, inputs.len())
            })
            .collect()
    }

    /// [`Apc::count_products_shared`] with the per-unit count buffers taken
    /// from `arena`'s count pool, so steady-state layer-fused evaluation
    /// allocates no count buffers (recycle each result's buffer via
    /// [`CountStream::into_counts`] when done). Results are identical.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Apc::count_products_shared`].
    pub fn count_products_shared_with(
        &self,
        inputs: &[BitStream],
        unit_weights: &[&[BitStream]],
        arena: &mut StreamArena,
    ) -> Result<Vec<CountStream>, ScError> {
        let len = common_shared_product_length(inputs, unit_weights)?;
        let mut counts: Vec<Vec<u16>> = (0..unit_weights.len())
            .map(|_| arena.take_counts(len))
            .collect();
        accumulate_product_columns_shared(inputs, unit_weights, len, &mut counts);
        counts
            .into_iter()
            .map(|mut unit_counts| {
                apply_apc_lsb(&mut unit_counts, inputs.len());
                CountStream::new(unit_counts, inputs.len())
            })
            .collect()
    }

    /// Gate-count reduction relative to the exact accumulative parallel
    /// counter, as reported by the APC reference the paper cites.
    pub fn gate_saving_ratio(&self) -> f64 {
        0.40
    }
}

/// Replaces exact column counts with the APC approximation: the LSB is
/// dropped and a toggling dither bit substituted (see [`Apc`]). Single-lane
/// counters stay exact.
fn apply_apc_lsb(counts: &mut [u16], lanes: usize) {
    if lanes < 2 {
        return;
    }
    let cap = lanes as u16;
    for (i, count) in counts.iter_mut().enumerate() {
        let dither = (i & 1) as u16;
        *count = ((*count & !1) + dither).min(cap);
    }
}

/// Validates a caller-provided output stream against the operand length.
fn check_output_length(out: &BitStream, len: usize) -> Result<(), ScError> {
    if out.len() != len {
        return Err(ScError::LengthMismatch {
            left: len,
            right: out.len(),
        });
    }
    Ok(())
}

fn common_length(inputs: &[BitStream]) -> Result<usize, ScError> {
    let first = inputs.first().ok_or(ScError::EmptyInput)?;
    let len = first.len();
    for stream in inputs {
        if stream.len() != len {
            return Err(ScError::LengthMismatch {
                left: len,
                right: stream.len(),
            });
        }
    }
    Ok(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Lfsr;
    use crate::sng::{Sng, SngKind};

    fn streams_for(values: &[f64], len: usize, seed: u64) -> Vec<BitStream> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                Sng::new(SngKind::Lfsr32, seed + i as u64 * 77)
                    .generate_bipolar(v, StreamLength::new(len))
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn or_adder_paper_example() {
        // 3/8 + 4/8 via "00100101 OR 11001010" = 7/8.
        let a = BitStream::from_binary_str("00100101").unwrap();
        let b = BitStream::from_binary_str("11001010").unwrap();
        let sum = OrAdder::new().sum(&[a, b]).unwrap();
        assert_eq!(sum.count_ones(), 7);
    }

    #[test]
    fn or_adder_alternate_representation_loses_counts() {
        // The paper's second example: "10011000 OR 11001010" = 5/8 instead of 7/8.
        let a = BitStream::from_binary_str("10011000").unwrap();
        let b = BitStream::from_binary_str("11001010").unwrap();
        let sum = OrAdder::new().sum(&[a, b]).unwrap();
        assert_eq!(sum.count_ones(), 5);
    }

    #[test]
    fn or_adder_validates_inputs() {
        assert_eq!(OrAdder::new().sum(&[]), Err(ScError::EmptyInput));
        let a = BitStream::from_binary_str("10").unwrap();
        let b = BitStream::from_binary_str("100").unwrap();
        assert!(OrAdder::new().sum(&[a, b]).is_err());
    }

    #[test]
    fn mux_adder_produces_scaled_sum() {
        let values = [0.5, -0.25, 0.75, 0.0];
        let inputs = streams_for(&values, 8192, 10);
        let mut selector = Lfsr::new_32(1234);
        let out = MuxAdder::new().sum(&inputs, &mut selector).unwrap();
        let expected = values.iter().sum::<f64>() / values.len() as f64;
        assert!((out.bipolar_value() - expected).abs() < 0.05);
        assert_eq!(MuxAdder::new().scale_factor(values.len()), 4.0);
    }

    #[test]
    fn mux_adder_validates_inputs() {
        let mut selector = Lfsr::new_32(1);
        assert_eq!(
            MuxAdder::new().sum(&[], &mut selector),
            Err(ScError::EmptyInput)
        );
    }

    #[test]
    fn exact_counter_counts_columns() {
        let a = BitStream::from_binary_str("1100").unwrap();
        let b = BitStream::from_binary_str("1010").unwrap();
        let c = BitStream::from_binary_str("1111").unwrap();
        let counts = ExactParallelCounter::new().count(&[a, b, c]).unwrap();
        assert_eq!(counts.counts(), &[3, 2, 2, 1]);
        assert_eq!(counts.total(), 8);
        assert_eq!(counts.lanes(), 3);
    }

    #[test]
    fn apc_tracks_exact_with_small_relative_error() {
        let values = [0.5, -0.5, 0.25, -0.25, 0.75, -0.75, 0.1, -0.1];
        let inputs = streams_for(&values, 1024, 3);
        let exact = ExactParallelCounter::new().count(&inputs).unwrap();
        let approx = Apc::new().count(&inputs).unwrap();
        let relative = (exact.total() as f64 - approx.total() as f64).abs() / exact.total() as f64;
        assert!(relative < 0.02, "APC deviates {relative} from exact");
        // Per-cycle deviation is bounded by the dropped LSB.
        for (a, e) in approx.counts().iter().zip(exact.counts().iter()) {
            assert!((i32::from(*a) - i32::from(*e)).abs() <= 1);
        }
    }

    #[test]
    fn apc_single_input_is_exact() {
        let a = BitStream::from_binary_str("1011").unwrap();
        let counts = Apc::new().count(&[a]).unwrap();
        assert_eq!(counts.counts(), &[1, 0, 1, 1]);
    }

    #[test]
    fn count_stream_bipolar_sum_matches_reference() {
        let values = [0.5, -0.25, 0.75, 0.0, -0.5, 0.25, 0.1, -0.1];
        let inputs = streams_for(&values, 8192, 21);
        let counts = ExactParallelCounter::new().count(&inputs).unwrap();
        let expected: f64 = values.iter().sum();
        assert!((counts.bipolar_sum() - expected).abs() < 0.15);
    }

    #[test]
    fn fused_count_products_matches_materialized_pipeline() {
        use crate::multiply;
        for len in [100usize, 127, 512] {
            let xs = streams_for(&[0.5, -0.25, 0.75, 0.0, -0.6], len, 5);
            let ws = streams_for(&[-0.5, 0.25, 0.1, 0.9, 0.3], len, 900);
            let products = multiply::bipolar_products(&xs, &ws).unwrap();
            let exact_fused = ExactParallelCounter::new()
                .count_products(&xs, &ws)
                .unwrap();
            let exact_naive = ExactParallelCounter::new().count(&products).unwrap();
            assert_eq!(
                exact_fused, exact_naive,
                "exact counter mismatch at len {len}"
            );
            let apc_fused = Apc::new().count_products(&xs, &ws).unwrap();
            let apc_naive = Apc::new().count(&products).unwrap();
            assert_eq!(apc_fused, apc_naive, "APC mismatch at len {len}");
        }
    }

    #[test]
    fn fused_mux_products_match_materialized_pipeline() {
        use crate::multiply;
        for len in [100usize, 127, 1024] {
            let xs = streams_for(&[0.5, -0.25, 0.75, 0.0], len, 11);
            let ws = streams_for(&[-0.5, 0.25, 0.1, 0.9], len, 1200);
            let products = multiply::bipolar_products(&xs, &ws).unwrap();
            let mut selector_a = Lfsr::new_32(33);
            let mut selector_b = Lfsr::new_32(33);
            let naive = MuxAdder::new().sum(&products, &mut selector_a).unwrap();
            let fused = MuxAdder::new()
                .sum_products(&xs, &ws, &mut selector_b)
                .unwrap();
            assert_eq!(fused, naive, "MUX mismatch at len {len}");
        }
    }

    /// Frozen selector-serial reference of the MUX sum (the pre-bit-slicing
    /// implementation), kept to pin the `SelectorSlicer` output bit-for-bit.
    fn mux_sum_selector_serial<R: crate::rng::RandomSource>(
        inputs: &[BitStream],
        selector_rng: &mut R,
    ) -> BitStream {
        let len = inputs[0].len();
        let n = inputs.len() as u32;
        let mut out = BitStream::zeros(StreamLength::new(len));
        let words: Vec<&[u64]> = inputs.iter().map(|s| s.as_words()).collect();
        for (w, out_word) in out.words_mut().iter_mut().enumerate() {
            let bits = (len - w * 64).min(64);
            let mut packed = 0u64;
            for bit in 0..bits {
                let selected = selector_rng.next_below(n) as usize;
                packed |= ((words[selected][w] >> bit) & 1) << bit;
            }
            *out_word = packed;
        }
        out
    }

    #[test]
    fn fastmod_is_exact_for_all_divisors_of_interest() {
        for d in [1u32, 2, 3, 4, 5, 7, 16, 25, 63, 64, 65, 200, 800, u32::MAX] {
            let fm = FastMod::new(d);
            for x in [
                0u32,
                1,
                d.saturating_sub(1),
                d,
                d.saturating_add(1),
                12345,
                0x8000_0000,
                u32::MAX,
            ] {
                assert_eq!(fm.rem(x), x % d, "fastmod({x}, {d})");
            }
            // A pseudo-random sweep.
            let mut lfsr = Lfsr::new_32(d ^ 0xBEEF);
            for _ in 0..2000 {
                let x = lfsr.step();
                assert_eq!(fm.rem(x), x % d, "fastmod({x}, {d})");
            }
        }
    }

    #[test]
    fn bit_sliced_selector_matches_serial_reference() {
        for (lanes, len) in [(2usize, 64usize), (4, 100), (25, 127), (80, 1024)] {
            let values: Vec<f64> = (0..lanes)
                .map(|i| (i as f64 / lanes as f64) - 0.5)
                .collect();
            let inputs = streams_for(&values, len, 7 + lanes as u64);
            let mut serial_rng = Lfsr::new_32(99);
            let mut sliced_rng = Lfsr::new_32(99);
            let serial = mux_sum_selector_serial(&inputs, &mut serial_rng);
            let sliced = MuxAdder::new().sum(&inputs, &mut sliced_rng).unwrap();
            assert_eq!(sliced, serial, "lanes {lanes} len {len}");
            // The RNG must be left in the same state (same number of draws).
            assert_eq!(serial_rng.state(), sliced_rng.state());
        }
    }

    #[test]
    fn selector_plan_replays_identically_to_direct_draws() {
        for (lanes, len) in [(2usize, 64usize), (4, 100), (25, 127), (80, 1024)] {
            let values: Vec<f64> = (0..lanes)
                .map(|i| (i as f64 / lanes as f64) - 0.5)
                .collect();
            let xs = streams_for(&values, len, 7 + lanes as u64);
            let ws = streams_for(&values, len, 5000 + lanes as u64);
            let mut direct_rng = Lfsr::new_32(777);
            let mut plan_rng = Lfsr::new_32(777);
            let plan = MuxSelectorPlan::new(lanes, len, &mut plan_rng).unwrap();
            // Plan construction consumes exactly the draws the direct path
            // would, leaving the RNG in the same state.
            let direct_sum = MuxAdder::new().sum(&xs, &mut direct_rng).unwrap();
            assert_eq!(direct_rng.state(), plan_rng.state());
            assert_eq!(
                MuxAdder::new().sum_with_plan(&xs, &plan).unwrap(),
                direct_sum,
                "sum mismatch at lanes {lanes} len {len}"
            );
            let mut direct_rng = Lfsr::new_32(777);
            let direct_products = MuxAdder::new()
                .sum_products(&xs, &ws, &mut direct_rng)
                .unwrap();
            assert_eq!(
                MuxAdder::new()
                    .sum_products_with_plan(&xs, &ws, &plan)
                    .unwrap(),
                direct_products,
                "product mismatch at lanes {lanes} len {len}"
            );
            // The plan is reusable: a second replay gives the same bits.
            assert_eq!(
                MuxAdder::new()
                    .sum_products_with_plan(&xs, &ws, &plan)
                    .unwrap(),
                direct_products
            );
        }
    }

    #[test]
    fn selector_plan_validates_operands() {
        let mut rng = Lfsr::new_32(1);
        assert!(MuxSelectorPlan::new(0, 64, &mut rng).is_err());
        assert!(MuxSelectorPlan::new(4, 0, &mut rng).is_err());
        let plan = MuxSelectorPlan::new(2, 64, &mut rng).unwrap();
        assert_eq!((plan.lanes(), plan.stream_bits()), (2, 64));
        let xs = streams_for(&[0.5, -0.5, 0.25], 64, 3);
        // Wrong lane count.
        assert!(MuxAdder::new().sum_with_plan(&xs, &plan).is_err());
        // Wrong stream length.
        let short = streams_for(&[0.5, -0.5], 32, 3);
        assert!(MuxAdder::new().sum_with_plan(&short, &plan).is_err());
        assert!(MuxAdder::new()
            .sum_products_with_plan(&short, &short, &plan)
            .is_err());
        assert!(MuxAdder::new().sum_with_plan(&[], &plan).is_err());
    }

    #[test]
    fn shared_count_products_matches_per_unit_kernel() {
        for len in [100usize, 127, 512] {
            let xs = streams_for(&[0.5, -0.25, 0.75, 0.0, -0.6], len, 5);
            let unit_ws: Vec<Vec<BitStream>> = (0..3)
                .map(|u| streams_for(&[-0.5, 0.25, 0.1, 0.9, 0.3], len, 900 + u * 31))
                .collect();
            let refs: Vec<&[BitStream]> = unit_ws.iter().map(|w| w.as_slice()).collect();
            let shared = Apc::new().count_products_shared(&xs, &refs).unwrap();
            assert_eq!(shared.len(), 3);
            for (unit, counts) in shared.iter().enumerate() {
                let per_unit = Apc::new().count_products(&xs, &unit_ws[unit]).unwrap();
                assert_eq!(counts, &per_unit, "unit {unit} at len {len}");
            }
        }
    }

    /// Naive per-bit column-count reference: one bounds-checked `get` per
    /// lane per cycle, no word tricks at all.
    fn per_bit_product_counts(inputs: &[BitStream], weights: &[BitStream]) -> Vec<u16> {
        let len = inputs[0].len();
        (0..len)
            .map(|t| {
                inputs
                    .iter()
                    .zip(weights.iter())
                    .filter(|(x, w)| x.get(t) == w.get(t))
                    .count() as u16
            })
            .collect()
    }

    #[test]
    fn csa_shared_counts_match_per_bit_reference_across_sizes() {
        // The satellite coverage matrix: lane counts exercising every CSA
        // shape (single lane, exact triples, triple + remainder, many
        // planes) times stream lengths exercising word tails (including the
        // non-word-multiple 100/127 and the paper's longest 8191).
        for &lanes in &[1usize, 3, 7, 32, 33, 100] {
            for &len in &[64usize, 100, 127, 1024, 8191] {
                let values: Vec<f64> = (0..lanes)
                    .map(|i| (i as f64 / lanes as f64) - 0.5)
                    .collect();
                let xs = streams_for(&values, len, 5 + lanes as u64);
                let unit_ws: Vec<Vec<BitStream>> = (0..2)
                    .map(|u| streams_for(&values, len, 7000 + u * 131 + lanes as u64))
                    .collect();
                let refs: Vec<&[BitStream]> = unit_ws.iter().map(|w| w.as_slice()).collect();
                // Exact counts: CSA shared kernel vs the naive reference.
                let shared = ExactParallelCounter::new();
                let mut arena = StreamArena::new();
                let apc_shared = Apc::new()
                    .count_products_shared_with(&xs, &refs, &mut arena)
                    .unwrap();
                for (unit, ws) in unit_ws.iter().enumerate() {
                    let naive = per_bit_product_counts(&xs, ws);
                    let exact = shared.count_products(&xs, ws).unwrap();
                    assert_eq!(
                        exact.counts(),
                        naive.as_slice(),
                        "exact kernel vs per-bit at lanes {lanes} len {len}"
                    );
                    // The approximate-APC truncation applied to the naive
                    // reference must reproduce the shared CSA kernel.
                    let mut approx = naive.clone();
                    apply_apc_lsb(&mut approx, lanes);
                    assert_eq!(
                        apc_shared[unit].counts(),
                        approx.as_slice(),
                        "CSA shared kernel vs truncated per-bit reference \
                         at lanes {lanes} len {len} unit {unit}"
                    );
                }
            }
        }
    }

    #[test]
    fn arena_backed_shared_counts_match_and_recycle() {
        let xs = streams_for(&[0.5, -0.25, 0.75, 0.0, -0.6], 127, 5);
        let unit_ws: Vec<Vec<BitStream>> = (0..3)
            .map(|u| streams_for(&[-0.5, 0.25, 0.1, 0.9, 0.3], 127, 900 + u * 31))
            .collect();
        let refs: Vec<&[BitStream]> = unit_ws.iter().map(|w| w.as_slice()).collect();
        let plain = Apc::new().count_products_shared(&xs, &refs).unwrap();
        let mut arena = StreamArena::new();
        for round in 0..3 {
            let pooled = Apc::new()
                .count_products_shared_with(&xs, &refs, &mut arena)
                .unwrap();
            assert_eq!(pooled, plain, "round {round}");
            for counts in pooled {
                arena.recycle_counts(counts.into_counts());
            }
        }
        let stats = arena.stats();
        // Round one allocates three buffers; later rounds reuse them.
        assert_eq!(stats.count_allocs, 3);
        assert_eq!(stats.count_reuses, 6);
    }

    #[test]
    fn merge_sum_with_matches_allocating_merge() {
        let a = CountStream::new(vec![2, 3, 1], 4).unwrap();
        let b = CountStream::new(vec![3, 4, 0], 4).unwrap();
        let mut arena = StreamArena::new();
        let merged = CountStream::merge_sum(&[a.clone(), b.clone()]).unwrap();
        let pooled = CountStream::merge_sum_with(&[a.clone(), b], &mut arena).unwrap();
        assert_eq!(pooled, merged);
        arena.recycle_counts(pooled.into_counts());
        assert!(CountStream::merge_sum_with(&[], &mut arena).is_err());
        let short = CountStream::new(vec![1], 4).unwrap();
        assert!(CountStream::merge_sum_with(&[a, short], &mut arena).is_err());
    }

    #[test]
    fn plan_into_kernels_match_allocating_kernels() {
        let lanes = 5usize;
        let len = 127usize;
        let values: Vec<f64> = (0..lanes)
            .map(|i| (i as f64 / lanes as f64) - 0.4)
            .collect();
        let xs = streams_for(&values, len, 31);
        let ws = streams_for(&values, len, 5100);
        let mut rng = Lfsr::new_32(555);
        let plan = MuxSelectorPlan::new(lanes, len, &mut rng).unwrap();
        let mut arena = StreamArena::new();
        // Dirty the pooled buffer first to prove `_into` fully overwrites.
        let mut dirty = arena.take_zeroed(StreamLength::new(len));
        for i in 0..len {
            dirty.set(i, true);
        }
        arena.recycle(dirty);

        let mut out = arena.take_zeroed(StreamLength::new(len));
        MuxAdder::new()
            .sum_with_plan_into(&xs, &plan, &mut out)
            .unwrap();
        assert_eq!(out, MuxAdder::new().sum_with_plan(&xs, &plan).unwrap());
        arena.recycle(out);

        let mut out = arena.take_zeroed(StreamLength::new(len));
        MuxAdder::new()
            .sum_products_with_plan_into(&xs, &ws, &plan, &mut out)
            .unwrap();
        assert_eq!(
            out,
            MuxAdder::new()
                .sum_products_with_plan(&xs, &ws, &plan)
                .unwrap()
        );

        // Wrong output length is rejected.
        let mut short = BitStream::zeros(StreamLength::new(64));
        assert!(MuxAdder::new()
            .sum_with_plan_into(&xs, &plan, &mut short)
            .is_err());
        assert!(MuxAdder::new()
            .sum_products_with_plan_into(&xs, &ws, &plan, &mut short)
            .is_err());
    }

    /// Every super-word backend must replay a selector plan bit-for-bit
    /// like the scalar (flat per-word) path, for both the sum and the fused
    /// product kernels, across ragged lengths and lane counts.
    #[test]
    fn plan_replay_bit_exact_across_backends() {
        fn check<W: Word>(backend: &str) {
            for &(lanes, len) in &[
                (1usize, 100usize),
                (3, 127),
                (7, 1024),
                (32, 8191),
                (33, 320),
                (100, 257),
            ] {
                let values: Vec<f64> = (0..lanes)
                    .map(|i| (i as f64 / lanes as f64) - 0.5)
                    .collect();
                let xs = streams_for(&values, len, 31 + lanes as u64);
                let ws = streams_for(&values, len, 9100 + lanes as u64);
                let mut rng = Lfsr::new_32(4242 + lanes as u32);
                let plan = MuxSelectorPlan::new(lanes, len, &mut rng).unwrap();
                let xw: Vec<&[u64]> = xs.iter().map(|s| s.as_words()).collect();
                let ww: Vec<&[u64]> = ws.iter().map(|s| s.as_words()).collect();
                let words = len.div_ceil(64);
                let mut reference = vec![0u64; words];
                let mut got = vec![u64::MAX; words];
                plan_sum_words_impl::<u64>(&plan, &xw, &mut reference);
                plan_sum_words_impl::<W>(&plan, &xw, &mut got);
                assert_eq!(got, reference, "{backend} sum lanes {lanes} len {len}");
                let mut reference = vec![0u64; words];
                let mut got = vec![u64::MAX; words];
                plan_products_words_impl::<u64>(&plan, &xw, &ww, &mut reference);
                plan_products_words_impl::<W>(&plan, &xw, &ww, &mut got);
                assert_eq!(got, reference, "{backend} products lanes {lanes} len {len}");
            }
        }
        check::<crate::word::W4>("wide");
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if crate::word::Backend::Avx2.is_available() {
            check::<crate::word::WAvx2>("avx2");
        }
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        check::<crate::word::WNeon>("neon");
    }

    /// Every super-word backend of the CSA product-column kernels (per-unit
    /// and shared) must match the scalar backend exactly, which the
    /// per-bit-reference tests elsewhere anchor to ground truth.
    #[test]
    fn product_columns_bit_exact_across_backends() {
        fn check<W: Word>(backend: &str) {
            for &lanes in &[1usize, 3, 7, 32, 33, 100] {
                for &len in &[100usize, 127, 1024, 8191] {
                    let values: Vec<f64> = (0..lanes)
                        .map(|i| (i as f64 / lanes as f64) - 0.5)
                        .collect();
                    let xs = streams_for(&values, len, 5 + lanes as u64);
                    let unit_ws: Vec<Vec<BitStream>> = (0..2)
                        .map(|u| streams_for(&values, len, 7000 + u * 131 + lanes as u64))
                        .collect();
                    let xw: Vec<&[u64]> = xs.iter().map(|s| s.as_words()).collect();
                    let unit_words: Vec<Vec<&[u64]>> = unit_ws
                        .iter()
                        .map(|ws| ws.iter().map(|s| s.as_words()).collect())
                        .collect();
                    let mut reference = vec![0u16; len];
                    let mut got = vec![0u16; len];
                    accumulate_product_columns_impl::<u64>(
                        &xw,
                        &unit_words[0],
                        len,
                        &mut reference,
                    );
                    accumulate_product_columns_impl::<W>(&xw, &unit_words[0], len, &mut got);
                    assert_eq!(got, reference, "{backend} per-unit lanes {lanes} len {len}");
                    let mut reference = vec![vec![0u16; len]; 2];
                    let mut got = vec![vec![0u16; len]; 2];
                    accumulate_product_columns_shared_impl::<u64>(
                        &xw,
                        &unit_words,
                        len,
                        &mut reference,
                    );
                    accumulate_product_columns_shared_impl::<W>(&xw, &unit_words, len, &mut got);
                    assert_eq!(got, reference, "{backend} shared lanes {lanes} len {len}");
                }
            }
        }
        check::<crate::word::W4>("wide");
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if crate::word::Backend::Avx2.is_available() {
            check::<crate::word::WAvx2>("avx2");
        }
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        check::<crate::word::WNeon>("neon");
    }

    #[test]
    fn shared_count_products_validates_inputs() {
        let xs = streams_for(&[0.5, -0.25], 64, 5);
        let ws = streams_for(&[0.5, -0.25], 64, 9);
        let short = streams_for(&[0.5], 64, 9);
        let refs: Vec<&[BitStream]> = vec![&ws, &short];
        assert!(Apc::new().count_products_shared(&xs, &[]).is_err());
        assert!(Apc::new().count_products_shared(&xs, &refs).is_err());
        assert!(Apc::new()
            .count_products_shared(&[], &[ws.as_slice()])
            .is_err());
    }

    #[test]
    fn fused_kernels_validate_inputs() {
        let a = vec![BitStream::from_binary_str("1010").unwrap()];
        let b = vec![BitStream::from_binary_str("10100").unwrap()];
        let paired = vec![a[0].clone(), a[0].clone()];
        let mut selector = Lfsr::new_32(1);
        assert!(ExactParallelCounter::new()
            .count_products(&[], &[])
            .is_err());
        assert!(ExactParallelCounter::new()
            .count_products(&a, &paired)
            .is_err());
        assert!(ExactParallelCounter::new().count_products(&a, &b).is_err());
        assert!(Apc::new().count_products(&a, &b).is_err());
        assert!(MuxAdder::new().sum_products(&a, &b, &mut selector).is_err());
        assert!(MuxAdder::new()
            .sum_products(&[], &[], &mut selector)
            .is_err());
    }

    #[test]
    fn count_stream_rejects_bad_counts() {
        assert!(CountStream::new(vec![], 4).is_err());
        assert!(CountStream::new(vec![5], 4).is_err());
        assert!(CountStream::new(vec![4], 4).is_ok());
    }

    #[test]
    fn merge_sum_adds_counts_and_lanes() {
        let a = CountStream::new(vec![2, 3], 4).unwrap();
        let b = CountStream::new(vec![3, 4], 4).unwrap();
        let merged = CountStream::merge_sum(&[a, b]).unwrap();
        assert_eq!(merged.counts(), &[5, 7]);
        assert_eq!(merged.lanes(), 8);
        assert!(CountStream::merge_sum(&[]).is_err());
    }

    #[test]
    fn truncating_average_drops_fraction() {
        let a = CountStream::new(vec![2, 3], 4).unwrap();
        let b = CountStream::new(vec![3, 4], 4).unwrap();
        let avg = CountStream::truncating_average(&[a, b]).unwrap();
        // (2+3)/2 = 2.5 -> 2, (3+4)/2 = 3.5 -> 3.
        assert_eq!(avg.counts(), &[2, 3]);
    }

    #[test]
    fn truncating_average_validates() {
        assert!(CountStream::truncating_average(&[]).is_err());
        let a = CountStream::new(vec![1, 2], 4).unwrap();
        let b = CountStream::new(vec![1], 4).unwrap();
        assert!(CountStream::truncating_average(&[a, b]).is_err());
    }
}
