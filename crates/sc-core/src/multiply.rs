//! Stochastic multiplication.
//!
//! * Unipolar multiplication is a single AND gate:
//!   `P(A·B = 1) = P(A = 1)·P(B = 1)` when the streams are independent.
//! * Bipolar multiplication is a single XNOR gate:
//!   `c = 2P(C=1) − 1 = (2P(A=1) − 1)(2P(B=1) − 1) = a·b`.
//!
//! Both identities only hold when the operand streams are uncorrelated, which
//! is why the SNG seeding strategy matters (see [`crate::sng`]).

use crate::bitstream::BitStream;
use crate::error::ScError;

/// Multiplies two unipolar streams with an AND gate.
///
/// # Panics
///
/// Panics if the streams have different lengths; use [`try_unipolar`] for a
/// fallible variant.
pub fn unipolar(a: &BitStream, b: &BitStream) -> BitStream {
    a & b
}

/// Multiplies two bipolar streams with an XNOR gate.
///
/// # Panics
///
/// Panics if the streams have different lengths; use [`try_bipolar`] for a
/// fallible variant.
pub fn bipolar(a: &BitStream, b: &BitStream) -> BitStream {
    a.xnor(b)
}

/// Fallible version of [`unipolar`].
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] if the stream lengths differ.
pub fn try_unipolar(a: &BitStream, b: &BitStream) -> Result<BitStream, ScError> {
    check(a, b)?;
    Ok(unipolar(a, b))
}

/// Fallible version of [`bipolar`].
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] if the stream lengths differ.
pub fn try_bipolar(a: &BitStream, b: &BitStream) -> Result<BitStream, ScError> {
    check(a, b)?;
    Ok(bipolar(a, b))
}

fn check(a: &BitStream, b: &BitStream) -> Result<(), ScError> {
    if a.len() != b.len() {
        Err(ScError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        })
    } else {
        Ok(())
    }
}

/// Fused unipolar multiply-accumulate: the ones count of `a AND b` without
/// materializing the product stream. `unipolar_count / len` is the decoded
/// product value.
///
/// # Panics
///
/// Panics if the streams have different lengths.
pub fn unipolar_count(a: &BitStream, b: &BitStream) -> usize {
    a.and_count(b)
}

/// Fused bipolar multiply-accumulate: the ones count of `a XNOR b` without
/// materializing the product stream. `2 * bipolar_count / len - 1` is the
/// decoded product value.
///
/// # Panics
///
/// Panics if the streams have different lengths.
pub fn bipolar_count(a: &BitStream, b: &BitStream) -> usize {
    a.xnor_count(b)
}

/// Fused bipolar dot product of paired stream slices: decodes
/// `Σ (2·|xᵢ XNOR wᵢ| / L − 1)` lane by lane without materializing any
/// product stream. This equals summing `bipolar(xᵢ, wᵢ).bipolar_value()`.
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] for mismatched slice lengths or
/// stream lengths and [`ScError::EmptyInput`] for empty slices.
pub fn bipolar_dot(inputs: &[BitStream], weights: &[BitStream]) -> Result<f64, ScError> {
    if inputs.is_empty() || weights.is_empty() {
        return Err(ScError::EmptyInput);
    }
    if inputs.len() != weights.len() {
        return Err(ScError::LengthMismatch {
            left: inputs.len(),
            right: weights.len(),
        });
    }
    let mut total = 0.0f64;
    for (x, w) in inputs.iter().zip(weights.iter()) {
        check(x, w)?;
        let agree = x.xnor_count(w) as f64;
        total += 2.0 * agree / x.len() as f64 - 1.0;
    }
    Ok(total)
}

/// Multiplies each element pair of two bipolar stream slices.
///
/// This is the XNOR array at the front of every inner-product block.
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] if the slices have different element
/// counts or any stream pair has different lengths, and
/// [`ScError::EmptyInput`] for empty slices.
pub fn bipolar_products(
    inputs: &[BitStream],
    weights: &[BitStream],
) -> Result<Vec<BitStream>, ScError> {
    if inputs.is_empty() || weights.is_empty() {
        return Err(ScError::EmptyInput);
    }
    if inputs.len() != weights.len() {
        return Err(ScError::LengthMismatch {
            left: inputs.len(),
            right: weights.len(),
        });
    }
    inputs
        .iter()
        .zip(weights.iter())
        .map(|(x, w)| try_bipolar(x, w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::StreamLength;
    use crate::sng::{Sng, SngKind};

    #[test]
    fn paper_unipolar_example() {
        // Figure 4 (a): 1,1,1,1,0,0,0,0 (4/8) AND 1,1,0,1,1,1,1,0 (6/8) = 1,1,0,1,0,0,0,0 (3/8)
        let a = BitStream::from_binary_str("11110000").unwrap();
        let b = BitStream::from_binary_str("11011110").unwrap();
        let z = unipolar(&a, &b);
        assert_eq!(z.count_ones(), 3);
    }

    #[test]
    fn paper_bipolar_example() {
        // Figure 4 (b): streams representing 0 and 0 multiply to a stream representing 0.
        let a = BitStream::from_binary_str("11010010").unwrap();
        let b = BitStream::from_binary_str("10111110").unwrap();
        let z = bipolar(&a, &b);
        assert!((a.bipolar_value()).abs() < 1e-9);
        assert!((z.bipolar_value()).abs() < 0.26);
    }

    #[test]
    fn bipolar_multiplication_is_accurate_statistically() {
        let len = StreamLength::new(4096);
        let cases = [
            (0.5, 0.5),
            (-0.5, 0.5),
            (0.8, -0.7),
            (-0.9, -0.9),
            (0.0, 0.3),
        ];
        for (i, &(x, w)) in cases.iter().enumerate() {
            let mut sa = Sng::new(SngKind::Lfsr32, 100 + i as u64);
            let mut sb = Sng::new(SngKind::Lfsr32, 200 + i as u64);
            let a = sa.generate_bipolar(x, len).unwrap();
            let b = sb.generate_bipolar(w, len).unwrap();
            let z = bipolar(&a, &b);
            assert!(
                (z.bipolar_value() - x * w).abs() < 0.08,
                "{x} * {w} decoded as {}",
                z.bipolar_value()
            );
        }
    }

    #[test]
    fn unipolar_multiplication_is_accurate_statistically() {
        let len = StreamLength::new(4096);
        let mut sa = Sng::new(SngKind::Lfsr32, 1);
        let mut sb = Sng::new(SngKind::Lfsr32, 2);
        let a = sa.generate_unipolar(0.6, len).unwrap();
        let b = sb.generate_unipolar(0.5, len).unwrap();
        let z = unipolar(&a, &b);
        assert!((z.unipolar_value() - 0.3).abs() < 0.05);
    }

    #[test]
    fn correlated_streams_break_multiplication() {
        // Multiplying a bipolar stream by itself with XNOR yields +1, not x².
        let len = StreamLength::new(1024);
        let mut sng = Sng::new(SngKind::Lfsr32, 3);
        let a = sng.generate_bipolar(0.5, len).unwrap();
        let z = bipolar(&a, &a);
        assert!((z.bipolar_value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mismatched_lengths_are_rejected() {
        let a = BitStream::from_binary_str("1010").unwrap();
        let b = BitStream::from_binary_str("10100").unwrap();
        assert!(try_unipolar(&a, &b).is_err());
        assert!(try_bipolar(&a, &b).is_err());
    }

    #[test]
    fn fused_counts_match_materialized_products() {
        let len = StreamLength::new(127);
        let mut sa = Sng::new(SngKind::Lfsr32, 8);
        let mut sb = Sng::new(SngKind::Lfsr32, 9);
        let a = sa.generate_bipolar(0.4, len).unwrap();
        let b = sb.generate_bipolar(-0.6, len).unwrap();
        assert_eq!(unipolar_count(&a, &b), unipolar(&a, &b).count_ones());
        assert_eq!(bipolar_count(&a, &b), bipolar(&a, &b).count_ones());
    }

    #[test]
    fn fused_dot_matches_materialized_sum() {
        let len = StreamLength::new(1000);
        let values = [(0.5, -0.5), (0.8, 0.7), (-0.9, 0.2), (0.0, 0.3)];
        let mut xs = Vec::new();
        let mut ws = Vec::new();
        for (i, &(x, w)) in values.iter().enumerate() {
            xs.push(
                Sng::new(SngKind::Lfsr32, 50 + i as u64)
                    .generate_bipolar(x, len)
                    .unwrap(),
            );
            ws.push(
                Sng::new(SngKind::Lfsr32, 150 + i as u64)
                    .generate_bipolar(w, len)
                    .unwrap(),
            );
        }
        let fused = bipolar_dot(&xs, &ws).unwrap();
        let materialized: f64 = bipolar_products(&xs, &ws)
            .unwrap()
            .iter()
            .map(|p| p.bipolar_value())
            .sum();
        assert!((fused - materialized).abs() < 1e-12);
    }

    #[test]
    fn fused_dot_validates_inputs() {
        let a = vec![BitStream::from_binary_str("1010").unwrap()];
        let b = vec![BitStream::from_binary_str("10100").unwrap()];
        let paired = vec![a[0].clone(), a[0].clone()];
        assert_eq!(bipolar_dot(&[], &[]), Err(ScError::EmptyInput));
        assert!(bipolar_dot(&a, &paired).is_err());
        assert!(bipolar_dot(&a, &b).is_err());
    }

    #[test]
    fn products_validate_inputs() {
        let a = vec![BitStream::from_binary_str("1010").unwrap()];
        let paired = vec![a[0].clone(), a[0].clone()];
        assert_eq!(bipolar_products(&[], &[]), Err(ScError::EmptyInput));
        assert!(bipolar_products(&a, &paired).is_err());
        let products = bipolar_products(&a, &a).unwrap();
        assert_eq!(products.len(), 1);
    }
}
