//! Memoization of generated stochastic streams.
//!
//! A comparator-based SNG is a pure function of its lane seed and its
//! comparator threshold: the same `(seed, threshold)` pair always yields the
//! same bit-stream (see [`crate::sng`]). Network inference re-encodes the
//! same values over and over — background pixels repeat within an image, and
//! every decoded layer output is quantized to one of `L + 1` bipolar levels —
//! so a compiled inference engine can skip most SNG work by caching streams
//! under that key. [`StreamCache`] is that cache: a bounded map from
//! `(lane_seed, threshold)` to the generated stream, with arena-backed
//! hand-out so steady-state hits allocate nothing.
//!
//! Correctness does not depend on any cache policy: an entry is only ever a
//! copy of what the generator would produce for the same key, so hits and
//! misses (and evictions) are observationally identical to always
//! regenerating.

use crate::arena::StreamArena;
use crate::bitstream::BitStream;
use std::collections::HashMap;

/// Cache key: the SNG lane seed and the 16-bit comparator threshold the
/// stream was generated with (see [`crate::sng::probability_threshold`]).
pub type StreamKey = (u64, u32);

/// Running hit/miss counters of a [`StreamCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that had to generate a fresh stream.
    pub misses: u64,
    /// Number of eviction passes run after reaching capacity.
    pub flushes: u64,
    /// Total entries removed by eviction passes (not lookups or `clear`).
    pub evicted: u64,
    /// Streams currently held.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of requests served from the cache (zero when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Merges another cache's counters into this one (used to aggregate
    /// over fan-out worker sessions or benchmark phases). `entries` is
    /// occupancy, not a counter: the merged value is the summed occupancy
    /// of the constituent caches at their snapshot times.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.flushes += other.flushes;
        self.evicted += other.evicted;
        self.entries += other.entries;
    }
}

/// One cached stream plus the generation of its last insert or hit.
#[derive(Debug)]
struct CacheEntry {
    generation: u64,
    stream: BitStream,
}

/// A bounded `(lane_seed, threshold) → BitStream` memo table.
///
/// Eviction is generation-based: every insert *and every hit* stamps the
/// entry with a monotonically increasing generation, and when the table
/// reaches capacity an eviction pass drops the stale half (entries whose
/// generation falls outside the newest `capacity / 2` touches). The previous
/// wholesale flush emptied the table mid-request and produced a periodic
/// hit-rate cliff — every hot key (saturated activations, background pixels)
/// had to miss once per epoch; keeping the recently-touched half warm
/// removes the cliff while the bookkeeping stays one `HashMap` operation per
/// lookup plus an amortized O(1) retain per insert. Eviction can never
/// change any result: an entry is only ever a copy of what the generator
/// would produce for the same key.
#[derive(Debug)]
pub struct StreamCache {
    map: HashMap<StreamKey, CacheEntry>,
    capacity: usize,
    generation: u64,
    hits: u64,
    misses: u64,
    flushes: u64,
    evicted: u64,
}

impl StreamCache {
    /// Creates a cache holding at most `capacity` streams (minimum one).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            capacity: capacity.max(1),
            generation: 0,
            hits: 0,
            misses: 0,
            flushes: 0,
            evicted: 0,
        }
    }

    /// Returns the stream for `key` at the given `length`, generating it
    /// with `fill` on a miss.
    ///
    /// The length is part of the lookup: a cached entry of a different
    /// length (possible when one cache is shared across engines with
    /// different stream lengths) counts as a miss and is replaced, so a hit
    /// can never hand back a wrong-length stream.
    ///
    /// The returned stream is an arena-backed copy owned by the caller
    /// (recycle it into `arena` when done); the cache keeps its own master
    /// copy. `fill` receives the arena so generation itself can reuse pooled
    /// buffers and must produce a stream of `length` bits.
    ///
    /// # Errors
    ///
    /// Propagates whatever error `fill` returns; the cache is unchanged in
    /// that case.
    pub fn get_or_generate<E>(
        &mut self,
        key: StreamKey,
        length: crate::bitstream::StreamLength,
        arena: &mut StreamArena,
        fill: impl FnOnce(&mut StreamArena) -> Result<BitStream, E>,
    ) -> Result<BitStream, E> {
        if let Some(entry) = self.map.get_mut(&key) {
            if entry.stream.stream_length() == length {
                self.hits += 1;
                // Refresh the entry's generation so constantly-hit keys
                // never age into the evicted half (insertion-order-only
                // aging would still cliff hot keys once per epoch).
                self.generation += 1;
                entry.generation = self.generation;
                let mut copy = arena.take_zeroed(length);
                copy.copy_range_from(&entry.stream, 0, entry.stream.len());
                return Ok(copy);
            }
        }
        self.misses += 1;
        let stream = fill(arena)?;
        debug_assert_eq!(stream.len(), length.bits(), "fill produced a wrong length");
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            self.evict_old_half();
        }
        self.generation += 1;
        self.map.insert(
            key,
            CacheEntry {
                generation: self.generation,
                stream: stream.clone(),
            },
        );
        Ok(stream)
    }

    /// Drops the entries outside the newest `capacity / 2` generations
    /// (inserts and hits both count). Generations are unique per touch, so
    /// at most `capacity / 2` entries survive.
    fn evict_old_half(&mut self) {
        let cutoff = self.generation.saturating_sub((self.capacity / 2) as u64);
        let before = self.map.len();
        self.map.retain(|_, entry| entry.generation > cutoff);
        self.flushes += 1;
        self.evicted += (before - self.map.len()) as u64;
    }

    /// Drops all cached streams (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            flushes: self.flushes,
            evicted: self.evicted,
            entries: self.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::StreamLength;
    use crate::sng::{Sng, SngKind};

    fn generate(seed: u64, value: f64, len: usize) -> BitStream {
        Sng::new(SngKind::Lfsr32, seed)
            .generate_bipolar(value, StreamLength::new(len))
            .unwrap()
    }

    #[test]
    fn hit_returns_identical_stream() {
        let mut cache = StreamCache::new(16);
        let mut arena = StreamArena::new();
        let expected = generate(5, 0.25, 130);
        let length = StreamLength::new(130);
        let first = cache
            .get_or_generate::<()>((5, 100), length, &mut arena, |_| Ok(generate(5, 0.25, 130)))
            .unwrap();
        assert_eq!(first, expected);
        arena.recycle(first);
        // Second request must be served from the cache and still match.
        let second = cache
            .get_or_generate::<()>((5, 100), length, &mut arena, |_| {
                panic!("cache must not regenerate on a hit")
            })
            .unwrap();
        assert_eq!(second, expected);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_flush_keeps_results_correct() {
        let mut cache = StreamCache::new(2);
        let mut arena = StreamArena::new();
        for round in 0..3u64 {
            for key in 0..4u64 {
                let got = cache
                    .get_or_generate::<()>((key, 0), StreamLength::new(64), &mut arena, |_| {
                        Ok(generate(key, 0.5, 64))
                    })
                    .unwrap();
                assert_eq!(got, generate(key, 0.5, 64), "round {round} key {key}");
                arena.recycle(got);
            }
        }
        assert!(cache.stats().flushes > 0);
        assert!(cache.stats().entries <= 2);
    }

    #[test]
    fn eviction_keeps_the_recently_inserted_half_warm() {
        let mut cache = StreamCache::new(8);
        let mut arena = StreamArena::new();
        let length = StreamLength::new(64);
        // Fill to capacity: keys 0..8, insertion order = key order.
        for key in 0..8u64 {
            let got = cache
                .get_or_generate::<()>((key, 0), length, &mut arena, |_| Ok(generate(key, 0.5, 64)))
                .unwrap();
            arena.recycle(got);
        }
        // The ninth insert triggers one eviction pass.
        let got = cache
            .get_or_generate::<()>((8, 0), length, &mut arena, |_| Ok(generate(8, 0.5, 64)))
            .unwrap();
        arena.recycle(got);
        let stats = cache.stats();
        assert_eq!(stats.flushes, 1);
        // Exactly the old half (keys 0..4) was dropped, and the counter
        // records the evicted entries, not just the pass.
        assert_eq!(stats.evicted, 4);
        assert_eq!(stats.entries, 5);
        // The young half (keys 4..8) survived: re-requesting them must hit,
        // not regenerate — this is the mid-request hit-rate cliff the
        // wholesale flush used to cause.
        for key in 4..8u64 {
            let got = cache
                .get_or_generate::<()>((key, 0), length, &mut arena, |_| {
                    panic!("key {key} should have survived the eviction pass")
                })
                .unwrap();
            assert_eq!(got, generate(key, 0.5, 64));
            arena.recycle(got);
        }
    }

    #[test]
    fn constantly_hit_keys_survive_eviction_regardless_of_insert_age() {
        // Hits refresh an entry's generation, so a hot key inserted first
        // must outlive an eviction pass triggered by cold-key churn.
        let mut cache = StreamCache::new(8);
        let mut arena = StreamArena::new();
        let length = StreamLength::new(64);
        let mut touch = |cache: &mut StreamCache, key: u64, may_generate: bool| {
            let got = cache
                .get_or_generate::<()>((key, 0), length, &mut arena, |_| {
                    assert!(may_generate, "key {key} should have been cached");
                    Ok(generate(key, 0.5, 64))
                })
                .unwrap();
            arena.recycle(got);
        };
        touch(&mut cache, 100, true); // the hot key, inserted first
        for key in 0..7u64 {
            touch(&mut cache, key, true); // cold fill to capacity
            touch(&mut cache, 100, false); // hot key hit after every insert
        }
        // Churn past capacity: eviction passes must spare the hot key.
        for key in 200..212u64 {
            touch(&mut cache, key, true);
            touch(&mut cache, 100, false);
        }
        assert!(cache.stats().flushes > 0, "churn must have evicted");
    }

    #[test]
    fn capacity_one_cache_stays_bounded() {
        let mut cache = StreamCache::new(1);
        let mut arena = StreamArena::new();
        for key in 0..5u64 {
            let got = cache
                .get_or_generate::<()>((key, 0), StreamLength::new(32), &mut arena, |_| {
                    Ok(generate(key, 0.25, 32))
                })
                .unwrap();
            assert_eq!(got, generate(key, 0.25, 32));
            arena.recycle(got);
        }
        let stats = cache.stats();
        assert!(stats.entries <= 1);
        assert_eq!(stats.evicted, stats.flushes);
    }

    #[test]
    fn mismatched_length_is_a_miss_not_a_wrong_stream() {
        let mut cache = StreamCache::new(16);
        let mut arena = StreamArena::new();
        let long = cache
            .get_or_generate::<()>((9, 9), StreamLength::new(256), &mut arena, |_| {
                Ok(generate(9, 0.25, 256))
            })
            .unwrap();
        assert_eq!(long.len(), 256);
        // Same key, different length: must regenerate, never return the
        // 256-bit master.
        let short = cache
            .get_or_generate::<()>((9, 9), StreamLength::new(64), &mut arena, |_| {
                Ok(generate(9, 0.25, 64))
            })
            .unwrap();
        assert_eq!(short, generate(9, 0.25, 64));
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn errors_propagate_and_do_not_insert() {
        let mut cache = StreamCache::new(4);
        let mut arena = StreamArena::new();
        let result =
            cache
                .get_or_generate::<&str>((1, 1), StreamLength::new(8), &mut arena, |_| Err("boom"));
        assert_eq!(result.unwrap_err(), "boom");
        assert_eq!(cache.stats().entries, 0);
        cache.clear();
        assert_eq!(cache.stats().misses, 1);
    }
}
