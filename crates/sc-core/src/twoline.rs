//! Two-line representation of stochastic numbers (Toral et al., ISCAS 2000).
//!
//! A two-line stochastic number consists of a magnitude stream `M(X)` and a
//! sign stream `S(X)` (1 = negative). Its value is
//! `x = (1/L)·Σ (1 − 2·S(Xᵢ))·M(Xᵢ)`, i.e. every cycle contributes −1, 0 or
//! +1. The representation supports a *non-scaled* adder: two trits are summed
//! together with a saturating ±1 carry counter. The paper evaluates it as an
//! inner-product adder and rejects it because of overflow with many inputs
//! and a large area overhead; both behaviours are reproduced here.

use crate::bitstream::{BitStream, StreamLength};
use crate::error::ScError;
use crate::rng::RandomSource;
use serde::{Deserialize, Serialize};

/// A stochastic number in two-line (sign + magnitude) representation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoLineStream {
    magnitude: BitStream,
    sign: BitStream,
}

impl TwoLineStream {
    /// Creates a two-line stream from its magnitude and sign streams.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::LengthMismatch`] if the streams differ in length.
    pub fn new(magnitude: BitStream, sign: BitStream) -> Result<Self, ScError> {
        if magnitude.len() != sign.len() {
            return Err(ScError::LengthMismatch {
                left: magnitude.len(),
                right: sign.len(),
            });
        }
        Ok(Self { magnitude, sign })
    }

    /// Encodes a real value in `[-1, 1]` as a two-line stream, drawing the
    /// magnitude bits from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::ValueOutOfRange`] for values outside `[-1, 1]`.
    pub fn encode<R: RandomSource>(
        value: f64,
        length: StreamLength,
        rng: &mut R,
    ) -> Result<Self, ScError> {
        if !(-1.0..=1.0).contains(&value) || value.is_nan() {
            return Err(ScError::ValueOutOfRange {
                value,
                min: -1.0,
                max: 1.0,
            });
        }
        let magnitude_probability = value.abs();
        let threshold = (magnitude_probability * 65536.0).round() as u32;
        let mut magnitude = BitStream::zeros(length);
        for i in 0..length.bits() {
            if (rng.next_u32() & 0xFFFF) < threshold {
                magnitude.set(i, true);
            }
        }
        let sign = if value < 0.0 {
            BitStream::ones(length)
        } else {
            BitStream::zeros(length)
        };
        Ok(Self { magnitude, sign })
    }

    /// The magnitude stream `M(X)`.
    pub fn magnitude(&self) -> &BitStream {
        &self.magnitude
    }

    /// The sign stream `S(X)` (1 = negative).
    pub fn sign(&self) -> &BitStream {
        &self.sign
    }

    /// Stream length in bits.
    pub fn len(&self) -> usize {
        self.magnitude.len()
    }

    /// Whether the stream is empty (never true for constructed streams).
    pub fn is_empty(&self) -> bool {
        self.magnitude.is_empty()
    }

    /// Decodes the represented value `(1/L)·Σ (1 − 2·Sᵢ)·Mᵢ`.
    pub fn value(&self) -> f64 {
        let mut total = 0i64;
        for i in 0..self.len() {
            if self.magnitude.get(i) {
                total += if self.sign.get(i) { -1 } else { 1 };
            }
        }
        total as f64 / self.len() as f64
    }

    /// The trit (−1, 0, +1) at cycle `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn trit(&self, index: usize) -> i8 {
        if !self.magnitude.get(index) {
            0
        } else if self.sign.get(index) {
            -1
        } else {
            1
        }
    }
}

/// Non-scaled adder over two-line streams with a saturating ±1 carry counter.
///
/// Each cycle the adder sums the two input trits plus the stored carry. The
/// output trit is clamped to `[-1, 1]`; any residue is stored in the carry
/// counter, which itself saturates at ±1 (a three-state counter in hardware).
/// Saturation of either the output or the carry is how overflow manifests,
/// and the adder records how many cycles saturated so the experiment harness
/// can report the overflow rate the paper warns about.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoLineAdder;

/// Outcome of a two-line addition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoLineSum {
    /// The output stream.
    pub stream: TwoLineStream,
    /// Number of cycles in which the carry counter or output saturated.
    pub saturated_cycles: usize,
}

impl TwoLineAdder {
    /// Creates a two-line adder.
    pub fn new() -> Self {
        Self
    }

    /// Adds two two-line streams.
    ///
    /// The carry chain is serial by construction, but the walk is word-wise:
    /// each iteration loads the four operand words (two magnitudes, two
    /// signs) once, extracts trits by register shifts, and assembles the
    /// output words in registers — no per-bit bounds-checked `get`/`set`
    /// calls. Bit-exact with the per-bit walk it replaces (property-tested
    /// below).
    ///
    /// # Errors
    ///
    /// Returns [`ScError::LengthMismatch`] if the streams differ in length.
    pub fn add(&self, a: &TwoLineStream, b: &TwoLineStream) -> Result<TwoLineSum, ScError> {
        if a.len() != b.len() {
            return Err(ScError::LengthMismatch {
                left: a.len(),
                right: b.len(),
            });
        }
        let len = a.len();
        let length = StreamLength::try_new(len)?;
        let mut magnitude = BitStream::zeros(length);
        let mut sign = BitStream::zeros(length);
        let a_mag = a.magnitude.as_words();
        let a_sign = a.sign.as_words();
        let b_mag = b.magnitude.as_words();
        let b_sign = b.sign.as_words();
        let mut carry: i32 = 0;
        let mut saturated = 0usize;
        for w in 0..len.div_ceil(64) {
            let (am, asn) = (a_mag[w], a_sign[w]);
            let (bm, bsn) = (b_mag[w], b_sign[w]);
            let bits = (len - w * 64).min(64);
            let mut out_mag = 0u64;
            let mut out_sign = 0u64;
            for bit in 0..bits {
                // trit = m·(1 − 2s): 0 without magnitude, else ±1 by sign.
                let ta = ((am >> bit) & 1) as i32 * (1 - 2 * ((asn >> bit) & 1) as i32);
                let tb = ((bm >> bit) & 1) as i32 * (1 - 2 * ((bsn >> bit) & 1) as i32);
                let total = ta + tb + carry;
                let out = total.clamp(-1, 1);
                let mut residue = total - out;
                if residue > 1 {
                    residue = 1;
                    saturated += 1;
                } else if residue < -1 {
                    residue = -1;
                    saturated += 1;
                }
                carry = residue;
                out_mag |= u64::from(out != 0) << bit;
                out_sign |= u64::from(out < 0) << bit;
            }
            magnitude.words_mut()[w] = out_mag;
            sign.words_mut()[w] = out_sign;
        }
        Ok(TwoLineSum {
            stream: TwoLineStream::new(magnitude, sign)?,
            saturated_cycles: saturated,
        })
    }

    /// Adds an arbitrary number of streams by chaining pairwise additions,
    /// accumulating the saturation count (this is how a multi-input inner
    /// product block would cascade the two-line adders).
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] for an empty slice and
    /// [`ScError::LengthMismatch`] on length mismatch.
    pub fn sum(&self, inputs: &[TwoLineStream]) -> Result<TwoLineSum, ScError> {
        let first = inputs.first().ok_or(ScError::EmptyInput)?;
        let mut acc = TwoLineSum {
            stream: first.clone(),
            saturated_cycles: 0,
        };
        for stream in &inputs[1..] {
            let next = self.add(&acc.stream, stream)?;
            acc = TwoLineSum {
                stream: next.stream,
                saturated_cycles: acc.saturated_cycles + next.saturated_cycles,
            };
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Lfsr;

    #[test]
    fn paper_example_negative_half() {
        // M(-0.5): 10110001, S(-0.5): 11111111 represents -0.5 (4 ones in 8 bits, all negative).
        let magnitude = BitStream::from_binary_str("10110001").unwrap();
        let sign = BitStream::from_binary_str("11111111").unwrap();
        let stream = TwoLineStream::new(magnitude, sign).unwrap();
        assert!((stream.value() + 0.5).abs() < 1e-12);
    }

    #[test]
    fn encode_round_trip() {
        let length = StreamLength::new(4096);
        for &value in &[-0.9f64, -0.3, 0.0, 0.4, 0.8] {
            let mut rng = Lfsr::new_32(7 + (value.to_bits() & 0xFF) as u32);
            let stream = TwoLineStream::encode(value, length, &mut rng).unwrap();
            assert!(
                (stream.value() - value).abs() < 0.05,
                "value {value} decoded as {}",
                stream.value()
            );
        }
    }

    #[test]
    fn encode_rejects_out_of_range() {
        let mut rng = Lfsr::new_32(1);
        assert!(TwoLineStream::encode(1.5, StreamLength::new(16), &mut rng).is_err());
        assert!(TwoLineStream::encode(f64::NAN, StreamLength::new(16), &mut rng).is_err());
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let m = BitStream::from_binary_str("1010").unwrap();
        let s = BitStream::from_binary_str("10100").unwrap();
        assert!(TwoLineStream::new(m, s).is_err());
    }

    #[test]
    fn addition_is_non_scaled_for_small_sums() {
        let length = StreamLength::new(8192);
        let mut rng_a = Lfsr::new_32(11);
        let mut rng_b = Lfsr::new_32(23);
        let a = TwoLineStream::encode(0.3, length, &mut rng_a).unwrap();
        let b = TwoLineStream::encode(0.25, length, &mut rng_b).unwrap();
        let sum = TwoLineAdder::new().add(&a, &b).unwrap();
        // Non-scaled: the output represents 0.55, not 0.275.
        assert!((sum.stream.value() - 0.55).abs() < 0.06);
    }

    #[test]
    fn addition_overflows_for_large_sums() {
        let length = StreamLength::new(4096);
        let streams: Vec<TwoLineStream> = (0..6)
            .map(|i| {
                let mut rng = Lfsr::new_32(100 + i);
                TwoLineStream::encode(0.8, length, &mut rng).unwrap()
            })
            .collect();
        let sum = TwoLineAdder::new().sum(&streams).unwrap();
        // The true sum is 4.8 but the representation saturates near 1.
        assert!(sum.stream.value() < 1.01);
        assert!(
            sum.saturated_cycles > 0,
            "expected overflow cycles for a sum of 4.8"
        );
    }

    /// Frozen per-bit reference of the pre-word-walk adder, pinning the
    /// word-wise implementation bit-for-bit (including the saturation
    /// count) across ragged lengths.
    #[test]
    fn word_walk_add_matches_per_bit_reference() {
        fn per_bit_add(a: &TwoLineStream, b: &TwoLineStream) -> (TwoLineStream, usize) {
            let length = StreamLength::new(a.len());
            let mut magnitude = BitStream::zeros(length);
            let mut sign = BitStream::zeros(length);
            let mut carry: i32 = 0;
            let mut saturated = 0usize;
            for i in 0..a.len() {
                let total = i32::from(a.trit(i)) + i32::from(b.trit(i)) + carry;
                let out = total.clamp(-1, 1);
                let mut residue = total - out;
                if residue > 1 {
                    residue = 1;
                    saturated += 1;
                } else if residue < -1 {
                    residue = -1;
                    saturated += 1;
                }
                carry = residue;
                if out != 0 {
                    magnitude.set(i, true);
                    if out < 0 {
                        sign.set(i, true);
                    }
                }
            }
            (TwoLineStream::new(magnitude, sign).unwrap(), saturated)
        }
        for &len in &[1usize, 63, 64, 100, 127, 1024] {
            for &(va, vb) in &[(0.3f64, 0.25f64), (-0.8, -0.7), (0.9, 0.9), (-0.5, 0.5)] {
                let length = StreamLength::new(len);
                let mut rng_a = Lfsr::new_32(11 + len as u32);
                let mut rng_b = Lfsr::new_32(23 + len as u32);
                let a = TwoLineStream::encode(va, length, &mut rng_a).unwrap();
                let b = TwoLineStream::encode(vb, length, &mut rng_b).unwrap();
                let (expected, expected_saturated) = per_bit_add(&a, &b);
                let sum = TwoLineAdder::new().add(&a, &b).unwrap();
                assert_eq!(sum.stream, expected, "len {len} ({va}, {vb})");
                assert_eq!(
                    sum.saturated_cycles, expected_saturated,
                    "saturation count at len {len} ({va}, {vb})"
                );
            }
        }
    }

    #[test]
    fn sum_requires_inputs() {
        assert!(TwoLineAdder::new().sum(&[]).is_err());
    }

    #[test]
    fn trit_values() {
        let magnitude = BitStream::from_binary_str("110").unwrap();
        let sign = BitStream::from_binary_str("010").unwrap();
        let stream = TwoLineStream::new(magnitude, sign).unwrap();
        assert_eq!(stream.trit(0), 1);
        assert_eq!(stream.trit(1), -1);
        assert_eq!(stream.trit(2), 0);
        assert_eq!(stream.len(), 3);
        assert!(!stream.is_empty());
    }
}
