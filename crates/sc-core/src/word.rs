//! Word-generic kernel backends: scalar, portable super-word, and SIMD.
//!
//! Every hot kernel in this crate — the SNG comparator fill, the fused
//! XNOR/popcount inner-product counts, bit-sliced MUX selector application,
//! the CSA vertical-counter compressors, and the word-interleaved FSM batch
//! walks — is written once, generically over [`Word`]: a fixed-width bundle
//! of 64-bit bit-stream lanes.
//!
//! * `u64` ([`Word::LANES`] = 1) is the **bit-exact reference**. Every other
//!   backend is required to produce identical bits; the kernels contain no
//!   backend-specific logic, only a wider word, so this holds by
//!   construction and is property-tested per kernel.
//! * [`W4`] (`[u64; 4]`, 4 lanes) is the **portable super-word** — plain
//!   array code the compiler auto-vectorizes, available everywhere with no
//!   feature flags. It is the default wide path.
//! * `WAvx2` (x86-64, 4 lanes) and `WNeon` (AArch64, 2 lanes) are
//!   `std::arch` backends behind the `simd` cargo feature, selected at
//!   runtime only when the CPU supports them.
//!
//! Backend selection is process-global: [`active_backend`] picks the best
//! available backend on first use (honouring the `SC_KERNEL_BACKEND`
//! environment variable: `scalar`, `wide`, `avx2`, or `neon`), and
//! [`force_backend`] overrides it, e.g. to pin CI legs or A/B benchmark
//! runs. Because all backends are bit-identical, flipping the backend at any
//! point — even mid-evaluation from another thread — can never change a
//! result, only its speed.

use std::sync::atomic::{AtomicU8, Ordering};

/// A bundle of [`Word::LANES`] 64-bit bit-stream words processed as one unit.
///
/// Lane `i` of a `Word` loaded from `src` holds `src[i]`; all bitwise
/// operations act lane-wise, and shift counts are uniform across lanes and
/// must be `< 64`. The `*_i64` operations treat each lane as a signed 64-bit
/// integer (used by the FSM activation walks); comparison results are
/// per-lane masks (all-ones for true, zero for false).
pub trait Word: Copy {
    /// Number of 64-bit lanes in this word.
    const LANES: usize;

    /// The all-zeros word.
    fn zero() -> Self;

    /// Broadcasts `value` into every lane.
    fn splat(value: u64) -> Self;

    /// Loads [`Word::LANES`] lanes from the front of `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() < Self::LANES`.
    fn load(src: &[u64]) -> Self;

    /// Stores the lanes to the front of `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() < Self::LANES`.
    fn store(self, dst: &mut [u64]);

    /// Lane-wise bitwise AND.
    fn and(self, rhs: Self) -> Self;

    /// Lane-wise bitwise OR.
    fn or(self, rhs: Self) -> Self;

    /// Lane-wise bitwise XOR.
    fn xor(self, rhs: Self) -> Self;

    /// Lane-wise bitwise NOT.
    fn not(self) -> Self;

    /// `self & !rhs`, lane-wise (one instruction on SIMD backends).
    #[inline(always)]
    fn andnot(self, rhs: Self) -> Self {
        self.and(rhs.not())
    }

    /// Uniform logical right shift of every lane by `n` (`n < 64`).
    fn shr(self, n: u32) -> Self;

    /// Uniform left shift of every lane by `n` (`n < 64`).
    fn shl(self, n: u32) -> Self;

    /// Whether every lane is zero.
    fn is_zero(self) -> bool;

    /// Adds the population count of each lane into the corresponding lane of
    /// `acc` and returns the updated accumulator.
    ///
    /// Keeping the accumulator vector-shaped lets the AVX2 backend run its
    /// byte-LUT popcount without a horizontal reduction per word; reduce
    /// once at the end with [`Word::horizontal_sum`].
    fn popcount_accumulate(self, acc: Self) -> Self;

    /// Sum of all lanes (wrapping).
    fn horizontal_sum(self) -> u64;

    /// Broadcasts a signed value into every lane.
    #[inline(always)]
    fn splat_i64(value: i64) -> Self {
        Self::splat(value as u64)
    }

    /// Lane-wise wrapping addition of signed 64-bit lanes.
    fn add_i64(self, rhs: Self) -> Self;

    /// Lane-wise signed comparison: all-ones where `self > rhs`, else zero.
    fn cmp_gt_i64(self, rhs: Self) -> Self;

    /// Per-lane select: where `mask` is all-ones take `rhs`, else `self`.
    #[inline(always)]
    fn blend(self, rhs: Self, mask: Self) -> Self {
        self.xor(self.xor(rhs).and(mask))
    }
}

impl Word for u64 {
    const LANES: usize = 1;

    #[inline(always)]
    fn zero() -> Self {
        0
    }

    #[inline(always)]
    fn splat(value: u64) -> Self {
        value
    }

    #[inline(always)]
    fn load(src: &[u64]) -> Self {
        src[0]
    }

    #[inline(always)]
    fn store(self, dst: &mut [u64]) {
        dst[0] = self;
    }

    #[inline(always)]
    fn and(self, rhs: Self) -> Self {
        self & rhs
    }

    #[inline(always)]
    fn or(self, rhs: Self) -> Self {
        self | rhs
    }

    #[inline(always)]
    fn xor(self, rhs: Self) -> Self {
        self ^ rhs
    }

    #[inline(always)]
    fn not(self) -> Self {
        !self
    }

    #[inline(always)]
    fn shr(self, n: u32) -> Self {
        self >> n
    }

    #[inline(always)]
    fn shl(self, n: u32) -> Self {
        self << n
    }

    #[inline(always)]
    fn is_zero(self) -> bool {
        self == 0
    }

    #[inline(always)]
    fn popcount_accumulate(self, acc: Self) -> Self {
        acc + u64::from(self.count_ones())
    }

    #[inline(always)]
    fn horizontal_sum(self) -> u64 {
        self
    }

    #[inline(always)]
    fn add_i64(self, rhs: Self) -> Self {
        ((self as i64).wrapping_add(rhs as i64)) as u64
    }

    #[inline(always)]
    fn cmp_gt_i64(self, rhs: Self) -> Self {
        if (self as i64) > (rhs as i64) {
            u64::MAX
        } else {
            0
        }
    }
}

/// Portable 4-lane super-word: plain `[u64; 4]` array code with no feature
/// requirements. The element-wise loops are written so the compiler's
/// auto-vectorizer can lower them to whatever vector ISA the build targets.
#[derive(Clone, Copy)]
pub struct W4(pub [u64; 4]);

impl Word for W4 {
    const LANES: usize = 4;

    #[inline(always)]
    fn zero() -> Self {
        W4([0; 4])
    }

    #[inline(always)]
    fn splat(value: u64) -> Self {
        W4([value; 4])
    }

    #[inline(always)]
    fn load(src: &[u64]) -> Self {
        W4([src[0], src[1], src[2], src[3]])
    }

    #[inline(always)]
    fn store(self, dst: &mut [u64]) {
        dst[..4].copy_from_slice(&self.0);
    }

    #[inline(always)]
    fn and(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0) {
            *o &= r;
        }
        W4(out)
    }

    #[inline(always)]
    fn or(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0) {
            *o |= r;
        }
        W4(out)
    }

    #[inline(always)]
    fn xor(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0) {
            *o ^= r;
        }
        W4(out)
    }

    #[inline(always)]
    fn not(self) -> Self {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o = !*o;
        }
        W4(out)
    }

    #[inline(always)]
    fn shr(self, n: u32) -> Self {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o >>= n;
        }
        W4(out)
    }

    #[inline(always)]
    fn shl(self, n: u32) -> Self {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o <<= n;
        }
        W4(out)
    }

    #[inline(always)]
    fn is_zero(self) -> bool {
        (self.0[0] | self.0[1] | self.0[2] | self.0[3]) == 0
    }

    #[inline(always)]
    fn popcount_accumulate(self, acc: Self) -> Self {
        let mut out = acc.0;
        for (o, v) in out.iter_mut().zip(self.0) {
            *o += u64::from(v.count_ones());
        }
        W4(out)
    }

    #[inline(always)]
    fn horizontal_sum(self) -> u64 {
        self.0
            .iter()
            .fold(0u64, |acc, &lane| acc.wrapping_add(lane))
    }

    #[inline(always)]
    fn add_i64(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0) {
            *o = (*o as i64).wrapping_add(r as i64) as u64;
        }
        W4(out)
    }

    #[inline(always)]
    fn cmp_gt_i64(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0) {
            *o = if (*o as i64) > (r as i64) {
                u64::MAX
            } else {
                0
            };
        }
        W4(out)
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    use super::Word;
    use std::arch::x86_64::*;

    /// AVX2 backend: one 256-bit register holding 4 bit-stream lanes.
    ///
    /// The trait methods are `#[inline(always)]` thin wrappers over single
    /// intrinsics; kernels reach them through per-kernel
    /// `#[target_feature(enable = "avx2")]` entry points so the whole
    /// generic kernel body is compiled with AVX2 codegen enabled and the
    /// intrinsics inline. Callers must have verified AVX2 support (the
    /// backend selector only reports [`super::Backend::Avx2`] after
    /// `is_x86_feature_detected!`).
    #[derive(Clone, Copy)]
    pub struct WAvx2(pub __m256i);

    impl Word for WAvx2 {
        const LANES: usize = 4;

        #[inline(always)]
        fn zero() -> Self {
            // SAFETY: callers hold the module-level AVX2 precondition.
            WAvx2(unsafe { _mm256_setzero_si256() })
        }

        #[inline(always)]
        fn splat(value: u64) -> Self {
            // SAFETY: as above.
            WAvx2(unsafe { _mm256_set1_epi64x(value as i64) })
        }

        #[inline(always)]
        fn load(src: &[u64]) -> Self {
            let src: &[u64] = &src[..4];
            // SAFETY: the reslice above guarantees 4 readable lanes;
            // `loadu` has no alignment requirement.
            WAvx2(unsafe { _mm256_loadu_si256(src.as_ptr().cast()) })
        }

        #[inline(always)]
        fn store(self, dst: &mut [u64]) {
            let dst: &mut [u64] = &mut dst[..4];
            // SAFETY: the reslice guarantees 4 writable lanes; `storeu`
            // has no alignment requirement.
            unsafe { _mm256_storeu_si256(dst.as_mut_ptr().cast(), self.0) }
        }

        #[inline(always)]
        fn and(self, rhs: Self) -> Self {
            // SAFETY: as above.
            WAvx2(unsafe { _mm256_and_si256(self.0, rhs.0) })
        }

        #[inline(always)]
        fn or(self, rhs: Self) -> Self {
            // SAFETY: as above.
            WAvx2(unsafe { _mm256_or_si256(self.0, rhs.0) })
        }

        #[inline(always)]
        fn xor(self, rhs: Self) -> Self {
            // SAFETY: as above.
            WAvx2(unsafe { _mm256_xor_si256(self.0, rhs.0) })
        }

        #[inline(always)]
        fn not(self) -> Self {
            // SAFETY: as above.
            WAvx2(unsafe { _mm256_xor_si256(self.0, _mm256_set1_epi64x(-1)) })
        }

        #[inline(always)]
        fn andnot(self, rhs: Self) -> Self {
            // The intrinsic computes `!a & b`, so the operands swap.
            // SAFETY: as above.
            WAvx2(unsafe { _mm256_andnot_si256(rhs.0, self.0) })
        }

        #[inline(always)]
        fn shr(self, n: u32) -> Self {
            // SAFETY: as above.
            WAvx2(unsafe { _mm256_srl_epi64(self.0, _mm_cvtsi32_si128(n as i32)) })
        }

        #[inline(always)]
        fn shl(self, n: u32) -> Self {
            // SAFETY: as above.
            WAvx2(unsafe { _mm256_sll_epi64(self.0, _mm_cvtsi32_si128(n as i32)) })
        }

        #[inline(always)]
        fn is_zero(self) -> bool {
            // SAFETY: as above.
            unsafe { _mm256_testz_si256(self.0, self.0) == 1 }
        }

        #[inline(always)]
        fn popcount_accumulate(self, acc: Self) -> Self {
            // Nibble-LUT popcount (Muła): per-byte counts via two PSHUFB
            // table lookups, horizontally summed into each 64-bit lane by
            // PSADBW against zero.
            // SAFETY: as above.
            unsafe {
                #[rustfmt::skip]
                let lut = _mm256_setr_epi8(
                    0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                    0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                );
                let low_mask = _mm256_set1_epi8(0x0f);
                let lo = _mm256_and_si256(self.0, low_mask);
                let hi = _mm256_and_si256(_mm256_srli_epi16(self.0, 4), low_mask);
                let per_byte =
                    _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
                let per_lane = _mm256_sad_epu8(per_byte, _mm256_setzero_si256());
                WAvx2(_mm256_add_epi64(acc.0, per_lane))
            }
        }

        #[inline(always)]
        fn horizontal_sum(self) -> u64 {
            let mut lanes = [0u64; 4];
            self.store(&mut lanes);
            lanes.iter().fold(0u64, |acc, &lane| acc.wrapping_add(lane))
        }

        #[inline(always)]
        fn add_i64(self, rhs: Self) -> Self {
            // SAFETY: as above.
            WAvx2(unsafe { _mm256_add_epi64(self.0, rhs.0) })
        }

        #[inline(always)]
        fn cmp_gt_i64(self, rhs: Self) -> Self {
            // SAFETY: as above.
            WAvx2(unsafe { _mm256_cmpgt_epi64(self.0, rhs.0) })
        }

        #[inline(always)]
        fn blend(self, rhs: Self, mask: Self) -> Self {
            // SAFETY: as above.
            WAvx2(unsafe { _mm256_blendv_epi8(self.0, rhs.0, mask.0) })
        }
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub use avx2::WAvx2;

#[cfg(all(feature = "simd", target_arch = "aarch64"))]
mod neon {
    use super::Word;
    use std::arch::aarch64::*;

    /// NEON backend: one 128-bit register holding 2 bit-stream lanes.
    ///
    /// NEON is baseline on AArch64, so unlike AVX2 the intrinsics need no
    /// per-kernel `#[target_feature]` entry points — the generic kernels
    /// are instantiated with `WNeon` directly.
    #[derive(Clone, Copy)]
    pub struct WNeon(pub uint64x2_t);

    impl Word for WNeon {
        const LANES: usize = 2;

        #[inline(always)]
        fn zero() -> Self {
            WNeon(unsafe { vdupq_n_u64(0) })
        }

        #[inline(always)]
        fn splat(value: u64) -> Self {
            WNeon(unsafe { vdupq_n_u64(value) })
        }

        #[inline(always)]
        fn load(src: &[u64]) -> Self {
            let src: &[u64] = &src[..2];
            // SAFETY: the reslice above guarantees 2 readable lanes.
            WNeon(unsafe { vld1q_u64(src.as_ptr()) })
        }

        #[inline(always)]
        fn store(self, dst: &mut [u64]) {
            let dst: &mut [u64] = &mut dst[..2];
            // SAFETY: the reslice above guarantees 2 writable lanes.
            unsafe { vst1q_u64(dst.as_mut_ptr(), self.0) }
        }

        #[inline(always)]
        fn and(self, rhs: Self) -> Self {
            WNeon(unsafe { vandq_u64(self.0, rhs.0) })
        }

        #[inline(always)]
        fn or(self, rhs: Self) -> Self {
            WNeon(unsafe { vorrq_u64(self.0, rhs.0) })
        }

        #[inline(always)]
        fn xor(self, rhs: Self) -> Self {
            WNeon(unsafe { veorq_u64(self.0, rhs.0) })
        }

        #[inline(always)]
        fn not(self) -> Self {
            WNeon(unsafe { veorq_u64(self.0, vdupq_n_u64(u64::MAX)) })
        }

        #[inline(always)]
        fn shr(self, n: u32) -> Self {
            // VSHL with a negative signed count is a logical right shift.
            WNeon(unsafe { vshlq_u64(self.0, vdupq_n_s64(-i64::from(n))) })
        }

        #[inline(always)]
        fn shl(self, n: u32) -> Self {
            WNeon(unsafe { vshlq_u64(self.0, vdupq_n_s64(i64::from(n))) })
        }

        #[inline(always)]
        fn is_zero(self) -> bool {
            unsafe { vmaxvq_u32(vreinterpretq_u32_u64(self.0)) == 0 }
        }

        #[inline(always)]
        fn popcount_accumulate(self, acc: Self) -> Self {
            // Per-byte CNT widened pairwise up to per-lane 64-bit sums.
            unsafe {
                let bytes = vcntq_u8(vreinterpretq_u8_u64(self.0));
                let per_lane = vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(bytes)));
                WNeon(vaddq_u64(acc.0, per_lane))
            }
        }

        #[inline(always)]
        fn horizontal_sum(self) -> u64 {
            unsafe { vgetq_lane_u64(self.0, 0).wrapping_add(vgetq_lane_u64(self.0, 1)) }
        }

        #[inline(always)]
        fn add_i64(self, rhs: Self) -> Self {
            WNeon(unsafe { vaddq_u64(self.0, rhs.0) })
        }

        #[inline(always)]
        fn cmp_gt_i64(self, rhs: Self) -> Self {
            unsafe {
                WNeon(vcgtq_s64(
                    vreinterpretq_s64_u64(self.0),
                    vreinterpretq_s64_u64(rhs.0),
                ))
            }
        }
    }
}

#[cfg(all(feature = "simd", target_arch = "aarch64"))]
pub use neon::WNeon;

/// The kernel backend the dispatchers route through.
///
/// All variants exist on every platform so tooling (benches, CI scripts,
/// config parsing) can name them unconditionally; [`Backend::is_available`]
/// reports whether this build and CPU can actually run one, and the
/// selection functions never activate an unavailable backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Scalar `u64` reference path.
    Scalar,
    /// Portable `[u64; 4]` super-word (always available).
    Wide,
    /// AVX2 256-bit path (`simd` feature, x86-64 with AVX2 only).
    Avx2,
    /// NEON 128-bit path (`simd` feature, AArch64 only).
    Neon,
}

impl Backend {
    /// All backends, in preference order (best first).
    pub const ALL: [Backend; 4] = [Backend::Avx2, Backend::Neon, Backend::Wide, Backend::Scalar];

    /// Whether this backend can run in this build on this CPU.
    pub fn is_available(self) -> bool {
        match self {
            Backend::Scalar | Backend::Wide => true,
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Backend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
            Backend::Avx2 => false,
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            Backend::Neon => true,
            #[cfg(not(all(feature = "simd", target_arch = "aarch64")))]
            Backend::Neon => false,
        }
    }

    /// Stable lower-case name (the `SC_KERNEL_BACKEND` vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Wide => "wide",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }

    /// Parses a backend name as accepted in `SC_KERNEL_BACKEND`.
    pub fn from_name(name: &str) -> Option<Backend> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Backend::Scalar),
            "wide" => Some(Backend::Wide),
            "avx2" => Some(Backend::Avx2),
            "neon" => Some(Backend::Neon),
            _ => None,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Routes a generic kernel through the active backend.
///
/// `$generic` is an `#[inline(always)]` function generic over [`Word`];
/// `$avx2` is its concrete `#[target_feature(enable = "avx2")]` entry point
/// (only referenced when the `simd` feature is on for x86-64, so it may be
/// left undefined elsewhere). The AVX2 arm is what makes the intrinsics
/// inline: calling the generic directly would compile its body without the
/// feature enabled.
macro_rules! dispatch_word_kernel {
    ($generic:ident, $avx2:path, ($($arg:expr),* $(,)?)) => {{
        match $crate::word::active_backend() {
            $crate::word::Backend::Scalar => $generic::<u64>($($arg),*),
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            $crate::word::Backend::Avx2 => {
                // SAFETY: `active_backend` reports AVX2 only after runtime
                // feature detection (or an availability-checked force).
                unsafe { $avx2($($arg),*) }
            }
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            $crate::word::Backend::Neon => {
                $generic::<$crate::word::WNeon>($($arg),*)
            }
            _ => $generic::<$crate::word::W4>($($arg),*),
        }
    }};
}
pub(crate) use dispatch_word_kernel;

/// Sentinel for "not yet selected".
const BACKEND_UNSET: u8 = u8::MAX;

static ACTIVE_BACKEND: AtomicU8 = AtomicU8::new(BACKEND_UNSET);

fn encode(backend: Backend) -> u8 {
    match backend {
        Backend::Scalar => 0,
        Backend::Wide => 1,
        Backend::Avx2 => 2,
        Backend::Neon => 3,
    }
}

fn decode(value: u8) -> Backend {
    match value {
        0 => Backend::Scalar,
        1 => Backend::Wide,
        2 => Backend::Avx2,
        _ => Backend::Neon,
    }
}

/// Best available backend, after honouring `SC_KERNEL_BACKEND` if it names
/// an available one.
fn detect_backend() -> Backend {
    if let Ok(requested) = std::env::var("SC_KERNEL_BACKEND") {
        if let Some(backend) = Backend::from_name(&requested) {
            if backend.is_available() {
                return backend;
            }
        }
    }
    best_available_backend()
}

/// The fastest backend this build and CPU support, ignoring overrides.
pub fn best_available_backend() -> Backend {
    *Backend::ALL
        .iter()
        .find(|b| b.is_available())
        .expect("the portable backends are always available")
}

/// The backend every kernel dispatcher currently routes through.
///
/// Selected on first call: `SC_KERNEL_BACKEND` (if set to an available
/// backend name), otherwise the best available. All backends produce
/// bit-identical results, so concurrent reselection is always safe.
pub fn active_backend() -> Backend {
    let value = ACTIVE_BACKEND.load(Ordering::Relaxed);
    if value != BACKEND_UNSET {
        return decode(value);
    }
    let backend = detect_backend();
    ACTIVE_BACKEND.store(encode(backend), Ordering::Relaxed);
    backend
}

/// Forces the active backend, returning `true` if it was applied.
///
/// An unavailable backend (not compiled in, or the CPU lacks the feature)
/// is refused and the active backend is left unchanged. Intended for
/// benchmarks and tests; results are bit-identical either way.
pub fn force_backend(backend: Backend) -> bool {
    if !backend.is_available() {
        return false;
    }
    ACTIVE_BACKEND.store(encode(backend), Ordering::Relaxed);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random u64s for lane material (splitmix64).
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Exercises every trait operation of `W` against the scalar reference
    /// lane-by-lane.
    fn check_backend_ops<W: Word>() {
        let mut state = 0xDEAD_BEEF_u64;
        let mut lanes_a = vec![0u64; W::LANES];
        let mut lanes_b = vec![0u64; W::LANES];
        let mut out = vec![0u64; W::LANES];
        for round in 0..200 {
            for lane in lanes_a.iter_mut() {
                *lane = splitmix(&mut state);
            }
            for lane in lanes_b.iter_mut() {
                *lane = splitmix(&mut state);
            }
            // Mix in edge-case lanes.
            if round % 7 == 0 {
                lanes_a[0] = 0;
                lanes_b[W::LANES - 1] = u64::MAX;
            }
            let a = W::load(&lanes_a);
            let b = W::load(&lanes_b);
            let shift = (round % 63 + 1) as u32;

            type ScalarOp = fn(u64, u64, u32) -> u64;
            let cases: Vec<(&str, W, ScalarOp)> = vec![
                ("and", a.and(b), |x, y, _| x & y),
                ("or", a.or(b), |x, y, _| x | y),
                ("xor", a.xor(b), |x, y, _| x ^ y),
                ("not", a.not(), |x, _, _| !x),
                ("andnot", a.andnot(b), |x, y, _| x & !y),
                ("shr", a.shr(shift), |x, _, n| x >> n),
                ("shl", a.shl(shift), |x, _, n| x << n),
                ("add_i64", a.add_i64(b), |x, y, _| {
                    (x as i64).wrapping_add(y as i64) as u64
                }),
                ("cmp_gt_i64", a.cmp_gt_i64(b), |x, y, _| {
                    if (x as i64) > (y as i64) {
                        u64::MAX
                    } else {
                        0
                    }
                }),
                ("blend", a.blend(b, a.cmp_gt_i64(b)), |x, y, _| {
                    if (x as i64) > (y as i64) {
                        y
                    } else {
                        x
                    }
                }),
            ];
            for (name, wide, reference) in cases {
                wide.store(&mut out);
                for lane in 0..W::LANES {
                    assert_eq!(
                        out[lane],
                        reference(lanes_a[lane], lanes_b[lane], shift),
                        "{name} lane {lane} round {round}"
                    );
                }
            }

            // Popcount accumulation and horizontal sum.
            let acc = a.popcount_accumulate(W::zero());
            acc.store(&mut out);
            let mut expected_total = 0u64;
            for lane in 0..W::LANES {
                let expected = u64::from(lanes_a[lane].count_ones());
                assert_eq!(out[lane], expected, "popcount lane {lane}");
                expected_total += expected;
            }
            assert_eq!(acc.horizontal_sum(), expected_total, "horizontal sum");

            // Zero test, splat, and store/load round trip.
            assert!(!W::splat(1).is_zero());
            assert!(W::zero().is_zero());
            assert_eq!(a.is_zero(), lanes_a.iter().all(|&l| l == 0));
            W::splat_i64(-3).store(&mut out);
            assert!(out.iter().all(|&l| l == (-3i64) as u64));
        }
    }

    #[test]
    fn scalar_backend_ops() {
        check_backend_ops::<u64>();
    }

    #[test]
    fn wide_backend_ops_match_scalar() {
        check_backend_ops::<W4>();
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[test]
    fn avx2_backend_ops_match_scalar() {
        if Backend::Avx2.is_available() {
            check_backend_ops::<WAvx2>();
        }
    }

    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    #[test]
    fn neon_backend_ops_match_scalar() {
        check_backend_ops::<WNeon>();
    }

    #[test]
    fn backend_names_round_trip() {
        for backend in Backend::ALL {
            assert_eq!(Backend::from_name(backend.name()), Some(backend));
        }
        assert_eq!(Backend::from_name(" AVX2 "), Some(Backend::Avx2));
        assert_eq!(Backend::from_name("sse9"), None);
        assert_eq!(Backend::Wide.to_string(), "wide");
    }

    #[test]
    fn portable_backends_are_always_available() {
        assert!(Backend::Scalar.is_available());
        assert!(Backend::Wide.is_available());
        let best = best_available_backend();
        assert!(best.is_available());
    }

    #[test]
    fn force_backend_refuses_unavailable() {
        let before = active_backend();
        assert!(before.is_available());
        // Forcing the portable backends always works; forcing back restores.
        assert!(force_backend(Backend::Scalar));
        assert_eq!(active_backend(), Backend::Scalar);
        assert!(force_backend(Backend::Wide));
        assert_eq!(active_backend(), Backend::Wide);
        #[cfg(not(all(feature = "simd", target_arch = "aarch64")))]
        {
            assert!(!force_backend(Backend::Neon));
            assert_eq!(active_backend(), Backend::Wide);
        }
        assert!(force_backend(before));
    }
}
