//! Random number sources for stochastic number generation.
//!
//! Real SC hardware uses compact pseudo-random sources — typically linear
//! feedback shift registers (LFSRs) — to drive the comparator of a stochastic
//! number generator. The paper's peripheral circuitry follows Kim et al.
//! (ASP-DAC'16), an LFSR-based energy-efficient RNG. This module provides
//! LFSRs of several widths with maximal-length taps, plus a thin adapter so
//! software-quality RNGs from the `rand` crate can be swapped in when the
//! experiment calls for "ideal" randomness.

use serde::{Deserialize, Serialize};

/// A source of pseudo-random machine words used to drive SNG comparators.
pub trait RandomSource {
    /// Returns the next raw sample.
    fn next_u32(&mut self) -> u32;

    /// Returns a sample uniformly distributed in `[0, modulus)`.
    ///
    /// The default implementation uses rejection-free modulo reduction, which
    /// is what cheap SC hardware does (the slight modulo bias is part of the
    /// hardware behaviour being modelled).
    fn next_below(&mut self, modulus: u32) -> u32 {
        debug_assert!(modulus > 0, "modulus must be non-zero");
        self.next_u32() % modulus
    }

    /// Fills `out` with consecutive raw samples, exactly as that many
    /// [`RandomSource::next_u32`] calls would.
    ///
    /// Implementations may batch: the default 32-bit LFSR generates its
    /// bit-sequence through staged GF(2) recurrences and reconstructs the
    /// register states from it, removing the per-sample serial dependency
    /// that dominates selector-driven kernels.
    fn fill_u32(&mut self, out: &mut [u32]) {
        for slot in out.iter_mut() {
            *slot = self.next_u32();
        }
    }
}

/// Maximal-length LFSR widths supported by [`Lfsr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LfsrWidth {
    /// 8-bit register, period 255.
    W8,
    /// 16-bit register, period 65 535.
    W16,
    /// 24-bit register, period ~16.7 M.
    W24,
    /// 32-bit register, period ~4.29 G.
    W32,
}

impl LfsrWidth {
    /// Number of state bits.
    pub fn bits(self) -> u32 {
        match self {
            LfsrWidth::W8 => 8,
            LfsrWidth::W16 => 16,
            LfsrWidth::W24 => 24,
            LfsrWidth::W32 => 32,
        }
    }

    /// Fibonacci-form feedback tap mask (maximal-length polynomials).
    /// Only referenced by tests since `Lfsr::step` switched to explicit
    /// shifted-XOR feedback; kept as the authoritative tap documentation
    /// and the oracle for `step_parity_matches_tap_mask_popcount`.
    #[cfg_attr(not(test), allow(dead_code))]
    fn taps(self) -> u32 {
        match self {
            // x^8 + x^6 + x^5 + x^4 + 1
            LfsrWidth::W8 => 0b1011_1000,
            // x^16 + x^15 + x^13 + x^4 + 1
            LfsrWidth::W16 => 0xD008,
            // x^24 + x^23 + x^22 + x^17 + 1
            LfsrWidth::W24 => 0xE1_0000,
            // x^32 + x^22 + x^2 + x^1 + 1
            LfsrWidth::W32 => 0x8020_0003,
        }
    }

    /// Mask selecting the state bits.
    fn mask(self) -> u32 {
        if self.bits() == 32 {
            u32::MAX
        } else {
            (1u32 << self.bits()) - 1
        }
    }
}

/// A Fibonacci linear feedback shift register.
///
/// The register never enters the all-zeros lock-up state: seeds of zero are
/// remapped to one, matching the reset behaviour of hardware LFSRs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Lfsr {
    state: u32,
    width: LfsrWidth,
}

impl Lfsr {
    /// Creates an LFSR with the given width and seed.
    pub fn new(width: LfsrWidth, seed: u32) -> Self {
        let state = (seed & width.mask()).max(1);
        Self { state, width }
    }

    /// Creates the 32-bit LFSR used as the default hardware RNG model.
    pub fn new_32(seed: u32) -> Self {
        Self::new(LfsrWidth::W32, seed)
    }

    /// Width of the register.
    pub fn width(&self) -> LfsrWidth {
        self.width
    }

    /// Current register contents.
    pub fn state(&self) -> u32 {
        self.state
    }

    /// Overwrites the register contents (used by the word-parallel SNG fill
    /// to resynchronize after generating the same sequence out-of-band).
    pub(crate) fn set_state(&mut self, state: u32) {
        self.state = (state & self.width.mask()).max(1);
    }

    /// Advances the register by one step and returns the new state.
    pub fn step(&mut self) -> u32 {
        // Every maximal-length polynomial used here has exactly four taps,
        // so the feedback parity is three XORs of shifted state copies —
        // cheaper than a (software) popcount of `state & taps` and
        // identical in value.
        let s = self.state;
        let feedback = match self.width {
            // Tap bit positions of the masks in `LfsrWidth::taps`.
            LfsrWidth::W8 => (s >> 3) ^ (s >> 4) ^ (s >> 5) ^ (s >> 7),
            LfsrWidth::W16 => (s >> 3) ^ (s >> 12) ^ (s >> 14) ^ (s >> 15),
            LfsrWidth::W24 => (s >> 16) ^ (s >> 21) ^ (s >> 22) ^ (s >> 23),
            LfsrWidth::W32 => s ^ (s >> 1) ^ (s >> 21) ^ (s >> 31),
        } & 1;
        self.state = ((self.state << 1) | feedback) & self.width.mask();
        if self.state == 0 {
            self.state = 1;
        }
        self.state
    }

    /// The period of a maximal-length register of this width.
    pub fn period(&self) -> u64 {
        (1u64 << self.width.bits()) - 1
    }

    /// Generates `total_bits` sequence bits of the width-32 register through
    /// the staged GF(2) recurrences and resynchronizes the register to the
    /// state after `total_bits` steps.
    ///
    /// Buffer layout on return: 4 bytes of virtual history (the register's
    /// seed bits, oldest first) followed by the generated sequence,
    /// byte-packed LSB-first, plus 16 zero padding bytes so 128-bit window
    /// loads over the sequence stay in bounds. Buffer bit `b` is sequence
    /// bit `c_{b-32}` (negative indices being the seed history); the state
    /// after `s ≥ 1` steps is the 32-bit window at buffer bit `s`, bit
    /// reversed.
    ///
    /// The Fibonacci register with taps `0x8020_0003` inserts the
    /// bit-sequence `c` satisfying `c_n = c_{n-1} ^ c_{n-2} ^ c_{n-22} ^
    /// c_{n-32}` at bit 0. Squaring the characteristic polynomial over GF(2)
    /// scales every lag (`p(D)^{2^k} = p(D^{2^k})`), so after a 96-bit
    /// serial bootstrap the sequence extends *nibble*-wise from bit 96
    /// (`p(D)^4`) and *byte*-wise from bit 224 (`p(D)^8`) at three XORs per
    /// eight register steps; the lag-32 terms reach back into the register's
    /// seed bits, stored as the virtual history.
    ///
    /// Requires `total_bits % 64 == 0` and `total_bits >= 128`; only valid
    /// for [`LfsrWidth::W32`].
    pub(crate) fn w32_sequence_into(&mut self, total_bits: usize, seq: &mut Vec<u8>) {
        debug_assert_eq!(self.width, LfsrWidth::W32);
        debug_assert!(total_bits >= 128 && total_bits.is_multiple_of(64));
        let seq_bytes = total_bits / 8;
        seq.clear();
        seq.resize(4 + seq_bytes + 16, 0);
        seq[0..4].copy_from_slice(&self.state.reverse_bits().to_le_bytes());

        // Serial bootstrap: the first 96 sequence bits in a register-local
        // loop (the nibble recurrence is valid from bit 96 onwards).
        let mut state = self.state;
        let mut low = 0u64;
        for bit in 0..64 {
            state = lfsr32_step(state);
            low |= u64::from(state & 1) << bit;
        }
        seq[4..12].copy_from_slice(&low.to_le_bytes());
        let mut mid = 0u32;
        for bit in 0..32 {
            state = lfsr32_step(state);
            mid |= (state & 1) << bit;
        }
        seq[12..16].copy_from_slice(&mid.to_le_bytes());

        // Nibble-level recurrence (`p(D)^4`: lags 4/8/88/128 bits) extends
        // the sequence from bit 96 to bit 224. Buffer nibble index =
        // sequence nibble index + 8 (the 32 virtual bits); the lag-32-nibble
        // term reaches the virtual seed bits.
        let nibble_end = (32 + total_bits.min(224)) / 4;
        for nk in (32 + 96) / 4..nibble_end {
            let nib = |i: usize| (seq[i / 2] >> (4 * (i & 1))) & 0xF;
            let value = nib(nk - 1) ^ nib(nk - 2) ^ nib(nk - 22) ^ nib(nk - 32);
            seq[nk / 2] |= value << (4 * (nk & 1));
        }

        // Byte-level recurrence (`p(D)^8`: lags 8/16/176/256 bits) from
        // sequence bit 224 (= buffer byte 32) onwards.
        for k in (32 + 224) / 8..4 + seq_bytes {
            seq[k] = seq[k - 1] ^ seq[k - 2] ^ seq[k - 22] ^ seq[k - 32];
        }

        // Resynchronize: the state after `total_bits` steps is the last 32
        // sequence bits in reverse order (state bit j = c_{N-1-j}).
        let last = u32::from_le_bytes(seq[seq_bytes..seq_bytes + 4].try_into().expect("4 bytes"));
        self.set_state(last.reverse_bits());
    }
}

/// One step of the width-32 register as a pure function (the all-zeros
/// lock-up check is provably unreachable for this tap set: the only state
/// that could shift to zero is `0x8000_0000`, whose feedback bit is one).
#[inline]
pub(crate) fn lfsr32_step(state: u32) -> u32 {
    let feedback = (state ^ (state >> 1) ^ (state >> 21) ^ (state >> 31)) & 1;
    (state << 1) | feedback
}

impl RandomSource for Lfsr {
    fn next_u32(&mut self) -> u32 {
        self.step()
    }

    /// Batched draw for the width-32 register: the bit-sequence is produced
    /// by the staged recurrences (no per-sample serial dependency), a
    /// bit-reversed copy is made once, and every sample is then an
    /// independent unaligned 32-bit window load. Sample values and the final
    /// register state are identical to repeated [`Lfsr::step`] calls.
    fn fill_u32(&mut self, out: &mut [u32]) {
        if self.width != LfsrWidth::W32 || out.len() < 128 {
            for slot in out.iter_mut() {
                *slot = self.step();
            }
            return;
        }
        // Per-thread scratch: the sequence and reversed buffers are tiny
        // (~L/8 bytes) but this path runs once per MUX evaluation, so fresh
        // allocations here would undo the arena discipline of the rest of
        // the hot path.
        thread_local! {
            static SCRATCH: std::cell::RefCell<(Vec<u8>, Vec<u8>)> =
                const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
        }
        let batch = out.len() / 64 * 64;
        SCRATCH.with(|cell| {
            let (seq, reversed) = &mut *cell.borrow_mut();
            self.w32_sequence_into(batch, seq);
            // Reverse the buffer bit-wise (reversed bytes in reversed
            // order), so the per-sample bit reversal becomes part of one
            // linear pass: in the reversed buffer, bit `r` is original
            // buffer bit `total_bits - 1 - r`, and the state after `s`
            // steps is the plain 32-bit load at reversed bit offset
            // `total_bits - 32 - s`.
            let buffer_bytes = 4 + batch / 8;
            let total_bits = buffer_bytes * 8;
            reversed.clear();
            reversed.resize(buffer_bytes + 8, 0);
            for (index, &byte) in seq[..buffer_bytes].iter().enumerate() {
                reversed[buffer_bytes - 1 - index] = byte.reverse_bits();
            }
            for (draw, slot) in out[..batch].iter_mut().enumerate() {
                let offset = total_bits - 32 - (draw + 1);
                let byte = offset / 8;
                let shift = (offset % 8) as u32;
                let window =
                    u64::from_le_bytes(reversed[byte..byte + 8].try_into().expect("8 bytes"));
                *slot = (window >> shift) as u32;
            }
        });
        for slot in out[batch..].iter_mut() {
            *slot = self.step();
        }
    }
}

/// Adapter exposing any [`rand::RngCore`] as a [`RandomSource`].
///
/// Used when an experiment wants "ideal" randomness to separate encoding
/// error from correlation error.
#[derive(Debug, Clone)]
pub struct SoftwareRng<R> {
    inner: R,
}

impl<R: rand::RngCore> SoftwareRng<R> {
    /// Wraps a `rand` RNG.
    pub fn new(inner: R) -> Self {
        Self { inner }
    }

    /// Consumes the adapter and returns the wrapped RNG.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: rand::RngCore> RandomSource for SoftwareRng<R> {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn step_parity_matches_tap_mask_popcount() {
        // The shifted-XOR feedback must equal the popcount parity of
        // `state & taps` for every width (guards the tap positions).
        for width in [
            LfsrWidth::W8,
            LfsrWidth::W16,
            LfsrWidth::W24,
            LfsrWidth::W32,
        ] {
            let mut lfsr = Lfsr::new(width, 0xBEEF_CAFE);
            for _ in 0..4096 {
                let state = lfsr.state();
                let expected = (state & width.taps()).count_ones() & 1;
                let next = lfsr.step();
                let inserted = next & 1;
                assert_eq!(inserted, expected, "width {width:?} state {state:#x}");
            }
        }
    }

    #[test]
    fn lfsr_zero_seed_is_remapped() {
        let lfsr = Lfsr::new(LfsrWidth::W8, 0);
        assert_ne!(lfsr.state(), 0);
    }

    #[test]
    fn lfsr8_is_maximal_length() {
        let mut lfsr = Lfsr::new(LfsrWidth::W8, 1);
        let mut seen = HashSet::new();
        for _ in 0..255 {
            assert!(
                seen.insert(lfsr.step()),
                "state repeated before full period"
            );
        }
        assert_eq!(seen.len(), 255);
        assert!(!seen.contains(&0), "all-zeros state must never occur");
    }

    #[test]
    fn lfsr16_has_long_period() {
        let mut lfsr = Lfsr::new(LfsrWidth::W16, 0xACE1);
        let first = lfsr.state();
        let mut period = 0u64;
        loop {
            lfsr.step();
            period += 1;
            if lfsr.state() == first || period > 70_000 {
                break;
            }
        }
        assert_eq!(period, 65_535);
    }

    #[test]
    fn lfsr_states_stay_within_mask() {
        let mut lfsr = Lfsr::new(LfsrWidth::W24, 12345);
        for _ in 0..1000 {
            assert!(lfsr.step() <= LfsrWidth::W24.mask());
        }
    }

    #[test]
    fn lfsr_is_deterministic_for_equal_seeds() {
        let mut a = Lfsr::new_32(42);
        let mut b = Lfsr::new_32(42);
        for _ in 0..100 {
            assert_eq!(a.step(), b.step());
        }
    }

    #[test]
    fn batched_fill_matches_serial_draws_and_state() {
        // The batched W32 fill must produce exactly the samples (and final
        // register state) of repeated `next_u32` calls, for aligned and
        // unaligned lengths on both sides of the batching threshold.
        for count in [1usize, 64, 127, 128, 129, 191, 192, 200, 1024, 1037] {
            let mut serial = Lfsr::new_32(0xC0FFEE);
            let mut batched = Lfsr::new_32(0xC0FFEE);
            let expected: Vec<u32> = (0..count).map(|_| serial.next_u32()).collect();
            let mut out = vec![0u32; count];
            batched.fill_u32(&mut out);
            assert_eq!(out, expected, "count {count}");
            assert_eq!(serial.state(), batched.state(), "state after {count}");
            // Subsequent draws continue identically.
            assert_eq!(serial.next_u32(), batched.next_u32());
        }
        // Non-W32 widths use the serial path.
        let mut serial = Lfsr::new(LfsrWidth::W16, 0xACE1);
        let mut batched = Lfsr::new(LfsrWidth::W16, 0xACE1);
        let expected: Vec<u32> = (0..256).map(|_| serial.next_u32()).collect();
        let mut out = vec![0u32; 256];
        batched.fill_u32(&mut out);
        assert_eq!(out, expected);
    }

    #[test]
    fn next_below_respects_modulus() {
        let mut lfsr = Lfsr::new_32(7);
        for _ in 0..1000 {
            assert!(lfsr.next_below(10) < 10);
        }
    }

    #[test]
    fn lfsr_bits_are_roughly_balanced() {
        let mut lfsr = Lfsr::new_32(0xDEADBEEF);
        let samples = 4096;
        let ones: u32 = (0..samples).map(|_| lfsr.step() & 1).sum();
        let ratio = ones as f64 / samples as f64;
        assert!(
            (ratio - 0.5).abs() < 0.05,
            "LSB density {ratio} too far from 0.5"
        );
    }

    #[test]
    fn software_rng_adapter_works() {
        use rand::SeedableRng;
        let mut rng = SoftwareRng::new(rand::rngs::StdRng::seed_from_u64(1));
        let a = rng.next_u32();
        let b = rng.next_u32();
        assert_ne!(a, b);
        let _inner = rng.into_inner();
    }
}
