//! Random number sources for stochastic number generation.
//!
//! Real SC hardware uses compact pseudo-random sources — typically linear
//! feedback shift registers (LFSRs) — to drive the comparator of a stochastic
//! number generator. The paper's peripheral circuitry follows Kim et al.
//! (ASP-DAC'16), an LFSR-based energy-efficient RNG. This module provides
//! LFSRs of several widths with maximal-length taps, plus a thin adapter so
//! software-quality RNGs from the `rand` crate can be swapped in when the
//! experiment calls for "ideal" randomness.

use serde::{Deserialize, Serialize};

/// A source of pseudo-random machine words used to drive SNG comparators.
pub trait RandomSource {
    /// Returns the next raw sample.
    fn next_u32(&mut self) -> u32;

    /// Returns a sample uniformly distributed in `[0, modulus)`.
    ///
    /// The default implementation uses rejection-free modulo reduction, which
    /// is what cheap SC hardware does (the slight modulo bias is part of the
    /// hardware behaviour being modelled).
    fn next_below(&mut self, modulus: u32) -> u32 {
        debug_assert!(modulus > 0, "modulus must be non-zero");
        self.next_u32() % modulus
    }
}

/// Maximal-length LFSR widths supported by [`Lfsr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LfsrWidth {
    /// 8-bit register, period 255.
    W8,
    /// 16-bit register, period 65 535.
    W16,
    /// 24-bit register, period ~16.7 M.
    W24,
    /// 32-bit register, period ~4.29 G.
    W32,
}

impl LfsrWidth {
    /// Number of state bits.
    pub fn bits(self) -> u32 {
        match self {
            LfsrWidth::W8 => 8,
            LfsrWidth::W16 => 16,
            LfsrWidth::W24 => 24,
            LfsrWidth::W32 => 32,
        }
    }

    /// Fibonacci-form feedback tap mask (maximal-length polynomials).
    /// Only referenced by tests since `Lfsr::step` switched to explicit
    /// shifted-XOR feedback; kept as the authoritative tap documentation
    /// and the oracle for `step_parity_matches_tap_mask_popcount`.
    #[cfg_attr(not(test), allow(dead_code))]
    fn taps(self) -> u32 {
        match self {
            // x^8 + x^6 + x^5 + x^4 + 1
            LfsrWidth::W8 => 0b1011_1000,
            // x^16 + x^15 + x^13 + x^4 + 1
            LfsrWidth::W16 => 0xD008,
            // x^24 + x^23 + x^22 + x^17 + 1
            LfsrWidth::W24 => 0xE1_0000,
            // x^32 + x^22 + x^2 + x^1 + 1
            LfsrWidth::W32 => 0x8020_0003,
        }
    }

    /// Mask selecting the state bits.
    fn mask(self) -> u32 {
        if self.bits() == 32 {
            u32::MAX
        } else {
            (1u32 << self.bits()) - 1
        }
    }
}

/// A Fibonacci linear feedback shift register.
///
/// The register never enters the all-zeros lock-up state: seeds of zero are
/// remapped to one, matching the reset behaviour of hardware LFSRs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Lfsr {
    state: u32,
    width: LfsrWidth,
}

impl Lfsr {
    /// Creates an LFSR with the given width and seed.
    pub fn new(width: LfsrWidth, seed: u32) -> Self {
        let state = (seed & width.mask()).max(1);
        Self { state, width }
    }

    /// Creates the 32-bit LFSR used as the default hardware RNG model.
    pub fn new_32(seed: u32) -> Self {
        Self::new(LfsrWidth::W32, seed)
    }

    /// Width of the register.
    pub fn width(&self) -> LfsrWidth {
        self.width
    }

    /// Current register contents.
    pub fn state(&self) -> u32 {
        self.state
    }

    /// Overwrites the register contents (used by the word-parallel SNG fill
    /// to resynchronize after generating the same sequence out-of-band).
    pub(crate) fn set_state(&mut self, state: u32) {
        self.state = (state & self.width.mask()).max(1);
    }

    /// Advances the register by one step and returns the new state.
    pub fn step(&mut self) -> u32 {
        // Every maximal-length polynomial used here has exactly four taps,
        // so the feedback parity is three XORs of shifted state copies —
        // cheaper than a (software) popcount of `state & taps` and
        // identical in value.
        let s = self.state;
        let feedback = match self.width {
            // Tap bit positions of the masks in `LfsrWidth::taps`.
            LfsrWidth::W8 => (s >> 3) ^ (s >> 4) ^ (s >> 5) ^ (s >> 7),
            LfsrWidth::W16 => (s >> 3) ^ (s >> 12) ^ (s >> 14) ^ (s >> 15),
            LfsrWidth::W24 => (s >> 16) ^ (s >> 21) ^ (s >> 22) ^ (s >> 23),
            LfsrWidth::W32 => s ^ (s >> 1) ^ (s >> 21) ^ (s >> 31),
        } & 1;
        self.state = ((self.state << 1) | feedback) & self.width.mask();
        if self.state == 0 {
            self.state = 1;
        }
        self.state
    }

    /// The period of a maximal-length register of this width.
    pub fn period(&self) -> u64 {
        (1u64 << self.width.bits()) - 1
    }
}

impl RandomSource for Lfsr {
    fn next_u32(&mut self) -> u32 {
        self.step()
    }
}

/// Adapter exposing any [`rand::RngCore`] as a [`RandomSource`].
///
/// Used when an experiment wants "ideal" randomness to separate encoding
/// error from correlation error.
#[derive(Debug, Clone)]
pub struct SoftwareRng<R> {
    inner: R,
}

impl<R: rand::RngCore> SoftwareRng<R> {
    /// Wraps a `rand` RNG.
    pub fn new(inner: R) -> Self {
        Self { inner }
    }

    /// Consumes the adapter and returns the wrapped RNG.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: rand::RngCore> RandomSource for SoftwareRng<R> {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn step_parity_matches_tap_mask_popcount() {
        // The shifted-XOR feedback must equal the popcount parity of
        // `state & taps` for every width (guards the tap positions).
        for width in [
            LfsrWidth::W8,
            LfsrWidth::W16,
            LfsrWidth::W24,
            LfsrWidth::W32,
        ] {
            let mut lfsr = Lfsr::new(width, 0xBEEF_CAFE);
            for _ in 0..4096 {
                let state = lfsr.state();
                let expected = (state & width.taps()).count_ones() & 1;
                let next = lfsr.step();
                let inserted = next & 1;
                assert_eq!(inserted, expected, "width {width:?} state {state:#x}");
            }
        }
    }

    #[test]
    fn lfsr_zero_seed_is_remapped() {
        let lfsr = Lfsr::new(LfsrWidth::W8, 0);
        assert_ne!(lfsr.state(), 0);
    }

    #[test]
    fn lfsr8_is_maximal_length() {
        let mut lfsr = Lfsr::new(LfsrWidth::W8, 1);
        let mut seen = HashSet::new();
        for _ in 0..255 {
            assert!(
                seen.insert(lfsr.step()),
                "state repeated before full period"
            );
        }
        assert_eq!(seen.len(), 255);
        assert!(!seen.contains(&0), "all-zeros state must never occur");
    }

    #[test]
    fn lfsr16_has_long_period() {
        let mut lfsr = Lfsr::new(LfsrWidth::W16, 0xACE1);
        let first = lfsr.state();
        let mut period = 0u64;
        loop {
            lfsr.step();
            period += 1;
            if lfsr.state() == first || period > 70_000 {
                break;
            }
        }
        assert_eq!(period, 65_535);
    }

    #[test]
    fn lfsr_states_stay_within_mask() {
        let mut lfsr = Lfsr::new(LfsrWidth::W24, 12345);
        for _ in 0..1000 {
            assert!(lfsr.step() <= LfsrWidth::W24.mask());
        }
    }

    #[test]
    fn lfsr_is_deterministic_for_equal_seeds() {
        let mut a = Lfsr::new_32(42);
        let mut b = Lfsr::new_32(42);
        for _ in 0..100 {
            assert_eq!(a.step(), b.step());
        }
    }

    #[test]
    fn next_below_respects_modulus() {
        let mut lfsr = Lfsr::new_32(7);
        for _ in 0..1000 {
            assert!(lfsr.next_below(10) < 10);
        }
    }

    #[test]
    fn lfsr_bits_are_roughly_balanced() {
        let mut lfsr = Lfsr::new_32(0xDEADBEEF);
        let samples = 4096;
        let ones: u32 = (0..samples).map(|_| lfsr.step() & 1).sum();
        let ratio = ones as f64 / samples as f64;
        assert!(
            (ratio - 0.5).abs() < 0.05,
            "LSB density {ratio} too far from 0.5"
        );
    }

    #[test]
    fn software_rng_adapter_works() {
        use rand::SeedableRng;
        let mut rng = SoftwareRng::new(rand::rngs::StdRng::seed_from_u64(1));
        let a = rng.next_u32();
        let b = rng.next_u32();
        assert_ne!(a, b);
        let _inner = rng.into_inner();
    }
}
