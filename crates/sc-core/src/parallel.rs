//! Deterministic scoped-thread fan-out.
//!
//! The SC-DCNN hardware instantiates thousands of independent feature
//! extraction blocks; the simulator mirrors that with a data-parallel map
//! across independent work items (SNG lanes, receptive fields, Monte-Carlo
//! trials, design-space points). Two properties are guaranteed:
//!
//! 1. **Bit-identical results regardless of thread count.** Work is
//!    partitioned by *index*, each item derives all of its randomness from
//!    its own index (the `SngBank` splitmix scheme), and results are written
//!    into the output slot matching the input index. Running with
//!    `SC_THREADS=1`, with the `parallel` feature disabled, or on a 128-core
//!    box produces exactly the same numbers.
//! 2. **No dependency beyond `std`.** The fan-out uses `std::thread::scope`;
//!    this is the crate's stand-in for a rayon parallel iterator in an
//!    offline build environment (see `vendor/README.md`).
//!
//! The `parallel` cargo feature (default-on) gates the threading; when
//! disabled every function here degrades to the serial loop. The
//! `SC_THREADS` environment variable caps the worker count at runtime.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Runtime override installed by [`set_thread_limit`]; zero means "none".
static THREAD_LIMIT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while executing inside a fan-out worker: nested `parallel_map`
    /// calls then run serially, so stacked parallel layers (design points →
    /// Monte-Carlo trials → receptive fields) fan out only at the outermost
    /// level instead of multiplying live thread counts.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Overrides the worker-thread cap at runtime (`0` clears the override).
///
/// Unlike an environment variable this is an atomic, so tests can flip it
/// without unsynchronized `setenv` calls. Applies process-wide.
pub fn set_thread_limit(limit: usize) {
    THREAD_LIMIT.store(limit, Ordering::Relaxed);
}

/// Maximum number of worker threads to use.
///
/// Honors, in order: the `parallel` feature (off → 1), a nested fan-out
/// (worker context → 1), [`set_thread_limit`], the `SC_THREADS` environment
/// variable (read once per process; values `0` and `1` both mean "serial"),
/// then the machine's available parallelism. Always at least 1.
pub fn max_threads() -> usize {
    if !cfg!(feature = "parallel") || IN_WORKER.with(Cell::get) {
        return 1;
    }
    let limit = THREAD_LIMIT.load(Ordering::Relaxed);
    if limit != 0 {
        return limit;
    }
    static ENV_THREADS: OnceLock<usize> = OnceLock::new();
    *ENV_THREADS.get_or_init(|| match std::env::var("SC_THREADS") {
        Ok(value) => value.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    })
}

/// Maps `f` over `items`, in parallel when worthwhile, preserving order.
///
/// `f` receives `(index, &item)` so callers can derive per-item seeds from
/// the index. The output at position `i` is always `f(i, &items[i])`,
/// independent of thread schedule.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with(items, || (), |(), index, item| f(index, item))
}

/// Like [`parallel_map`], but each worker thread gets its own scratch state
/// built by `init` (e.g. a [`crate::arena::StreamArena`]), so buffer reuse
/// survives the fan-out. The serial path builds the state exactly once.
pub fn parallel_map_with<T, S, R, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    parallel_map_with_state(items, init, f).0
}

/// Like [`parallel_map_with`], but hands the per-worker states back to the
/// caller once the fan-out completes, so expensive warm state (a stream
/// cache, a pooled arena) can be reused across fan-outs instead of rebuilt
/// every call. The results vector is input-ordered as always; the states
/// vector has one entry per worker that ran, in no particular order (an
/// empty item slice runs no worker and returns no state).
pub fn parallel_map_with_state<T, S, R, I, F>(items: &[T], init: I, f: F) -> (Vec<R>, Vec<S>)
where
    T: Sync,
    R: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let threads = max_threads().min(items.len());
    if threads <= 1 {
        let mut state = init();
        let results = items
            .iter()
            .enumerate()
            .map(|(i, item)| f(&mut state, i, item))
            .collect();
        return (results, vec![state]);
    }
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let states = std::sync::Mutex::new(Vec::with_capacity(threads));
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest: &mut [Option<R>] = &mut results;
        let mut start = 0usize;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let slice = &items[start..start + take];
            let (f, init, states) = (&f, &init, &states);
            scope.spawn(move || {
                IN_WORKER.with(|flag| flag.set(true));
                let mut state = init();
                for (offset, (slot, item)) in head.iter_mut().zip(slice).enumerate() {
                    *slot = Some(f(&mut state, start + offset, item));
                }
                states.lock().expect("state collector").push(state);
            });
            start += take;
        }
    });
    let results = results
        .into_iter()
        .map(|r| r.expect("worker filled every output slot"))
        .collect();
    (results, states.into_inner().expect("state collector"))
}

/// Maps `f` over the index range `0..count` in parallel, preserving order.
///
/// Convenience for Monte-Carlo style loops where the "item" is just the
/// trial index.
pub fn parallel_map_range<R, F>(count: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..count).collect();
    parallel_map(&indices, |_, &i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled = parallel_map(&items, |i, &item| {
            assert_eq!(i, item);
            item * 2
        });
        assert_eq!(doubled, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_serial_map_exactly() {
        let items: Vec<u64> = (0..257).collect();
        let f = |i: usize, &x: &u64| x.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64);
        let parallel = parallel_map(&items, f);
        let serial: Vec<u64> = items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn handles_empty_and_single_item() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn range_variant_matches() {
        assert_eq!(parallel_map_range(5, |i| i * i), vec![0, 1, 4, 9, 16]);
        assert!(parallel_map_range(0, |i| i).is_empty());
    }

    #[test]
    fn per_worker_state_is_reused_serially() {
        // With one thread the state must be built exactly once.
        set_thread_limit(1);
        let items = [1u32, 2, 3];
        let out = parallel_map_with(&items, Vec::<u32>::new, |scratch, _, &item| {
            scratch.push(item);
            scratch.len()
        });
        set_thread_limit(0);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn state_variant_returns_every_worker_state() {
        for limit in [1usize, 4] {
            set_thread_limit(limit);
            let items: Vec<u32> = (0..9).collect();
            let (results, states) =
                parallel_map_with_state(&items, Vec::<u32>::new, |scratch, _, &item| {
                    scratch.push(item);
                    item * 2
                });
            set_thread_limit(0);
            assert_eq!(results, (0..9).map(|i| i * 2).collect::<Vec<_>>());
            // Every item landed in exactly one returned state.
            let mut seen: Vec<u32> = states.into_iter().flatten().collect();
            seen.sort_unstable();
            assert_eq!(seen, items, "thread limit {limit}");
        }
        let empty: Vec<u32> = Vec::new();
        let (results, states) = parallel_map_with_state(&empty, || 1u8, |_, _, &x| x);
        assert!(results.is_empty());
        assert!(states.is_empty());
    }

    #[test]
    fn nested_fan_out_runs_serially_in_workers() {
        set_thread_limit(4);
        let outer: Vec<usize> = (0..8).collect();
        let nested_threads = parallel_map(&outer, |_, _| {
            // Inside a worker the nested call must degrade to serial.
            max_threads()
        });
        set_thread_limit(0);
        // Either the outer map ran serially (single-core machine) or every
        // worker saw a nested budget of one thread.
        assert!(nested_threads.iter().all(|&n| n == 1 || outer.len() == 1));
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }
}
