//! Packed stochastic bit-streams.
//!
//! A [`BitStream`] stores its bits packed into `u64` words so that logical
//! operations (AND, OR, XNOR, …) and population counts run 64 bits at a time.
//! The length of a stream is tracked separately from its storage so streams
//! whose length is not a multiple of 64 behave correctly: bits beyond the
//! logical length are always kept at zero.

use crate::error::ScError;
use crate::word::{dispatch_word_kernel, Word};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not};

/// Sum of population counts over a word buffer, generic over the kernel
/// backend. Lane accumulators stay vector-shaped until one final horizontal
/// reduction; integer addition is associative, so every backend returns the
/// exact same total.
#[inline(always)]
fn popcount_words_impl<W: Word>(words: &[u64]) -> u64 {
    let mut acc = W::zero();
    let mut chunks = words.chunks_exact(W::LANES);
    for chunk in &mut chunks {
        acc = W::load(chunk).popcount_accumulate(acc);
    }
    let mut total = acc.horizontal_sum();
    for &w in chunks.remainder() {
        total += u64::from(w.count_ones());
    }
    total
}

/// Fused AND + popcount over paired word buffers (the unipolar
/// multiplier-accumulator inner loop), generic over the kernel backend.
#[inline(always)]
fn and_popcount_impl<W: Word>(a: &[u64], b: &[u64]) -> u64 {
    let mut acc = W::zero();
    let mut a_chunks = a.chunks_exact(W::LANES);
    let mut b_chunks = b.chunks_exact(W::LANES);
    for (ca, cb) in (&mut a_chunks).zip(&mut b_chunks) {
        acc = W::load(ca).and(W::load(cb)).popcount_accumulate(acc);
    }
    let mut total = acc.horizontal_sum();
    for (&wa, &wb) in a_chunks.remainder().iter().zip(b_chunks.remainder()) {
        total += u64::from((wa & wb).count_ones());
    }
    total
}

/// Fused XOR + popcount over paired word buffers (the bipolar
/// multiplier-accumulator inner loop counts *agreements* as
/// `len - xor_popcount`), generic over the kernel backend.
#[inline(always)]
fn xor_popcount_impl<W: Word>(a: &[u64], b: &[u64]) -> u64 {
    let mut acc = W::zero();
    let mut a_chunks = a.chunks_exact(W::LANES);
    let mut b_chunks = b.chunks_exact(W::LANES);
    for (ca, cb) in (&mut a_chunks).zip(&mut b_chunks) {
        acc = W::load(ca).xor(W::load(cb)).popcount_accumulate(acc);
    }
    let mut total = acc.horizontal_sum();
    for (&wa, &wb) in a_chunks.remainder().iter().zip(b_chunks.remainder()) {
        total += u64::from((wa ^ wb).count_ones());
    }
    total
}

/// Concrete `#[target_feature]` entry points for the popcount kernels; see
/// the dispatch macro in [`crate::word`] for why these exist.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod popcount_avx2 {
    use super::*;
    use crate::word::WAvx2;

    /// # Safety
    ///
    /// The CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn popcount_words_avx2(words: &[u64]) -> u64 {
        popcount_words_impl::<WAvx2>(words)
    }

    /// # Safety
    ///
    /// The CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn and_popcount_avx2(a: &[u64], b: &[u64]) -> u64 {
        and_popcount_impl::<WAvx2>(a, b)
    }

    /// # Safety
    ///
    /// The CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn xor_popcount_avx2(a: &[u64], b: &[u64]) -> u64 {
        xor_popcount_impl::<WAvx2>(a, b)
    }
}
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
use popcount_avx2::{and_popcount_avx2, popcount_words_avx2, xor_popcount_avx2};

/// Backend-dispatched sum of population counts over a word buffer.
pub(crate) fn popcount_words(words: &[u64]) -> u64 {
    dispatch_word_kernel!(popcount_words_impl, popcount_words_avx2, (words))
}

/// Backend-dispatched fused AND + popcount over paired word buffers.
fn and_popcount_words(a: &[u64], b: &[u64]) -> u64 {
    dispatch_word_kernel!(and_popcount_impl, and_popcount_avx2, (a, b))
}

/// Backend-dispatched fused XOR + popcount over paired word buffers.
fn xor_popcount_words(a: &[u64], b: &[u64]) -> u64 {
    dispatch_word_kernel!(xor_popcount_impl, xor_popcount_avx2, (a, b))
}

/// A validated stochastic bit-stream length.
///
/// The paper sweeps lengths between 128 and 8192 bits; any non-zero length is
/// accepted here. Wrapping the length in a newtype keeps call-sites explicit
/// about which integer is the stream length versus e.g. the input size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StreamLength(usize);

impl StreamLength {
    /// Creates a stream length.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero; use [`StreamLength::try_new`] for a fallible
    /// constructor.
    pub fn new(bits: usize) -> Self {
        Self::try_new(bits).expect("stream length must be non-zero")
    }

    /// Fallible constructor returning an error for a zero length.
    pub fn try_new(bits: usize) -> Result<Self, ScError> {
        if bits == 0 {
            Err(ScError::InvalidLength(bits))
        } else {
            Ok(Self(bits))
        }
    }

    /// The number of bits in the stream.
    pub fn bits(self) -> usize {
        self.0
    }

    /// The number of 64-bit words needed to store the stream.
    pub fn words(self) -> usize {
        self.0.div_ceil(64)
    }

    /// Halves the length, flooring at one bit (used by the bit-stream-length
    /// reduction loop of the Table 6 optimization procedure).
    pub fn halved(self) -> Self {
        Self((self.0 / 2).max(1))
    }
}

impl fmt::Display for StreamLength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} bits", self.0)
    }
}

impl From<StreamLength> for usize {
    fn from(value: StreamLength) -> Self {
        value.0
    }
}

impl TryFrom<usize> for StreamLength {
    type Error = ScError;

    fn try_from(value: usize) -> Result<Self, Self::Error> {
        Self::try_new(value)
    }
}

/// A stochastic bit-stream packed into 64-bit words.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitStream {
    words: Vec<u64>,
    len: usize,
}

impl BitStream {
    /// Creates an all-zeros stream of the given length.
    pub fn zeros(len: StreamLength) -> Self {
        Self {
            words: vec![0; len.words()],
            len: len.bits(),
        }
    }

    /// Creates an all-ones stream of the given length.
    pub fn ones(len: StreamLength) -> Self {
        let mut stream = Self::zeros(len);
        for word in &mut stream.words {
            *word = u64::MAX;
        }
        stream.mask_tail();
        stream
    }

    /// Builds a stream from an iterator of booleans.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidLength`] if the iterator is empty.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Result<Self, ScError> {
        let mut words = Vec::new();
        let mut len = 0usize;
        let mut current = 0u64;
        for (i, bit) in bits.into_iter().enumerate() {
            let offset = i % 64;
            if offset == 0 && i != 0 {
                words.push(current);
                current = 0;
            }
            if bit {
                current |= 1u64 << offset;
            }
            len = i + 1;
        }
        if len == 0 {
            return Err(ScError::InvalidLength(0));
        }
        words.push(current);
        Ok(Self { words, len })
    }

    /// Parses a stream from a string of `'0'` / `'1'` characters.
    ///
    /// Any other character is rejected. This is mainly useful in tests and
    /// documentation examples.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParameter`] for non-binary characters and
    /// [`ScError::InvalidLength`] for the empty string.
    pub fn from_binary_str(text: &str) -> Result<Self, ScError> {
        let mut bits = Vec::with_capacity(text.len());
        for ch in text.chars() {
            match ch {
                '0' => bits.push(false),
                '1' => bits.push(true),
                other => {
                    return Err(ScError::InvalidParameter {
                        name: "binary string",
                        message: format!("unexpected character {other:?}"),
                    })
                }
            }
        }
        Self::from_bits(bits)
    }

    /// Number of bits in the stream.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the stream has zero length (never true for constructed streams).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The stream length as a [`StreamLength`].
    pub fn stream_length(&self) -> StreamLength {
        StreamLength(self.len)
    }

    /// Returns the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range for stream of {}",
            self.len
        );
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Sets the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range for stream of {}",
            self.len
        );
        let word = &mut self.words[index / 64];
        let mask = 1u64 << (index % 64);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Number of ones in the stream.
    pub fn count_ones(&self) -> usize {
        popcount_words(&self.words) as usize
    }

    /// Number of zeros in the stream.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Probability of a one, i.e. the unipolar value of the stream.
    pub fn unipolar_value(&self) -> f64 {
        self.count_ones() as f64 / self.len as f64
    }

    /// Bipolar value of the stream: `2p − 1` where `p` is the density of ones.
    pub fn bipolar_value(&self) -> f64 {
        2.0 * self.unipolar_value() - 1.0
    }

    /// Iterator over the bits of the stream, in stream order.
    pub fn iter(&self) -> Bits<'_> {
        Bits {
            stream: self,
            index: 0,
        }
    }

    /// Access to the packed words (trailing bits beyond `len` are zero).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the packed words for word-parallel fills (used by
    /// the SNG fill paths and external word-level kernels such as the
    /// serving engine's benchmarks).
    ///
    /// Callers must keep bits beyond the logical length at zero: every
    /// counting and comparison operation assumes a zeroed tail.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Builds a stream directly from packed words; the caller guarantees
    /// `words.len() == len.div_ceil(64)`. The tail is re-masked defensively.
    pub(crate) fn from_raw_words(words: Vec<u64>, len: usize) -> Self {
        debug_assert_eq!(words.len(), len.div_ceil(64));
        let mut stream = Self { words, len };
        stream.mask_tail();
        stream
    }

    /// Consumes the stream and returns its word buffer (for arena reuse).
    pub(crate) fn into_raw_words(self) -> Vec<u64> {
        self.words
    }

    /// Whether no bit beyond the logical length is set (the invariant every
    /// mutation upholds; checked by the arena before pooling a buffer).
    pub(crate) fn tail_is_masked(&self) -> bool {
        let rem = self.len % 64;
        rem == 0
            || self
                .words
                .last()
                .is_none_or(|last| last & !((1u64 << rem) - 1) == 0)
    }

    /// Splits the stream into contiguous segments of `segment_len` bits.
    ///
    /// The final segment may be shorter if the length does not divide evenly.
    /// Used by the hardware-oriented max-pooling block, which operates on
    /// bit-stream segments.
    ///
    /// # Panics
    ///
    /// Panics if `segment_len` is zero.
    pub fn segments(&self, segment_len: usize) -> Vec<BitStream> {
        assert!(segment_len > 0, "segment length must be non-zero");
        let mut out = Vec::with_capacity(self.len.div_ceil(segment_len));
        let mut start = 0;
        while start < self.len {
            let end = (start + segment_len).min(self.len);
            out.push(self.slice_range(start, end));
            start = end;
        }
        out
    }

    /// Extracts the bits of the half-open range `[start, end)` as a new
    /// stream, shifting word-by-word rather than bit-by-bit.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, reversed, or out of bounds.
    pub fn slice_range(&self, start: usize, end: usize) -> BitStream {
        assert!(
            start < end && end <= self.len,
            "invalid slice range {start}..{end} for stream of {}",
            self.len
        );
        let out_len = end - start;
        let mut words = vec![0u64; out_len.div_ceil(64)];
        let shift = start % 64;
        let base = start / 64;
        for (i, word) in words.iter_mut().enumerate() {
            let lo = self.words[base + i] >> shift;
            let hi = if shift > 0 && base + i + 1 < self.words.len() {
                self.words[base + i + 1] << (64 - shift)
            } else {
                0
            };
            *word = lo | hi;
        }
        let mut out = BitStream {
            words,
            len: out_len,
        };
        out.mask_tail();
        out
    }

    /// Counts ones within the half-open bit range `[start, end)`.
    ///
    /// Runs at word granularity: interior words use a single popcount, and
    /// only the two boundary words are masked.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn count_ones_in_range(&self, start: usize, end: usize) -> usize {
        assert!(
            start <= end && end <= self.len,
            "invalid range {start}..{end}"
        );
        if start == end {
            return 0;
        }
        let (start_word, start_bit) = (start / 64, start % 64);
        let (end_word, end_bit) = (end / 64, end % 64);
        if start_word == end_word {
            // Both endpoints inside one word: end_bit > start_bit >= 0 and
            // end_bit - start_bit < 64, so the mask shift cannot overflow.
            let mask = ((1u64 << (end_bit - start_bit)) - 1) << start_bit;
            return (self.words[start_word] & mask).count_ones() as usize;
        }
        let mut total = (self.words[start_word] >> start_bit).count_ones() as usize;
        for &word in &self.words[start_word + 1..end_word] {
            total += word.count_ones() as usize;
        }
        if end_bit != 0 {
            total += (self.words[end_word] & ((1u64 << end_bit) - 1)).count_ones() as usize;
        }
        total
    }

    /// Overwrites the bits of `[start, end)` with the same range of `src`,
    /// leaving all other bits untouched. Used by the hardware-oriented max
    /// pooling block to forward the selected lane's segment word-by-word.
    ///
    /// # Panics
    ///
    /// Panics if the streams differ in length or the range is invalid.
    pub fn copy_range_from(&mut self, src: &BitStream, start: usize, end: usize) {
        assert_eq!(
            self.len, src.len,
            "bit-stream length mismatch: {} vs {}",
            self.len, src.len
        );
        assert!(
            start <= end && end <= self.len,
            "invalid range {start}..{end}"
        );
        if start == end {
            return;
        }
        let start_word = start / 64;
        let end_word = (end - 1) / 64;
        for w in start_word..=end_word {
            let mut mask = u64::MAX;
            if w == start_word {
                mask &= u64::MAX << (start % 64);
            }
            if w == end_word {
                let end_bit = end - w * 64;
                if end_bit < 64 {
                    mask &= (1u64 << end_bit) - 1;
                }
            }
            self.words[w] = (self.words[w] & !mask) | (src.words[w] & mask);
        }
    }

    /// Fused AND + popcount: the number of cycles where both streams are one,
    /// without materializing the product stream. This is the unipolar
    /// multiplier-accumulator kernel.
    ///
    /// # Panics
    ///
    /// Panics if the streams differ in length.
    pub fn and_count(&self, other: &BitStream) -> usize {
        assert_eq!(
            self.len, other.len,
            "bit-stream length mismatch: {} vs {}",
            self.len, other.len
        );
        and_popcount_words(&self.words, &other.words) as usize
    }

    /// Fused XNOR + popcount: the number of cycles where the streams agree,
    /// without materializing the product stream. This is the bipolar
    /// multiplier-accumulator kernel: for independent bipolar streams `a`
    /// and `b`, `2 * xnor_count / len - 1 ≈ a * b`.
    ///
    /// # Panics
    ///
    /// Panics if the streams differ in length.
    pub fn xnor_count(&self, other: &BitStream) -> usize {
        assert_eq!(
            self.len, other.len,
            "bit-stream length mismatch: {} vs {}",
            self.len, other.len
        );
        // XNOR turns the (zero) tail bits into ones, so count XOR instead
        // and subtract: |XNOR| = len - |XOR|, and XOR keeps the tail zeroed.
        self.len - xor_popcount_words(&self.words, &other.words) as usize
    }

    /// In-place OR into `acc`: `acc |= self`, allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if the streams differ in length.
    pub fn or_into(&self, acc: &mut BitStream) {
        *acc |= self;
    }

    /// In-place XNOR with `other` (the bipolar multiplier), allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if the streams differ in length.
    pub fn xnor_assign(&mut self, other: &BitStream) {
        assert_eq!(
            self.len, other.len,
            "bit-stream length mismatch: {} vs {}",
            self.len, other.len
        );
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            *a = !(*a ^ b);
        }
        self.mask_tail();
    }

    /// Concatenates two streams.
    pub fn concat(&self, other: &BitStream) -> BitStream {
        let bits: Vec<bool> = self.iter().chain(other.iter()).collect();
        BitStream::from_bits(bits).expect("concatenation of non-empty streams")
    }

    /// Clears any bits stored beyond the logical length.
    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Applies a binary word-wise operation, checking lengths.
    fn zip_words(&self, other: &BitStream, op: impl Fn(u64, u64) -> u64) -> BitStream {
        assert_eq!(
            self.len, other.len,
            "bit-stream length mismatch: {} vs {}",
            self.len, other.len
        );
        let words = self
            .words
            .iter()
            .zip(other.words.iter())
            .map(|(&a, &b)| op(a, b))
            .collect();
        let mut out = BitStream {
            words,
            len: self.len,
        };
        out.mask_tail();
        out
    }

    /// Bit-wise XNOR — the bipolar stochastic multiplier.
    pub fn xnor(&self, other: &BitStream) -> BitStream {
        self.zip_words(other, |a, b| !(a ^ b))
    }

    /// Checked version of [`BitStream::xnor`] that reports a length mismatch
    /// as an error instead of panicking.
    pub fn try_xnor(&self, other: &BitStream) -> Result<BitStream, ScError> {
        self.check_len(other)?;
        Ok(self.xnor(other))
    }

    fn check_len(&self, other: &BitStream) -> Result<(), ScError> {
        if self.len != other.len {
            Err(ScError::LengthMismatch {
                left: self.len,
                right: other.len,
            })
        } else {
            Ok(())
        }
    }
}

impl fmt::Debug for BitStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: String = self
            .iter()
            .take(32)
            .map(|bit| if bit { '1' } else { '0' })
            .collect();
        let ellipsis = if self.len > 32 { "…" } else { "" };
        write!(
            f,
            "BitStream(len={}, ones={}, bits={}{})",
            self.len,
            self.count_ones(),
            preview,
            ellipsis
        )
    }
}

impl fmt::Display for BitStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Iterator over the bits of a [`BitStream`].
#[derive(Debug, Clone)]
pub struct Bits<'a> {
    stream: &'a BitStream,
    index: usize,
}

impl Iterator for Bits<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        if self.index < self.stream.len() {
            let bit = self.stream.get(self.index);
            self.index += 1;
            Some(bit)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.stream.len() - self.index;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Bits<'_> {}

impl<'a> IntoIterator for &'a BitStream {
    type Item = bool;
    type IntoIter = Bits<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<bool> for BitStream {
    /// Collects bits into a stream.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty; use [`BitStream::from_bits`] for a
    /// fallible alternative.
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitStream::from_bits(iter).expect("cannot collect an empty bit-stream")
    }
}

impl BitAnd for &BitStream {
    type Output = BitStream;

    fn bitand(self, rhs: &BitStream) -> BitStream {
        self.zip_words(rhs, |a, b| a & b)
    }
}

impl BitOr for &BitStream {
    type Output = BitStream;

    fn bitor(self, rhs: &BitStream) -> BitStream {
        self.zip_words(rhs, |a, b| a | b)
    }
}

impl BitXor for &BitStream {
    type Output = BitStream;

    fn bitxor(self, rhs: &BitStream) -> BitStream {
        self.zip_words(rhs, |a, b| a ^ b)
    }
}

impl Not for &BitStream {
    type Output = BitStream;

    fn not(self) -> BitStream {
        let words = self.words.iter().map(|&w| !w).collect();
        let mut out = BitStream {
            words,
            len: self.len,
        };
        out.mask_tail();
        out
    }
}

/// Applies a binary word-wise operation in place, checking lengths and
/// re-masking the tail word afterwards.
fn zip_words_assign(lhs: &mut BitStream, rhs: &BitStream, op: impl Fn(u64, u64) -> u64) {
    assert_eq!(
        lhs.len, rhs.len,
        "bit-stream length mismatch: {} vs {}",
        lhs.len, rhs.len
    );
    for (a, &b) in lhs.words.iter_mut().zip(rhs.words.iter()) {
        *a = op(*a, b);
    }
    lhs.mask_tail();
}

impl BitAndAssign<&BitStream> for BitStream {
    fn bitand_assign(&mut self, rhs: &BitStream) {
        zip_words_assign(self, rhs, |a, b| a & b);
    }
}

impl BitOrAssign<&BitStream> for BitStream {
    fn bitor_assign(&mut self, rhs: &BitStream) {
        zip_words_assign(self, rhs, |a, b| a | b);
    }
}

impl BitXorAssign<&BitStream> for BitStream {
    fn bitxor_assign(&mut self, rhs: &BitStream) {
        zip_words_assign(self, rhs, |a, b| a ^ b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_length_words() {
        assert_eq!(StreamLength::new(1).words(), 1);
        assert_eq!(StreamLength::new(64).words(), 1);
        assert_eq!(StreamLength::new(65).words(), 2);
        assert_eq!(StreamLength::new(1024).words(), 16);
    }

    #[test]
    fn stream_length_rejects_zero() {
        assert_eq!(StreamLength::try_new(0), Err(ScError::InvalidLength(0)));
    }

    #[test]
    fn stream_length_halved_floors_at_one() {
        assert_eq!(StreamLength::new(1024).halved().bits(), 512);
        assert_eq!(StreamLength::new(1).halved().bits(), 1);
    }

    #[test]
    fn zeros_and_ones_counts() {
        let len = StreamLength::new(130);
        assert_eq!(BitStream::zeros(len).count_ones(), 0);
        assert_eq!(BitStream::ones(len).count_ones(), 130);
        assert_eq!(BitStream::ones(len).count_zeros(), 0);
    }

    #[test]
    fn from_binary_str_round_trip() {
        let stream = BitStream::from_binary_str("0100110100").unwrap();
        assert_eq!(stream.len(), 10);
        assert_eq!(stream.count_ones(), 4);
        assert!((stream.unipolar_value() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn from_binary_str_rejects_garbage() {
        assert!(BitStream::from_binary_str("01x0").is_err());
        assert!(BitStream::from_binary_str("").is_err());
    }

    #[test]
    fn paper_bipolar_example() {
        // The paper encodes 0.4 in bipolar form as a stream with 7 ones in 10 bits.
        let stream = BitStream::from_binary_str("1011011101").unwrap();
        assert!((stream.bipolar_value() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn get_set_round_trip() {
        let mut stream = BitStream::zeros(StreamLength::new(100));
        stream.set(0, true);
        stream.set(63, true);
        stream.set(64, true);
        stream.set(99, true);
        assert!(stream.get(0) && stream.get(63) && stream.get(64) && stream.get(99));
        assert_eq!(stream.count_ones(), 4);
        stream.set(63, false);
        assert_eq!(stream.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let stream = BitStream::zeros(StreamLength::new(8));
        let _ = stream.get(8);
    }

    #[test]
    fn logical_ops_match_bitwise_semantics() {
        let a = BitStream::from_binary_str("11001010").unwrap();
        let b = BitStream::from_binary_str("10101100").unwrap();
        let and = &a & &b;
        let or = &a | &b;
        let xor = &a ^ &b;
        let xnor = a.xnor(&b);
        for i in 0..8 {
            assert_eq!(and.get(i), a.get(i) & b.get(i));
            assert_eq!(or.get(i), a.get(i) | b.get(i));
            assert_eq!(xor.get(i), a.get(i) ^ b.get(i));
            assert_eq!(xnor.get(i), !(a.get(i) ^ b.get(i)));
        }
    }

    #[test]
    fn not_respects_tail_mask() {
        let stream = BitStream::zeros(StreamLength::new(70));
        let inverted = !&stream;
        assert_eq!(inverted.count_ones(), 70);
    }

    #[test]
    fn paper_or_gate_example() {
        // "00100101 OR 11001010" generates "11101111" (7/8) per Section 4.1.
        let a = BitStream::from_binary_str("00100101").unwrap();
        let b = BitStream::from_binary_str("11001010").unwrap();
        let or = &a | &b;
        assert_eq!(or.count_ones(), 7);
    }

    #[test]
    fn segments_cover_stream() {
        let stream = BitStream::from_binary_str("110010101110001").unwrap();
        let segments = stream.segments(4);
        assert_eq!(segments.len(), 4);
        assert_eq!(segments[3].len(), 3);
        let total: usize = segments.iter().map(|s| s.count_ones()).sum();
        assert_eq!(total, stream.count_ones());
    }

    #[test]
    fn count_ones_in_range_matches_segments() {
        let stream = BitStream::from_binary_str("1101110001110101").unwrap();
        assert_eq!(stream.count_ones_in_range(0, 16), stream.count_ones());
        assert_eq!(stream.count_ones_in_range(4, 8), 2);
        assert_eq!(stream.count_ones_in_range(8, 8), 0);
    }

    #[test]
    fn concat_preserves_bits() {
        let a = BitStream::from_binary_str("101").unwrap();
        let b = BitStream::from_binary_str("0110").unwrap();
        let joined = a.concat(&b);
        assert_eq!(joined.len(), 7);
        assert_eq!(joined.count_ones(), 4);
        assert!(joined.get(0) && !joined.get(1) && joined.get(2));
        assert!(!joined.get(3) && joined.get(4) && joined.get(5) && !joined.get(6));
    }

    #[test]
    fn try_xnor_reports_length_mismatch() {
        let a = BitStream::zeros(StreamLength::new(8));
        let b = BitStream::zeros(StreamLength::new(16));
        assert_eq!(
            a.try_xnor(&b),
            Err(ScError::LengthMismatch { left: 8, right: 16 })
        );
    }

    #[test]
    fn iterator_round_trip() {
        let original = BitStream::from_binary_str("100110").unwrap();
        let collected: BitStream = original.iter().collect();
        assert_eq!(original, collected);
        assert_eq!(original.iter().len(), 6);
    }

    #[test]
    fn fused_counts_match_materialized_ops() {
        for len in [1usize, 63, 64, 65, 100, 127, 128, 300] {
            let mut lfsr_a = crate::rng::Lfsr::new_32(11);
            let mut lfsr_b = crate::rng::Lfsr::new_32(22);
            let a: BitStream = (0..len).map(|_| lfsr_a.step() & 1 == 1).collect();
            let b: BitStream = (0..len).map(|_| lfsr_b.step() & 1 == 1).collect();
            assert_eq!(
                a.and_count(&b),
                (&a & &b).count_ones(),
                "AND mismatch at len {len}"
            );
            assert_eq!(
                a.xnor_count(&b),
                a.xnor(&b).count_ones(),
                "XNOR mismatch at len {len}"
            );
        }
    }

    /// Every wide popcount backend must agree bit-for-bit with the scalar
    /// `u64` reference on ragged-tail lengths (the acceptance contract of
    /// the `Word` kernel layer).
    #[test]
    fn popcount_kernels_bit_exact_across_backends() {
        use crate::word::W4;
        fn check<W: Word>(backend: &str) {
            for len in [1usize, 100, 127, 1024, 8191] {
                let mut lfsr_a = crate::rng::Lfsr::new_32(91);
                let mut lfsr_b = crate::rng::Lfsr::new_32(92);
                let a: BitStream = (0..len).map(|_| lfsr_a.step() & 1 == 1).collect();
                let b: BitStream = (0..len).map(|_| lfsr_b.step() & 1 == 1).collect();
                let (aw, bw) = (a.as_words(), b.as_words());
                assert_eq!(
                    popcount_words_impl::<W>(aw),
                    popcount_words_impl::<u64>(aw),
                    "{backend} popcount at len {len}"
                );
                assert_eq!(
                    and_popcount_impl::<W>(aw, bw),
                    and_popcount_impl::<u64>(aw, bw),
                    "{backend} and+popcount at len {len}"
                );
                assert_eq!(
                    xor_popcount_impl::<W>(aw, bw),
                    xor_popcount_impl::<u64>(aw, bw),
                    "{backend} xor+popcount at len {len}"
                );
            }
        }
        check::<W4>("wide");
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if crate::word::Backend::Avx2.is_available() {
            check::<crate::word::WAvx2>("avx2");
        }
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        check::<crate::word::WNeon>("neon");
    }

    #[test]
    fn in_place_ops_match_allocating_ops_and_mask_tail() {
        for len in [7usize, 64, 65, 127, 130] {
            let mut lfsr = crate::rng::Lfsr::new_32(5);
            let a: BitStream = (0..len).map(|_| lfsr.step() & 1 == 1).collect();
            let b: BitStream = (0..len).map(|_| lfsr.step() & 1 == 1).collect();
            let mut and = a.clone();
            and &= &b;
            assert_eq!(and, &a & &b);
            let mut or = a.clone();
            or |= &b;
            assert_eq!(or, &a | &b);
            let mut xor = a.clone();
            xor ^= &b;
            assert_eq!(xor, &a ^ &b);
            let mut xnor = a.clone();
            xnor.xnor_assign(&b);
            assert_eq!(xnor, a.xnor(&b));
            // The tail invariant must hold after every in-place op.
            assert_eq!(xnor.count_ones(), xnor.iter().filter(|&bit| bit).count());
            let mut acc = BitStream::zeros(StreamLength::new(len));
            a.or_into(&mut acc);
            assert_eq!(acc, a);
        }
    }

    #[test]
    fn slice_range_matches_bitwise_extraction() {
        let mut lfsr = crate::rng::Lfsr::new_32(77);
        let stream: BitStream = (0..300).map(|_| lfsr.step() & 1 == 1).collect();
        for (start, end) in [(0, 300), (0, 64), (1, 65), (63, 129), (250, 300), (64, 128)] {
            let slice = stream.slice_range(start, end);
            assert_eq!(slice.len(), end - start);
            for i in 0..slice.len() {
                assert_eq!(
                    slice.get(i),
                    stream.get(start + i),
                    "bit {i} of {start}..{end}"
                );
            }
        }
    }

    #[test]
    fn count_ones_in_range_word_boundaries() {
        let mut lfsr = crate::rng::Lfsr::new_32(31);
        let stream: BitStream = (0..200).map(|_| lfsr.step() & 1 == 1).collect();
        for (start, end) in [
            (0, 200),
            (0, 0),
            (200, 200),
            (0, 64),
            (64, 128),
            (1, 63),
            (63, 65),
            (100, 137),
        ] {
            let expected = (start..end).filter(|&i| stream.get(i)).count();
            assert_eq!(
                stream.count_ones_in_range(start, end),
                expected,
                "range {start}..{end}"
            );
        }
    }

    #[test]
    fn copy_range_from_touches_only_the_range() {
        let len = StreamLength::new(200);
        let src = BitStream::ones(len);
        for (start, end) in [
            (0, 200),
            (3, 67),
            (64, 128),
            (65, 66),
            (190, 200),
            (100, 100),
        ] {
            let mut dst = BitStream::zeros(len);
            dst.copy_range_from(&src, start, end);
            for i in 0..200 {
                assert_eq!(
                    dst.get(i),
                    (start..end).contains(&i),
                    "bit {i} of {start}..{end}"
                );
            }
        }
    }

    #[test]
    fn debug_is_never_empty() {
        let stream = BitStream::zeros(StreamLength::new(4));
        assert!(!format!("{stream:?}").is_empty());
        assert!(!format!("{stream}").is_empty());
    }
}
