//! Unipolar / bipolar encodings and pre-scaling.
//!
//! Stochastic computing streams encode values either as raw one-densities
//! (*unipolar*, range `[0, 1]`) or shifted densities (*bipolar*, range
//! `[-1, 1]` via `x = 2p − 1`). Values outside the representable range must
//! be pre-scaled before encoding; the scale has to be tracked by the caller
//! and undone after decoding (the paper calls this a "scaling-back" step and
//! folds it into the redesigned `Stanh` of the MUX-Max-Stanh block).

use crate::error::ScError;
use serde::{Deserialize, Serialize};

/// Which probability encoding a stream uses.
///
/// This trait is sealed: the paper (and this crate) only consider the
/// unipolar and bipolar encodings.
pub trait Encoding: sealed::Sealed + Copy + std::fmt::Debug {
    /// Lower bound of the representable range.
    const MIN: f64;
    /// Upper bound of the representable range.
    const MAX: f64;
    /// Human-readable name of the encoding ("unipolar" / "bipolar").
    const NAME: &'static str;

    /// Converts a real value in the representable range to a one-probability.
    fn to_probability(value: f64) -> Result<f64, ScError>;

    /// Converts a one-probability back to the represented real value.
    fn from_probability(probability: f64) -> f64;
}

/// Unipolar encoding: the stream value equals the density of ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Unipolar;

/// Bipolar encoding: the stream value is `2p − 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Bipolar;

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::Unipolar {}
    impl Sealed for super::Bipolar {}
}

impl Encoding for Unipolar {
    const MIN: f64 = 0.0;
    const MAX: f64 = 1.0;
    const NAME: &'static str = "unipolar";

    fn to_probability(value: f64) -> Result<f64, ScError> {
        check_range(value, Self::MIN, Self::MAX)?;
        Ok(value)
    }

    fn from_probability(probability: f64) -> f64 {
        probability
    }
}

impl Encoding for Bipolar {
    const MIN: f64 = -1.0;
    const MAX: f64 = 1.0;
    const NAME: &'static str = "bipolar";

    fn to_probability(value: f64) -> Result<f64, ScError> {
        check_range(value, Self::MIN, Self::MAX)?;
        Ok((value + 1.0) / 2.0)
    }

    fn from_probability(probability: f64) -> f64 {
        2.0 * probability - 1.0
    }
}

fn check_range(value: f64, min: f64, max: f64) -> Result<(), ScError> {
    if value.is_nan() || value < min || value > max {
        Err(ScError::ValueOutOfRange { value, min, max })
    } else {
        Ok(())
    }
}

/// Result of pre-scaling a set of values into the representable range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prescaled {
    /// The scaled values, all within `[-1, 1]`.
    pub values: Vec<f64>,
    /// The factor the original values were divided by (`≥ 1`).
    pub scale: f64,
}

impl Prescaled {
    /// Undoes the pre-scaling on a single computed result.
    pub fn scale_back(&self, value: f64) -> f64 {
        value * self.scale
    }
}

/// Pre-scales values so that every element fits in the bipolar range `[-1, 1]`.
///
/// The returned [`Prescaled::scale`] is the smallest power of two that brings
/// every value into range (a power of two keeps the hardware scaling circuit
/// trivial — it is just a shift of the fixed-point weight).
///
/// # Errors
///
/// Returns [`ScError::EmptyInput`] when `values` is empty and
/// [`ScError::InvalidParameter`] when any value is not finite.
pub fn prescale(values: &[f64]) -> Result<Prescaled, ScError> {
    if values.is_empty() {
        return Err(ScError::EmptyInput);
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(ScError::InvalidParameter {
            name: "values",
            message: "all values must be finite".into(),
        });
    }
    let max_abs = values.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
    let mut scale = 1.0;
    while max_abs / scale > 1.0 {
        scale *= 2.0;
    }
    Ok(Prescaled {
        values: values.iter().map(|v| v / scale).collect(),
        scale,
    })
}

/// Clamps a value into the bipolar range `[-1, 1]`.
///
/// SC hardware saturates rather than overflowing; this mirrors that behaviour
/// in the reference models.
pub fn clamp_bipolar(value: f64) -> f64 {
    value.clamp(-1.0, 1.0)
}

/// Clamps a value into the unipolar range `[0, 1]`.
pub fn clamp_unipolar(value: f64) -> f64 {
    value.clamp(0.0, 1.0)
}

/// Quantizes a bipolar value to the nearest of the `L + 1` levels a
/// length-`L` stream can represent (`(2k − L) / L` for `k ∈ 0..=L`).
///
/// A decoded stream value is always one of these levels, so the function is
/// the identity on anything that came out of a stream — quantizing *inputs*
/// before encoding therefore changes each value by at most `1/L` (below the
/// stream's own resolution) while collapsing the near-duplicate comparator
/// thresholds that make stream-cache hits workload-dependent: after
/// quantization at most `L + 1` distinct `(seed, threshold)` keys exist per
/// SNG lane. NaN quantizes to the centre level (0), mirroring clamping.
pub fn quantize_bipolar_levels(value: f64, stream_bits: usize) -> f64 {
    let l = stream_bits.max(1) as f64;
    let v = if value.is_nan() {
        0.0
    } else {
        value.clamp(-1.0, 1.0)
    };
    let k = ((v + 1.0) / 2.0 * l).round();
    (2.0 * k - l) / l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unipolar_round_trip() {
        for value in [0.0, 0.25, 0.5, 0.99, 1.0] {
            let p = Unipolar::to_probability(value).unwrap();
            assert!((Unipolar::from_probability(p) - value).abs() < 1e-12);
        }
    }

    #[test]
    fn bipolar_round_trip() {
        for value in [-1.0, -0.4, 0.0, 0.4, 1.0] {
            let p = Bipolar::to_probability(value).unwrap();
            assert!((Bipolar::from_probability(p) - value).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_bipolar_mapping() {
        // P(X = 1) = (0.4 + 1)/2 = 0.7 per Section 3.2.
        assert!((Bipolar::to_probability(0.4).unwrap() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_is_rejected() {
        assert!(Unipolar::to_probability(-0.1).is_err());
        assert!(Unipolar::to_probability(1.1).is_err());
        assert!(Bipolar::to_probability(-1.01).is_err());
        assert!(Bipolar::to_probability(f64::NAN).is_err());
    }

    #[test]
    fn prescale_uses_power_of_two() {
        let scaled = prescale(&[3.0, -1.5, 0.25]).unwrap();
        assert_eq!(scaled.scale, 4.0);
        assert!(scaled.values.iter().all(|v| v.abs() <= 1.0));
        assert!((scaled.scale_back(scaled.values[0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn prescale_identity_when_in_range() {
        let scaled = prescale(&[0.5, -0.75]).unwrap();
        assert_eq!(scaled.scale, 1.0);
        assert_eq!(scaled.values, vec![0.5, -0.75]);
    }

    #[test]
    fn prescale_rejects_empty_and_nonfinite() {
        assert_eq!(prescale(&[]), Err(ScError::EmptyInput));
        assert!(prescale(&[f64::INFINITY]).is_err());
        assert!(prescale(&[f64::NAN]).is_err());
    }

    #[test]
    fn quantize_maps_to_representable_levels() {
        for l in [64usize, 127, 1024] {
            for i in 0..=200 {
                let v = i as f64 / 100.0 - 1.0;
                let q = quantize_bipolar_levels(v, l);
                // q is one of the L + 1 levels (2k - L)/L …
                let k = (q + 1.0) / 2.0 * l as f64;
                assert!((k - k.round()).abs() < 1e-9, "L={l} v={v} gave level {q}");
                assert!((-1.0..=1.0).contains(&q));
                // … within half a level of the input …
                assert!((q - v).abs() <= 1.0 / l as f64 + 1e-12);
                // … and quantization is idempotent.
                assert_eq!(quantize_bipolar_levels(q, l), q);
            }
        }
    }

    #[test]
    fn quantize_handles_degenerate_inputs() {
        assert_eq!(quantize_bipolar_levels(2.0, 64), 1.0);
        assert_eq!(quantize_bipolar_levels(-2.0, 64), -1.0);
        assert_eq!(quantize_bipolar_levels(f64::NAN, 64), 0.0);
        // A stream's decoded value is a fixed point: (2·13 − 127)/127.
        let decoded = (2.0 * 13.0 - 127.0) / 127.0;
        assert_eq!(quantize_bipolar_levels(decoded, 127), decoded);
    }

    #[test]
    fn clamps_saturate() {
        assert_eq!(clamp_bipolar(1.7), 1.0);
        assert_eq!(clamp_bipolar(-2.0), -1.0);
        assert_eq!(clamp_unipolar(-0.2), 0.0);
        assert_eq!(clamp_unipolar(1.2), 1.0);
    }
}
