//! # sc-dcnn
//!
//! The paper's primary contribution: a design and optimization framework that
//! maps software-trained deep convolutional neural networks onto
//! stochastic-computing (SC) hardware built from the feature extraction
//! blocks of [`sc_blocks`], costed with [`sc_hw`], and trained with
//! [`sc_nn`].
//!
//! The crate is organized around the paper's Section 5–6 flow:
//!
//! * [`config`] — an SC network configuration: which feature extraction
//!   block each layer uses, the bit-stream length, the pooling style, and
//!   the per-layer weight precisions.
//! * [`error_model`] — per-block hardware-inaccuracy calibration (bit-level
//!   Monte-Carlo) and the error-injection evaluation of full networks, which
//!   is how network-level accuracy under SC noise is estimated.
//! * [`mapping`] — turns a configuration plus the LeNet-5 layer shapes into
//!   the [`sc_hw::NetworkConfig`] used for area/power/energy roll-ups.
//! * [`weight_storage`] — the Section 5 weight-storage optimizations
//!   (filter-aware sharing, low precision, layer-wise precision).
//! * [`optimizer`] — the Section 6.3 pruning search over configurations
//!   under a network-accuracy constraint (Table 6).
//! * [`platforms`] — published reference platforms for Table 7.
//! * [`report`] — plain-text table formatting shared by the experiment
//!   binaries and examples.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod error_model;
pub mod mapping;
pub mod optimizer;
pub mod platforms;
pub mod report;
pub mod weight_storage;

pub use config::ScNetworkConfig;
pub use error_model::{ErrorInjection, FebErrorModel};
pub use mapping::lenet5_network_config;
pub use optimizer::{CandidateEvaluation, DesignSpaceOptimizer, OptimizerOptions};
