//! Reference platforms for the Table 7 comparison.
//!
//! These are the published figures the paper compares against (CPU, GPU and
//! prior hardware neural-network platforms). They are constants taken from
//! Table 7 of the paper, not measurements of this reproduction; SC-DCNN rows
//! are generated from the cost model at runtime and appended by the Table 7
//! experiment binary.

use serde::{Deserialize, Serialize};

/// One row of the platform-comparison table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformRow {
    /// Platform name.
    pub platform: &'static str,
    /// Dataset the published figure refers to.
    pub dataset: &'static str,
    /// Network type (CNN, DBN, SNN, …).
    pub network_type: &'static str,
    /// Publication year.
    pub year: u16,
    /// Platform type (CPU, GPU, FPGA, ASIC, ARM).
    pub platform_type: &'static str,
    /// Die / board area in mm² (None when not reported).
    pub area_mm2: Option<f64>,
    /// Power in W (None when not reported).
    pub power_w: Option<f64>,
    /// Reported accuracy in percent (None when not reported).
    pub accuracy_percent: Option<f64>,
    /// Throughput in images per second.
    pub throughput_images_per_s: f64,
    /// Area efficiency in images/s/mm² (None when not derivable).
    pub area_efficiency: Option<f64>,
    /// Energy efficiency in images/J.
    pub energy_efficiency: f64,
}

/// The published reference platforms of Table 7.
pub fn reference_platforms() -> Vec<PlatformRow> {
    vec![
        PlatformRow {
            platform: "2x Intel Xeon W5580",
            dataset: "MNIST",
            network_type: "CNN",
            year: 2009,
            platform_type: "CPU",
            area_mm2: Some(263.0),
            power_w: Some(156.0),
            accuracy_percent: Some(98.46),
            throughput_images_per_s: 656.0,
            area_efficiency: Some(2.5),
            energy_efficiency: 4.2,
        },
        PlatformRow {
            platform: "Nvidia Tesla C2075",
            dataset: "MNIST",
            network_type: "CNN",
            year: 2011,
            platform_type: "GPU",
            area_mm2: Some(520.0),
            power_w: Some(202.5),
            accuracy_percent: Some(98.46),
            throughput_images_per_s: 2333.0,
            area_efficiency: Some(4.5),
            energy_efficiency: 3.2,
        },
        PlatformRow {
            platform: "Minitaur",
            dataset: "MNIST",
            network_type: "ANN",
            year: 2014,
            platform_type: "FPGA",
            area_mm2: None,
            power_w: Some(1.5),
            accuracy_percent: Some(92.00),
            throughput_images_per_s: 4880.0,
            area_efficiency: None,
            energy_efficiency: 3253.0,
        },
        PlatformRow {
            platform: "SpiNNaker",
            dataset: "MNIST",
            network_type: "DBN",
            year: 2015,
            platform_type: "ARM",
            area_mm2: None,
            power_w: Some(0.3),
            accuracy_percent: Some(95.00),
            throughput_images_per_s: 50.0,
            area_efficiency: None,
            energy_efficiency: 166.7,
        },
        PlatformRow {
            platform: "TrueNorth",
            dataset: "MNIST",
            network_type: "SNN",
            year: 2015,
            platform_type: "ASIC",
            area_mm2: Some(430.0),
            power_w: Some(0.18),
            accuracy_percent: Some(99.42),
            throughput_images_per_s: 1000.0,
            area_efficiency: Some(2.3),
            energy_efficiency: 9259.0,
        },
        PlatformRow {
            platform: "DaDianNao",
            dataset: "ImageNet",
            network_type: "CNN",
            year: 2014,
            platform_type: "ASIC",
            area_mm2: Some(67.7),
            power_w: Some(15.97),
            accuracy_percent: None,
            throughput_images_per_s: 147_938.0,
            area_efficiency: Some(2185.0),
            energy_efficiency: 9263.0,
        },
        PlatformRow {
            platform: "EIE-64PE",
            dataset: "CNN layer",
            network_type: "CNN",
            year: 2016,
            platform_type: "ASIC",
            area_mm2: Some(40.8),
            power_w: Some(0.59),
            accuracy_percent: None,
            throughput_images_per_s: 81_967.0,
            area_efficiency: Some(2009.0),
            energy_efficiency: 138_927.0,
        },
    ]
}

/// The paper's reported figures for the two highlighted SC-DCNN
/// configurations (used to sanity-check the reproduction's ordering).
pub fn paper_scdcnn_rows() -> Vec<PlatformRow> {
    vec![
        PlatformRow {
            platform: "SC-DCNN (No.6, paper)",
            dataset: "MNIST",
            network_type: "CNN",
            year: 2016,
            platform_type: "ASIC",
            area_mm2: Some(36.4),
            power_w: Some(3.53),
            accuracy_percent: Some(98.26),
            throughput_images_per_s: 781_250.0,
            area_efficiency: Some(21_439.0),
            energy_efficiency: 221_287.0,
        },
        PlatformRow {
            platform: "SC-DCNN (No.11, paper)",
            dataset: "MNIST",
            network_type: "CNN",
            year: 2016,
            platform_type: "ASIC",
            area_mm2: Some(17.0),
            power_w: Some(1.53),
            accuracy_percent: Some(96.64),
            throughput_images_per_s: 781_250.0,
            area_efficiency: Some(45_946.0),
            energy_efficiency: 510_734.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_table_has_seven_platforms() {
        let rows = reference_platforms();
        assert_eq!(rows.len(), 7);
        assert!(rows.iter().any(|r| r.platform.contains("TrueNorth")));
        assert!(rows.iter().any(|r| r.platform_type == "GPU"));
    }

    #[test]
    fn paper_rows_match_headline_numbers() {
        let rows = paper_scdcnn_rows();
        assert_eq!(rows.len(), 2);
        let no11 = &rows[1];
        assert_eq!(no11.area_mm2, Some(17.0));
        assert_eq!(no11.energy_efficiency, 510_734.0);
        assert_eq!(no11.throughput_images_per_s, 781_250.0);
    }

    #[test]
    fn scdcnn_beats_cpu_and_gpu_on_efficiency_in_the_paper() {
        let reference = reference_platforms();
        let gpu = reference.iter().find(|r| r.platform_type == "GPU").unwrap();
        let paper = paper_scdcnn_rows();
        for row in &paper {
            assert!(row.energy_efficiency > gpu.energy_efficiency);
            assert!(row.area_efficiency.unwrap() > gpu.area_efficiency.unwrap());
        }
    }
}
