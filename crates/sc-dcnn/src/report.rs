//! Plain-text table formatting shared by the experiment binaries.

use crate::optimizer::CandidateEvaluation;
use crate::platforms::PlatformRow;

/// Formats a number with a fixed precision, right-aligned to `width`.
pub fn cell(value: f64, precision: usize, width: usize) -> String {
    format!("{value:>width$.precision$}")
}

/// Formats an optional number, rendering `None` as `N/A`.
pub fn optional_cell(value: Option<f64>, precision: usize, width: usize) -> String {
    match value {
        Some(v) => cell(v, precision, width),
        None => format!("{:>width$}", "N/A"),
    }
}

/// Renders a Table 6-style row for one evaluated configuration.
pub fn table6_row(evaluation: &CandidateEvaluation) -> String {
    let config = &evaluation.config;
    let cost = &evaluation.cost;
    format!(
        "{:<10} {:<8} {:>6} {:<16} {:>10.2} {:>10.1} {:>9.2} {:>10.0} {:>10.1}",
        config.name,
        config.pooling.name(),
        config.stream_length,
        config.layer_summary(),
        evaluation.inaccuracy_percent,
        cost.area_mm2,
        cost.power_w,
        cost.delay_ns,
        cost.energy_uj,
    )
}

/// Header matching [`table6_row`].
pub fn table6_header() -> String {
    format!(
        "{:<10} {:<8} {:>6} {:<16} {:>10} {:>10} {:>9} {:>10} {:>10}",
        "Config",
        "Pooling",
        "L",
        "Layers",
        "Inacc(%)",
        "Area(mm2)",
        "Power(W)",
        "Delay(ns)",
        "Energy(uJ)"
    )
}

/// Renders a Table 7-style row for one platform.
pub fn table7_row(row: &PlatformRow) -> String {
    format!(
        "{:<24} {:<10} {:<5} {:>5} {:<5} {:>9} {:>8} {:>8} {:>12.0} {:>12} {:>12.0}",
        row.platform,
        row.dataset,
        row.network_type,
        row.year,
        row.platform_type,
        optional_cell(row.area_mm2, 1, 9),
        optional_cell(row.power_w, 2, 8),
        optional_cell(row.accuracy_percent, 2, 8),
        row.throughput_images_per_s,
        optional_cell(row.area_efficiency, 0, 12),
        row.energy_efficiency,
    )
}

/// Header matching [`table7_row`].
pub fn table7_header() -> String {
    format!(
        "{:<24} {:<10} {:<5} {:>5} {:<5} {:>9} {:>8} {:>8} {:>12} {:>12} {:>12}",
        "Platform",
        "Dataset",
        "Net",
        "Year",
        "Type",
        "Area",
        "Power",
        "Acc(%)",
        "Images/s",
        "Img/s/mm2",
        "Images/J"
    )
}

/// Renders a simple two-column sweep (x, y) as aligned text lines.
pub fn sweep_lines(title: &str, x_label: &str, y_label: &str, points: &[(f64, f64)]) -> String {
    let mut out = format!("# {title}\n{:<12} {:>14}\n", x_label, y_label);
    for (x, y) in points {
        out.push_str(&format!("{:<12} {:>14.6}\n", x, y));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScNetworkConfig;
    use crate::mapping::lenet5_cost;
    use crate::platforms::reference_platforms;
    use sc_blocks::feature_block::FeatureBlockKind;
    use sc_nn::lenet::PoolingStyle;

    #[test]
    fn cells_align_and_handle_missing_values() {
        assert_eq!(cell(1.5, 2, 8), "    1.50");
        assert_eq!(optional_cell(None, 2, 5), "  N/A");
        assert_eq!(optional_cell(Some(2.0), 1, 5), "  2.0");
    }

    #[test]
    fn table6_rows_have_matching_headers() {
        let config = ScNetworkConfig::new(
            "No.X",
            vec![FeatureBlockKind::ApcMaxBtanh; 3],
            512,
            PoolingStyle::Max,
        );
        let evaluation = CandidateEvaluation {
            cost: lenet5_cost(&config),
            inaccuracy_percent: 1.0,
            meets_accuracy: true,
            config,
        };
        let header = table6_header();
        let row = table6_row(&evaluation);
        assert!(row.contains("No.X"));
        assert!(row.contains("APC-APC-APC"));
        assert!(header.contains("Energy"));
    }

    #[test]
    fn table7_rows_render_reference_platforms() {
        let header = table7_header();
        assert!(header.contains("Images/J"));
        for platform in reference_platforms() {
            let row = table7_row(&platform);
            assert!(row.contains(platform.platform));
        }
    }

    #[test]
    fn sweep_lines_contain_all_points() {
        let text = sweep_lines("Fig. 9", "x", "Stanh(x)", &[(0.0, 0.0), (0.5, 0.46)]);
        assert!(text.contains("Fig. 9"));
        assert_eq!(text.lines().count(), 4);
    }
}
