//! Mapping SC network configurations onto the hardware cost model.

use crate::config::ScNetworkConfig;
use sc_hw::network_cost::{LayerSpec, NetworkConfig, NetworkCost};
use sc_nn::lenet::lenet5_layer_shapes;

/// Builds the [`sc_hw::NetworkConfig`] corresponding to an SC-DCNN
/// configuration of the paper's LeNet-5 (784-11520-2880-3200-800-500-10).
///
/// Each paper layer becomes one [`LayerSpec`]: its unit count and
/// receptive-field size come from the LeNet-5 structure, its
/// feature-extraction-block kind and weight precision from the
/// configuration. Filter-aware SRAM sharing applies to the convolutional
/// layers (every inner-product block of a feature map shares the filter),
/// while fully-connected weights are used once and cannot be shared.
pub fn lenet5_network_config(config: &ScNetworkConfig) -> NetworkConfig {
    let shapes = lenet5_layer_shapes();
    let layers: Vec<LayerSpec> = shapes
        .iter()
        .map(|shape| {
            let kind = config.layer_kinds.get(shape.index).copied().unwrap_or(
                *config
                    .layer_kinds
                    .last()
                    .expect("configurations are non-empty"),
            );
            let weight_bits = config
                .weight_bits
                .get(shape.index)
                .copied()
                .unwrap_or(*config.weight_bits.last().unwrap_or(&7));
            // Convolutional layers share one filter across all the inner
            // product blocks of a feature map; the sharing factor is the
            // number of pooled output positions per feature map.
            let sharing_factor = if shape.has_pooling {
                (shape.unit_count / filters_for_layer(shape.index)).max(1)
            } else {
                1
            };
            LayerSpec {
                name: format!("Layer{}", shape.index),
                unit_count: shape.unit_count,
                input_size: shape.input_size,
                kind,
                has_pooling: shape.has_pooling,
                weight_count: shape.weight_count,
                weight_bits,
                sharing_factor,
                input_count: shape.input_count,
            }
        })
        .collect();
    NetworkConfig::new(config.name.clone(), layers, config.stream_length)
}

/// Number of filters (feature maps) in each convolutional paper layer.
fn filters_for_layer(index: usize) -> usize {
    match index {
        0 => sc_nn::lenet::CONV1_FILTERS,
        1 => sc_nn::lenet::CONV2_FILTERS,
        _ => 1,
    }
}

/// Convenience: the Table 6 cost row for a configuration.
pub fn lenet5_cost(config: &ScNetworkConfig) -> NetworkCost {
    lenet5_network_config(config).cost()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::table6_configurations;
    use sc_blocks::feature_block::FeatureBlockKind;
    use sc_nn::lenet::PoolingStyle;

    fn all_apc(stream_length: usize) -> ScNetworkConfig {
        ScNetworkConfig::new(
            "apc",
            vec![FeatureBlockKind::ApcMaxBtanh; 3],
            stream_length,
            PoolingStyle::Max,
        )
    }

    fn all_mux(stream_length: usize) -> ScNetworkConfig {
        ScNetworkConfig::new(
            "mux",
            vec![FeatureBlockKind::MuxMaxStanh; 3],
            stream_length,
            PoolingStyle::Max,
        )
    }

    #[test]
    fn mapping_produces_three_layers_with_paper_shapes() {
        let network = lenet5_network_config(&all_apc(1024));
        assert_eq!(network.layers.len(), 3);
        assert_eq!(network.layers[0].unit_count, 2880);
        assert_eq!(network.layers[0].input_size, 25);
        assert_eq!(network.layers[1].unit_count, 800);
        assert!(!network.layers[2].has_pooling);
        assert_eq!(network.stream_length, 1024);
    }

    #[test]
    fn area_lands_in_the_papers_ballpark() {
        // Table 6 reports 17-37 mm^2 for the twelve LeNet-5 configurations.
        for config in table6_configurations() {
            let cost = lenet5_cost(&config);
            assert!(
                (5.0..120.0).contains(&cost.area_mm2),
                "{}: area {:.1} mm^2 outside the plausible range",
                config.name,
                cost.area_mm2
            );
        }
    }

    #[test]
    fn power_lands_in_the_papers_ballpark() {
        for config in table6_configurations() {
            let cost = lenet5_cost(&config);
            assert!(
                (0.2..25.0).contains(&cost.power_w),
                "{}: power {:.2} W outside the plausible range",
                config.name,
                cost.power_w
            );
        }
    }

    #[test]
    fn delay_matches_the_stream_length_convention() {
        let cost = lenet5_cost(&all_apc(1024));
        assert_eq!(cost.delay_ns, 5120.0);
        let cost = lenet5_cost(&all_apc(256));
        assert_eq!(cost.delay_ns, 1280.0);
    }

    #[test]
    fn apc_heavy_configurations_cost_more_than_mux_heavy() {
        let apc = lenet5_cost(&all_apc(1024));
        let mux = lenet5_cost(&all_mux(1024));
        assert!(apc.area_mm2 > mux.area_mm2);
        assert!(apc.power_w > mux.power_w);
    }

    #[test]
    fn shorter_streams_reduce_energy_not_area() {
        let long = lenet5_cost(&all_apc(1024));
        let short = lenet5_cost(&all_apc(256));
        assert!(short.energy_uj < long.energy_uj);
        assert!((short.area_mm2 - long.area_mm2).abs() < 1e-9);
        assert!(short.throughput_images_per_s > long.throughput_images_per_s);
    }

    #[test]
    fn throughput_matches_paper_at_256_bits() {
        let cost = lenet5_cost(&all_apc(256));
        assert!((cost.throughput_images_per_s - 781_250.0).abs() < 1.0);
    }
}
