//! SC network configurations.

use sc_blocks::feature_block::FeatureBlockKind;
use sc_nn::lenet::PoolingStyle;
use serde::{Deserialize, Serialize};

/// Default per-layer weight precisions (the 7-7-6 scheme of Section 5.3).
pub const DEFAULT_WEIGHT_BITS: [usize; 3] = [7, 7, 6];

/// A complete SC-DCNN configuration for a three-layer (paper-style) network.
///
/// The paper's LeNet-5 is grouped into Layer0 (conv1 + pool1), Layer1
/// (conv2 + pool2) and Layer2 (the fully-connected layers); each gets its
/// own feature-extraction-block kind and weight precision.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScNetworkConfig {
    /// Label used in reports (e.g. `"No.11"`).
    pub name: String,
    /// Feature-extraction-block kind per paper layer.
    pub layer_kinds: Vec<FeatureBlockKind>,
    /// Bit-stream length `L`.
    pub stream_length: usize,
    /// Pooling style of the underlying DCNN (max or average).
    pub pooling: PoolingStyle,
    /// Stored weight precision per paper layer, in bits.
    pub weight_bits: Vec<usize>,
}

impl ScNetworkConfig {
    /// Creates a configuration, defaulting the weight precisions to 7-7-6.
    ///
    /// # Panics
    ///
    /// Panics if `layer_kinds` is empty or the kinds' pooling style does not
    /// match `pooling` for the pooling layers.
    pub fn new(
        name: impl Into<String>,
        layer_kinds: Vec<FeatureBlockKind>,
        stream_length: usize,
        pooling: PoolingStyle,
    ) -> Self {
        assert!(
            !layer_kinds.is_empty(),
            "a configuration needs at least one layer"
        );
        let weight_bits = DEFAULT_WEIGHT_BITS
            .iter()
            .copied()
            .chain(std::iter::repeat(*DEFAULT_WEIGHT_BITS.last().unwrap()))
            .take(layer_kinds.len())
            .collect();
        Self {
            name: name.into(),
            layer_kinds,
            stream_length,
            pooling,
            weight_bits,
        }
    }

    /// Builder-style override of the per-layer weight precisions.
    pub fn with_weight_bits(mut self, weight_bits: Vec<usize>) -> Self {
        self.weight_bits = weight_bits;
        self
    }

    /// The inner-product family per layer, in Table 6's "MUX"/"APC" notation.
    pub fn layer_summary(&self) -> String {
        self.layer_kinds
            .iter()
            .map(|k| k.short_name())
            .collect::<Vec<_>>()
            .join("-")
    }

    /// Number of paper-style layers.
    pub fn layer_count(&self) -> usize {
        self.layer_kinds.len()
    }

    /// Returns a copy with the bit-stream length halved (the Table 6
    /// optimization loop's energy-reduction move).
    pub fn with_halved_stream(&self) -> Self {
        let mut copy = self.clone();
        copy.stream_length = (copy.stream_length / 2).max(1);
        copy
    }

    /// Whether every layer kind is consistent with the configured pooling
    /// style (max-pooling configurations must use max-pooling FEBs).
    pub fn is_pooling_consistent(&self) -> bool {
        self.layer_kinds.iter().enumerate().all(|(index, kind)| {
            // The fully-connected layer (last) carries no pooling block, so
            // its kind only selects the inner product / activation pair.
            if index + 1 == self.layer_kinds.len() {
                true
            } else {
                kind.uses_max_pooling() == (self.pooling == PoolingStyle::Max)
            }
        })
    }
}

/// The twelve Table 6 configurations of the paper (No.1–No.6 max pooling,
/// No.7–No.12 average pooling).
pub fn table6_configurations() -> Vec<ScNetworkConfig> {
    use FeatureBlockKind::{ApcAvgBtanh, ApcMaxBtanh, MuxAvgStanh, MuxMaxStanh};
    let mut configs = Vec::new();
    let max_rows: [(usize, [FeatureBlockKind; 3]); 6] = [
        (1024, [MuxMaxStanh, MuxMaxStanh, ApcMaxBtanh]),
        (1024, [MuxMaxStanh, ApcMaxBtanh, ApcMaxBtanh]),
        (512, [ApcMaxBtanh, MuxMaxStanh, ApcMaxBtanh]),
        (512, [ApcMaxBtanh, ApcMaxBtanh, ApcMaxBtanh]),
        (256, [ApcMaxBtanh, MuxMaxStanh, ApcMaxBtanh]),
        (256, [ApcMaxBtanh, ApcMaxBtanh, ApcMaxBtanh]),
    ];
    let avg_rows: [(usize, [FeatureBlockKind; 3]); 6] = [
        (1024, [MuxAvgStanh, ApcAvgBtanh, ApcAvgBtanh]),
        (1024, [ApcAvgBtanh, ApcAvgBtanh, ApcAvgBtanh]),
        (512, [MuxAvgStanh, ApcAvgBtanh, ApcAvgBtanh]),
        (512, [ApcAvgBtanh, ApcAvgBtanh, ApcAvgBtanh]),
        (256, [MuxAvgStanh, ApcAvgBtanh, ApcAvgBtanh]),
        (256, [ApcAvgBtanh, ApcAvgBtanh, ApcAvgBtanh]),
    ];
    for (index, (length, kinds)) in max_rows.into_iter().enumerate() {
        configs.push(ScNetworkConfig::new(
            format!("No.{}", index + 1),
            kinds.to_vec(),
            length,
            PoolingStyle::Max,
        ));
    }
    for (index, (length, kinds)) in avg_rows.into_iter().enumerate() {
        configs.push(ScNetworkConfig::new(
            format!("No.{}", index + 7),
            kinds.to_vec(),
            length,
            PoolingStyle::Average,
        ));
    }
    configs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weight_bits_follow_paper_scheme() {
        let config = ScNetworkConfig::new(
            "test",
            vec![FeatureBlockKind::MuxMaxStanh; 3],
            1024,
            PoolingStyle::Max,
        );
        assert_eq!(config.weight_bits, vec![7, 7, 6]);
        assert_eq!(config.layer_count(), 3);
    }

    #[test]
    fn layer_summary_uses_table6_notation() {
        let config = ScNetworkConfig::new(
            "row",
            vec![
                FeatureBlockKind::MuxMaxStanh,
                FeatureBlockKind::ApcMaxBtanh,
                FeatureBlockKind::ApcMaxBtanh,
            ],
            1024,
            PoolingStyle::Max,
        );
        assert_eq!(config.layer_summary(), "MUX-APC-APC");
    }

    #[test]
    fn halving_stream_length_floors_at_one() {
        let config = ScNetworkConfig::new(
            "h",
            vec![FeatureBlockKind::ApcAvgBtanh],
            2,
            PoolingStyle::Average,
        );
        assert_eq!(config.with_halved_stream().stream_length, 1);
        assert_eq!(
            config
                .with_halved_stream()
                .with_halved_stream()
                .stream_length,
            1
        );
    }

    #[test]
    fn table6_has_twelve_rows_matching_the_paper() {
        let configs = table6_configurations();
        assert_eq!(configs.len(), 12);
        assert!(configs[..6].iter().all(|c| c.pooling == PoolingStyle::Max));
        assert!(configs[6..]
            .iter()
            .all(|c| c.pooling == PoolingStyle::Average));
        assert_eq!(configs[0].stream_length, 1024);
        assert_eq!(configs[10].stream_length, 256);
        assert_eq!(configs[10].layer_summary(), "MUX-APC-APC");
        for config in &configs {
            assert!(
                config.is_pooling_consistent(),
                "{} mixes pooling styles",
                config.name
            );
        }
    }

    #[test]
    fn pooling_consistency_detects_mismatch() {
        let config = ScNetworkConfig::new(
            "bad",
            vec![FeatureBlockKind::MuxAvgStanh, FeatureBlockKind::MuxMaxStanh],
            512,
            PoolingStyle::Max,
        );
        assert!(!config.is_pooling_consistent());
    }

    #[test]
    fn weight_bits_override() {
        let config = ScNetworkConfig::new(
            "w",
            vec![FeatureBlockKind::ApcMaxBtanh; 3],
            512,
            PoolingStyle::Max,
        )
        .with_weight_bits(vec![8, 8, 8]);
        assert_eq!(config.weight_bits, vec![8, 8, 8]);
    }
}
