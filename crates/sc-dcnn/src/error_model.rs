//! Hardware-inaccuracy calibration and error-injection evaluation.
//!
//! Bit-exact simulation of every stochastic stream in LeNet-5 would take
//! `O(neurons × inputs × stream length)` bit operations per image — far too
//! slow to sweep twelve configurations. The paper itself evaluates network
//! accuracy in software with the hardware inaccuracy modelled; this module
//! does the same in two steps:
//!
//! 1. **Calibration** ([`FebErrorModel`]): the bit-level feature extraction
//!    blocks of [`sc_blocks`] are Monte-Carlo sampled at the layer's actual
//!    input size and stream length, yielding the bias and standard deviation
//!    of the block output error relative to the floating-point reference.
//! 2. **Injection** ([`ErrorInjection`]): during a forward pass of the
//!    trained network, Gaussian noise with the calibrated moments is added
//!    after each paper layer's activation (and the result re-clamped to the
//!    bipolar range), and the classification error rate is measured.
//!
//! Calibrations are cached per (kind, input size, stream length) so repeated
//! evaluations (the optimizer sweeps many configurations) stay cheap.

use crate::config::ScNetworkConfig;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sc_blocks::accuracy::feature_block_inaccuracy;
use sc_blocks::feature_block::FeatureBlockKind;
use sc_nn::network::Network;
use sc_nn::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Calibrated error moments for one feature-extraction-block configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibratedError {
    /// Mean absolute output error against the floating-point reference.
    pub mean_absolute: f64,
    /// Standard deviation proxy (root-mean-square error).
    pub rmse: f64,
}

/// Key identifying one calibration point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
struct CalibrationKey {
    kind: FeatureBlockKind,
    input_size: usize,
    stream_length: usize,
}

/// A cache of bit-level feature-extraction-block calibrations.
#[derive(Debug, Default)]
pub struct FebErrorModel {
    cache: Mutex<HashMap<CalibrationKey, CalibratedError>>,
    trials: usize,
    seed: u64,
}

impl FebErrorModel {
    /// Creates a model that calibrates each point with the given number of
    /// Monte-Carlo trials.
    pub fn new(trials: usize, seed: u64) -> Self {
        Self {
            cache: Mutex::new(HashMap::new()),
            trials: trials.max(1),
            seed,
        }
    }

    /// A fast model for tests and examples (few trials per point).
    pub fn fast() -> Self {
        Self::new(6, 2024)
    }

    /// Calibrated error moments for a feature extraction block of the given
    /// kind, input size and stream length. Results are cached.
    ///
    /// Large input sizes are bucketed (calibrated at a capped size) because
    /// the measured error varies slowly with `N` once the activation
    /// saturates, while the bit-level simulation cost grows linearly.
    pub fn calibrate(
        &self,
        kind: FeatureBlockKind,
        input_size: usize,
        stream_length: usize,
    ) -> CalibratedError {
        let bucketed_input = bucket_input_size(input_size);
        let key = CalibrationKey {
            kind,
            input_size: bucketed_input,
            stream_length,
        };
        if let Some(&hit) = self.cache.lock().get(&key) {
            return hit;
        }
        let summary = feature_block_inaccuracy(
            kind,
            bucketed_input,
            stream_length,
            self.trials,
            self.seed ^ (bucketed_input as u64) << 16 ^ stream_length as u64,
        );
        let calibrated = CalibratedError {
            mean_absolute: summary.mean_absolute,
            rmse: summary.rmse,
        };
        self.cache.lock().insert(key, calibrated);
        calibrated
    }

    /// Number of cached calibration points.
    pub fn cached_points(&self) -> usize {
        self.cache.lock().len()
    }
}

/// Caps the calibration input size so bit-level Monte-Carlo stays tractable
/// for the 500/800-input layers of LeNet-5.
fn bucket_input_size(input_size: usize) -> usize {
    const BUCKETS: [usize; 6] = [16, 25, 32, 64, 128, 256];
    for &bucket in &BUCKETS {
        if input_size <= bucket {
            return bucket;
        }
    }
    *BUCKETS.last().expect("bucket list is non-empty")
}

/// Error-injection evaluation of a trained network under an SC configuration.
#[derive(Debug)]
pub struct ErrorInjection<'a> {
    model: &'a FebErrorModel,
    /// Per paper-layer receptive-field sizes (LeNet-5: 25, 500, 800).
    layer_input_sizes: Vec<usize>,
}

impl<'a> ErrorInjection<'a> {
    /// Creates an injection evaluator for a network whose paper layers have
    /// the given receptive-field sizes.
    pub fn new(model: &'a FebErrorModel, layer_input_sizes: Vec<usize>) -> Self {
        Self {
            model,
            layer_input_sizes,
        }
    }

    /// The standard LeNet-5 receptive-field sizes (25, 500, 800).
    pub fn lenet5(model: &'a FebErrorModel) -> Self {
        Self::new(model, vec![25, 500, 800])
    }

    /// Per-layer noise sigmas for a configuration.
    ///
    /// Uncached calibration points run in parallel (each is a bit-level
    /// Monte-Carlo of its feature extraction block); the calibration per
    /// (kind, size, length) key is deterministic, so the sigmas are
    /// identical whatever the thread count.
    pub fn layer_sigmas(&self, config: &ScNetworkConfig) -> Vec<f64> {
        // Layers that bucket to the same calibration key are deduplicated
        // before the parallel warm-up so a cold cache computes each point
        // exactly once (LeNet-5's 500- and 800-input layers share a bucket).
        let mut unique: Vec<(FeatureBlockKind, usize)> = Vec::new();
        for (layer, &kind) in config.layer_kinds.iter().enumerate() {
            let input_size = self.layer_input_sizes.get(layer).copied().unwrap_or(64);
            let key = (kind, bucket_input_size(input_size));
            if !unique.contains(&key) {
                unique.push(key);
            }
        }
        sc_core::parallel::parallel_map(&unique, |_, &(kind, input_size)| {
            self.model.calibrate(kind, input_size, config.stream_length)
        });
        // Every key is now cached; assemble the per-layer sigmas from it.
        config
            .layer_kinds
            .iter()
            .enumerate()
            .map(|(layer, &kind)| {
                let input_size = self.layer_input_sizes.get(layer).copied().unwrap_or(64);
                self.model
                    .calibrate(kind, input_size, config.stream_length)
                    .rmse
            })
            .collect()
    }

    /// Classification error rate of `network` under the configuration's
    /// injected hardware noise.
    ///
    /// Noise with the calibrated standard deviation is added after every
    /// activation layer (each activation layer corresponds to one paper
    /// layer) and after the final output layer, then clamped to `[-1, 1]`
    /// where applicable.
    ///
    /// # Panics
    ///
    /// Panics if `images` and `labels` differ in length or are empty.
    pub fn error_rate(
        &self,
        network: &mut Network,
        config: &ScNetworkConfig,
        images: &[Tensor],
        labels: &[usize],
        seed: u64,
    ) -> f64 {
        assert_eq!(images.len(), labels.len(), "each image needs a label");
        assert!(!images.is_empty(), "evaluation set is empty");
        let sigmas = self.layer_sigmas(config);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut errors = 0usize;
        for (image, &label) in images.iter().zip(labels.iter()) {
            let prediction = self.predict_with_noise(network, image, &sigmas, &mut rng);
            if prediction != label {
                errors += 1;
            }
        }
        errors as f64 / images.len() as f64
    }

    /// Degradation of the error rate relative to the noise-free network, in
    /// percentage points (the "Inaccuracy (%)" column of Table 6).
    pub fn inaccuracy_percent(
        &self,
        network: &mut Network,
        config: &ScNetworkConfig,
        images: &[Tensor],
        labels: &[usize],
        seed: u64,
    ) -> f64 {
        let baseline = network.error_rate(images, labels);
        let noisy = self.error_rate(network, config, images, labels, seed);
        (noisy - baseline).max(0.0) * 100.0
    }

    fn predict_with_noise(
        &self,
        network: &mut Network,
        image: &Tensor,
        sigmas: &[f64],
        rng: &mut StdRng,
    ) -> usize {
        let mut current = image.clone();
        let mut activation_index = 0usize;
        let layer_count = network.layer_count();
        for (index, layer) in network.layers_mut().iter_mut().enumerate() {
            current = layer.forward(&current);
            let is_last = index + 1 == layer_count;
            let inject_for = if layer.name() == "tanh" {
                let sigma = sigmas.get(activation_index).copied();
                activation_index += 1;
                sigma
            } else if is_last {
                sigmas.last().copied()
            } else {
                None
            };
            if let Some(sigma) = inject_for {
                if sigma > 0.0 {
                    let clamp = layer.name() == "tanh";
                    for value in current.as_mut_slice() {
                        let noise = gaussian(rng) * sigma as f32;
                        *value += noise;
                        if clamp {
                            *value = value.clamp(-1.0, 1.0);
                        }
                    }
                }
            }
        }
        current.argmax()
    }
}

/// Standard normal sample via Box-Muller (avoids pulling in rand_distr).
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_nn::dataset::SyntheticDigits;
    use sc_nn::lenet::{tiny_lenet, PoolingStyle};
    use sc_nn::network::TrainingOptions;

    fn trained_tiny() -> (Network, SyntheticDigits) {
        let data = SyntheticDigits::generate(10, 5);
        let mut network = tiny_lenet(3);
        let options = TrainingOptions {
            epochs: 3,
            learning_rate: 0.08,
            shuffle_seed: 2,
            learning_rate_decay: 0.9,
        };
        network.train(&data.train_images, &data.train_labels, &options);
        (network, data)
    }

    fn config(kind: FeatureBlockKind, length: usize) -> ScNetworkConfig {
        ScNetworkConfig::new("test", vec![kind; 3], length, PoolingStyle::Max)
    }

    #[test]
    fn bucketing_caps_large_sizes() {
        assert_eq!(bucket_input_size(10), 16);
        assert_eq!(bucket_input_size(25), 25);
        assert_eq!(bucket_input_size(100), 128);
        assert_eq!(bucket_input_size(800), 256);
    }

    #[test]
    fn calibration_is_cached() {
        let model = FebErrorModel::fast();
        let a = model.calibrate(FeatureBlockKind::ApcAvgBtanh, 16, 128);
        let b = model.calibrate(FeatureBlockKind::ApcAvgBtanh, 16, 128);
        assert_eq!(a, b);
        assert_eq!(model.cached_points(), 1);
        let _ = model.calibrate(FeatureBlockKind::MuxAvgStanh, 16, 128);
        assert_eq!(model.cached_points(), 2);
    }

    #[test]
    fn apc_calibration_has_smaller_error_than_mux_avg() {
        let model = FebErrorModel::fast();
        let apc = model.calibrate(FeatureBlockKind::ApcAvgBtanh, 25, 256);
        let mux = model.calibrate(FeatureBlockKind::MuxAvgStanh, 25, 256);
        assert!(
            apc.rmse < mux.rmse,
            "APC rmse {} vs MUX rmse {}",
            apc.rmse,
            mux.rmse
        );
        assert!(apc.mean_absolute > 0.0);
    }

    #[test]
    fn gaussian_has_roughly_unit_variance() {
        let mut rng = StdRng::seed_from_u64(9);
        let samples: Vec<f32> = (0..4000).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / samples.len() as f32;
        assert!(mean.abs() < 0.1);
        assert!((var - 1.0).abs() < 0.15);
    }

    #[test]
    fn zero_noise_matches_baseline() {
        let (mut network, data) = trained_tiny();
        let model = FebErrorModel::fast();
        let injection = ErrorInjection::new(&model, vec![25, 200, 128]);
        let baseline = network.error_rate(&data.test_images, &data.test_labels);
        // A configuration with zero sigma everywhere is simulated by checking
        // that sigmas drive the evaluation: manually verify via layer_sigmas.
        let cfg = config(FeatureBlockKind::ApcMaxBtanh, 1024);
        let sigmas = injection.layer_sigmas(&cfg);
        assert_eq!(sigmas.len(), 3);
        // The noisy error rate is at least the baseline minus statistical
        // fluctuation (injection can only hurt on average).
        let noisy =
            injection.error_rate(&mut network, &cfg, &data.test_images, &data.test_labels, 1);
        assert!(noisy + 0.2 >= baseline);
    }

    #[test]
    fn heavier_noise_hurts_more() {
        let (mut network, data) = trained_tiny();
        let model = FebErrorModel::fast();
        let injection = ErrorInjection::lenet5(&model);
        let accurate = config(FeatureBlockKind::ApcMaxBtanh, 1024);
        let sloppy = config(FeatureBlockKind::MuxAvgStanh, 256);
        let accurate_err = injection.error_rate(
            &mut network,
            &accurate,
            &data.test_images,
            &data.test_labels,
            7,
        );
        let sloppy_err = injection.error_rate(
            &mut network,
            &sloppy,
            &data.test_images,
            &data.test_labels,
            7,
        );
        assert!(
            sloppy_err >= accurate_err,
            "MUX-Avg at L=256 ({sloppy_err}) should not beat APC-Max at L=1024 ({accurate_err})"
        );
    }

    #[test]
    fn inaccuracy_percent_is_non_negative() {
        let (mut network, data) = trained_tiny();
        let model = FebErrorModel::fast();
        let injection = ErrorInjection::lenet5(&model);
        let cfg = config(FeatureBlockKind::ApcMaxBtanh, 512);
        let degradation = injection.inaccuracy_percent(
            &mut network,
            &cfg,
            &data.test_images,
            &data.test_labels,
            3,
        );
        assert!(degradation >= 0.0);
        assert!(degradation <= 100.0);
    }
}
