//! Weight-storage optimization (Section 5 of the paper).
//!
//! Three levers reduce the weight-storage cost of the SC-DCNN:
//!
//! 1. filter-aware SRAM sharing (modelled in [`sc_hw::sram`] and applied by
//!    the LeNet-5 mapping),
//! 2. low-precision storage for all layers (Fig. 13, ~10.3× area saving),
//! 3. layer-wise precision such as the 7-7-6 scheme (12× area, 11.9× power
//!    savings versus the 64-bit baseline).
//!
//! This module evaluates the accuracy impact of precision schemes on a
//! trained network and the corresponding SRAM savings, producing the data
//! behind Fig. 13 and the Section 5.2/5.3 claims.

use sc_hw::sram::{sram_cost, SramConfig, BASELINE_WEIGHT_BITS};
use sc_nn::lenet::lenet5_layer_shapes;
use sc_nn::network::Network;
use sc_nn::quantize::{quantize_network, quantize_single_layer, PrecisionScheme};
use sc_nn::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Result of evaluating one weight-precision configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrecisionEvaluation {
    /// Description of the precision assignment (e.g. `"all layers @ 7"`).
    pub description: String,
    /// Weight precision(s) applied.
    pub bits: Vec<usize>,
    /// Network error rate after quantization (fraction misclassified).
    pub error_rate: f64,
    /// SRAM area saving versus the 64-bit baseline.
    pub area_saving: f64,
    /// SRAM (leakage) power saving versus the 64-bit baseline.
    pub power_saving: f64,
}

/// Evaluates a uniform precision across all layers on a clone of the
/// network's weights: the network is quantized, evaluated, and the result
/// reported together with the modelled SRAM savings for LeNet-5's weight
/// counts.
pub fn evaluate_uniform_precision(
    network: &mut Network,
    bits: usize,
    images: &[Tensor],
    labels: &[usize],
) -> PrecisionEvaluation {
    let snapshot = network.weight_snapshots();
    let scheme = PrecisionScheme::uniform(bits, snapshot.len());
    quantize_network(network, &scheme);
    let error_rate = network.error_rate(images, labels);
    restore_weights(network, &snapshot);
    let (area_saving, power_saving) = lenet5_sram_savings(&[bits; 3]);
    PrecisionEvaluation {
        description: format!("all layers @ {bits} bits"),
        bits: vec![bits],
        error_rate,
        area_saving,
        power_saving,
    }
}

/// Evaluates reducing the precision of a single paper layer while the others
/// stay at full precision (the per-layer curves of Fig. 13).
pub fn evaluate_single_layer_precision(
    network: &mut Network,
    layer_index: usize,
    bits: usize,
    images: &[Tensor],
    labels: &[usize],
) -> PrecisionEvaluation {
    let snapshot = network.weight_snapshots();
    let applied = quantize_single_layer(network, layer_index, bits);
    let error_rate = network.error_rate(images, labels);
    restore_weights(network, &snapshot);
    assert!(
        applied,
        "layer index {layer_index} has no weights to quantize"
    );
    PrecisionEvaluation {
        description: format!("layer {layer_index} @ {bits} bits"),
        bits: vec![bits],
        error_rate,
        area_saving: 1.0,
        power_saving: 1.0,
    }
}

/// Evaluates a layer-wise precision scheme (e.g. 7-7-6) on the network and
/// reports the LeNet-5 SRAM savings.
pub fn evaluate_layer_wise_precision(
    network: &mut Network,
    bits: &[usize],
    images: &[Tensor],
    labels: &[usize],
) -> PrecisionEvaluation {
    let snapshot = network.weight_snapshots();
    let scheme = layerwise_scheme_for_network(network, bits);
    quantize_network(network, &scheme);
    let error_rate = network.error_rate(images, labels);
    restore_weights(network, &snapshot);
    let (area_saving, power_saving) = lenet5_sram_savings(bits);
    PrecisionEvaluation {
        description: format!("layer-wise {bits:?}"),
        bits: bits.to_vec(),
        error_rate,
        area_saving,
        power_saving,
    }
}

/// Expands a paper-layer precision assignment (3 entries for LeNet-5) to the
/// network's parameterized layers (4 for LeNet-5: conv1, conv2, fc1, fc2 —
/// the two fully-connected layers share the "Layer2" precision).
fn layerwise_scheme_for_network(network: &Network, bits: &[usize]) -> PrecisionScheme {
    let parameterized = network
        .layers()
        .iter()
        .filter(|l| l.weights().is_some())
        .count();
    let mut expanded = Vec::with_capacity(parameterized);
    for index in 0..parameterized {
        let paper_layer = index.min(bits.len().saturating_sub(1));
        expanded.push(bits[paper_layer.min(bits.len() - 1)]);
    }
    PrecisionScheme::per_layer(expanded)
}

/// SRAM area and power savings of a layer-wise precision scheme on LeNet-5
/// versus the 64-bit baseline, aggregated over the paper's three layers.
pub fn lenet5_sram_savings(bits: &[usize]) -> (f64, f64) {
    let shapes = lenet5_layer_shapes();
    let mut reduced_area = 0.0;
    let mut baseline_area = 0.0;
    let mut reduced_power = 0.0;
    let mut baseline_power = 0.0;
    for shape in &shapes {
        let layer_bits = bits
            .get(shape.index)
            .copied()
            .unwrap_or(*bits.last().unwrap_or(&7));
        let reduced = sram_cost(&SramConfig::unshared(shape.weight_count, layer_bits));
        let baseline = sram_cost(&SramConfig::unshared(
            shape.weight_count,
            BASELINE_WEIGHT_BITS,
        ));
        reduced_area += reduced.area_um2;
        baseline_area += baseline.area_um2;
        reduced_power += reduced.leakage_mw;
        baseline_power += baseline.leakage_mw;
    }
    (baseline_area / reduced_area, baseline_power / reduced_power)
}

fn restore_weights(network: &mut Network, snapshot: &[Tensor]) {
    let mut index = 0usize;
    for layer in network.layers_mut() {
        if let Some(weights) = layer.weights_mut() {
            *weights = snapshot[index].clone();
            index += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_nn::dataset::SyntheticDigits;
    use sc_nn::lenet::tiny_lenet;
    use sc_nn::network::TrainingOptions;

    fn trained() -> (Network, SyntheticDigits) {
        let data = SyntheticDigits::generate(10, 21);
        let mut network = tiny_lenet(4);
        network.train(
            &data.train_images,
            &data.train_labels,
            &TrainingOptions {
                epochs: 3,
                learning_rate: 0.08,
                ..Default::default()
            },
        );
        (network, data)
    }

    #[test]
    fn lenet5_776_savings_match_paper_magnitude() {
        let (area, power) = lenet5_sram_savings(&[7, 7, 6]);
        // The paper reports 12x area and 11.9x power for the 7-7-6 scheme.
        assert!(
            (7.0..=14.0).contains(&area),
            "area saving {area:.1}x out of range"
        );
        assert!(
            (7.0..=14.0).contains(&power),
            "power saving {power:.1}x out of range"
        );
    }

    #[test]
    fn savings_grow_as_precision_drops() {
        let (high, _) = lenet5_sram_savings(&[12, 12, 12]);
        let (low, _) = lenet5_sram_savings(&[4, 4, 4]);
        assert!(low > high);
    }

    #[test]
    fn uniform_precision_evaluation_restores_weights() {
        let (mut network, data) = trained();
        let before = network.weight_snapshots();
        let report =
            evaluate_uniform_precision(&mut network, 3, &data.test_images, &data.test_labels);
        let after = network.weight_snapshots();
        for (a, b) in before.iter().zip(after.iter()) {
            assert_eq!(
                a.as_slice(),
                b.as_slice(),
                "weights must be restored after evaluation"
            );
        }
        assert!(report.error_rate >= 0.0 && report.error_rate <= 1.0);
        assert!(report.area_saving > 1.0);
    }

    #[test]
    fn very_low_precision_hurts_accuracy() {
        let (mut network, data) = trained();
        let baseline = network.error_rate(&data.test_images, &data.test_labels);
        let coarse =
            evaluate_uniform_precision(&mut network, 1, &data.test_images, &data.test_labels);
        let fine =
            evaluate_uniform_precision(&mut network, 10, &data.test_images, &data.test_labels);
        assert!(coarse.error_rate >= fine.error_rate);
        assert!(fine.error_rate <= baseline + 0.1);
    }

    #[test]
    fn single_layer_evaluation_touches_one_layer_only() {
        let (mut network, data) = trained();
        let report = evaluate_single_layer_precision(
            &mut network,
            0,
            2,
            &data.test_images,
            &data.test_labels,
        );
        assert!(report.error_rate <= 1.0);
        assert!(report.description.contains("layer 0"));
    }

    #[test]
    fn layer_wise_scheme_evaluates() {
        let (mut network, data) = trained();
        let report = evaluate_layer_wise_precision(
            &mut network,
            &[7, 7, 6],
            &data.test_images,
            &data.test_labels,
        );
        assert!(report.area_saving > 5.0);
        assert_eq!(report.bits, vec![7, 7, 6]);
    }
}
