//! Design-space optimization (Section 6.3 of the paper).
//!
//! The paper's overall optimization procedure is a pruning search: starting
//! from candidate layer-wise feature-extraction-block assignments at the
//! maximum bit-stream length, any configuration whose network-accuracy
//! degradation stays within the threshold (1.5 %) has its bit-stream length
//! halved to save energy; configurations that miss the accuracy target are
//! removed. The process iterates until no configuration is left, and the
//! surviving evaluations form Table 6, from which the most area-, power- and
//! energy-efficient designs are picked.

use crate::config::ScNetworkConfig;
use crate::mapping::lenet5_cost;
use sc_blocks::feature_block::FeatureBlockKind;
use sc_hw::network_cost::NetworkCost;
use sc_nn::lenet::PoolingStyle;
use serde::{Deserialize, Serialize};

/// Options controlling the design-space search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizerOptions {
    /// Maximum allowed network-accuracy degradation in percentage points
    /// (the paper uses 1.5 %).
    pub accuracy_threshold_percent: f64,
    /// Maximum bit-stream length to start from (the paper uses 1024).
    pub max_stream_length: usize,
    /// Minimum bit-stream length to consider.
    pub min_stream_length: usize,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        Self {
            accuracy_threshold_percent: 1.5,
            max_stream_length: 1024,
            min_stream_length: 128,
        }
    }
}

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateEvaluation {
    /// The configuration that was evaluated.
    pub config: ScNetworkConfig,
    /// Network accuracy degradation in percentage points.
    pub inaccuracy_percent: f64,
    /// Hardware cost roll-up for the configuration.
    pub cost: NetworkCost,
    /// Whether the configuration met the accuracy threshold.
    pub meets_accuracy: bool,
}

/// The Section 6.3 pruning optimizer.
///
/// The accuracy of a candidate is supplied by a caller-provided closure so
/// the search can run against the full error-injection evaluation (the
/// Table 6 binary), a trained reduced network (tests), or an analytic proxy.
#[derive(Debug)]
pub struct DesignSpaceOptimizer {
    options: OptimizerOptions,
}

impl DesignSpaceOptimizer {
    /// Creates an optimizer with the given options.
    pub fn new(options: OptimizerOptions) -> Self {
        Self { options }
    }

    /// The configured options.
    pub fn options(&self) -> &OptimizerOptions {
        &self.options
    }

    /// Enumerates the candidate layer-kind assignments for a pooling style:
    /// every combination of MUX/APC inner products across the three paper
    /// layers, with the pooling blocks fixed by the style.
    pub fn candidate_assignments(pooling: PoolingStyle) -> Vec<Vec<FeatureBlockKind>> {
        let (mux, apc) = match pooling {
            PoolingStyle::Max => (FeatureBlockKind::MuxMaxStanh, FeatureBlockKind::ApcMaxBtanh),
            PoolingStyle::Average => (FeatureBlockKind::MuxAvgStanh, FeatureBlockKind::ApcAvgBtanh),
        };
        let mut assignments = Vec::new();
        for layer0 in [mux, apc] {
            for layer1 in [mux, apc] {
                for layer2 in [mux, apc] {
                    assignments.push(vec![layer0, layer1, layer2]);
                }
            }
        }
        assignments
    }

    /// Runs the pruning search for one pooling style.
    ///
    /// `evaluate_accuracy` maps a configuration to its network-accuracy
    /// degradation in percentage points. Every configuration/length pair
    /// that was evaluated is returned (both surviving and pruned ones) so
    /// Table 6 can show the interesting rows.
    pub fn search(
        &self,
        pooling: PoolingStyle,
        mut evaluate_accuracy: impl FnMut(&ScNetworkConfig) -> f64,
    ) -> Vec<CandidateEvaluation> {
        let mut evaluations = Vec::new();
        let mut active: Vec<ScNetworkConfig> = Self::candidate_assignments(pooling)
            .into_iter()
            .enumerate()
            .map(|(index, kinds)| {
                ScNetworkConfig::new(
                    format!("{}-{}", pooling.name(), index),
                    kinds,
                    self.options.max_stream_length,
                    pooling,
                )
            })
            .collect();
        while !active.is_empty() {
            let mut survivors = Vec::new();
            for config in active {
                let inaccuracy = evaluate_accuracy(&config);
                let meets = inaccuracy <= self.options.accuracy_threshold_percent;
                evaluations.push(CandidateEvaluation {
                    cost: lenet5_cost(&config),
                    inaccuracy_percent: inaccuracy,
                    meets_accuracy: meets,
                    config: config.clone(),
                });
                if meets && config.stream_length / 2 >= self.options.min_stream_length {
                    survivors.push(config.with_halved_stream());
                }
            }
            active = survivors;
        }
        evaluations
    }

    /// The most area-efficient configuration among those meeting the
    /// accuracy threshold.
    pub fn most_area_efficient(
        evaluations: &[CandidateEvaluation],
    ) -> Option<&CandidateEvaluation> {
        evaluations
            .iter()
            .filter(|e| e.meets_accuracy)
            .max_by(|a, b| {
                a.cost
                    .area_efficiency
                    .partial_cmp(&b.cost.area_efficiency)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// The most energy-efficient configuration among those meeting the
    /// accuracy threshold.
    pub fn most_energy_efficient(
        evaluations: &[CandidateEvaluation],
    ) -> Option<&CandidateEvaluation> {
        evaluations
            .iter()
            .filter(|e| e.meets_accuracy)
            .min_by(|a, b| {
                a.cost
                    .energy_uj
                    .partial_cmp(&b.cost.energy_uj)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic accuracy model: APC layers and longer streams help, the
    /// fully-connected layer matters most. Mirrors the qualitative findings
    /// of Figures 14 and 16 without bit-level simulation.
    fn synthetic_accuracy(config: &ScNetworkConfig) -> f64 {
        let mut degradation: f64 = 0.0;
        let layer_weight = [0.4, 0.6, 1.2];
        for (layer, kind) in config.layer_kinds.iter().enumerate() {
            let base = match kind {
                FeatureBlockKind::MuxAvgStanh => 2.0,
                FeatureBlockKind::MuxMaxStanh => 1.2,
                FeatureBlockKind::ApcAvgBtanh => 0.35,
                FeatureBlockKind::ApcMaxBtanh => 0.25,
            };
            degradation += base * layer_weight[layer.min(2)];
        }
        let length_factor = 1024.0 / config.stream_length as f64;
        degradation * (0.55 + 0.45 * length_factor.log2().max(0.0) * 0.5 + 0.45)
    }

    #[test]
    fn candidate_assignments_cover_all_combinations() {
        let max = DesignSpaceOptimizer::candidate_assignments(PoolingStyle::Max);
        assert_eq!(max.len(), 8);
        assert!(max.iter().all(|kinds| kinds.len() == 3));
        assert!(max
            .iter()
            .all(|kinds| kinds.iter().all(|k| k.uses_max_pooling())));
        let avg = DesignSpaceOptimizer::candidate_assignments(PoolingStyle::Average);
        assert!(avg
            .iter()
            .all(|kinds| kinds.iter().all(|k| !k.uses_max_pooling())));
    }

    #[test]
    fn search_prunes_and_halves() {
        let optimizer = DesignSpaceOptimizer::new(OptimizerOptions {
            accuracy_threshold_percent: 1.5,
            max_stream_length: 1024,
            min_stream_length: 256,
        });
        let evaluations = optimizer.search(PoolingStyle::Max, synthetic_accuracy);
        assert!(!evaluations.is_empty());
        // Some configurations must survive at least one halving step.
        assert!(evaluations.iter().any(|e| e.config.stream_length < 1024));
        // Pruned configurations are recorded too.
        assert!(evaluations.iter().any(|e| !e.meets_accuracy));
        // No configuration is evaluated below the minimum stream length.
        assert!(evaluations.iter().all(|e| e.config.stream_length >= 256));
    }

    #[test]
    fn accuracy_threshold_controls_survivors() {
        let strict = DesignSpaceOptimizer::new(OptimizerOptions {
            accuracy_threshold_percent: 0.1,
            ..Default::default()
        });
        let lenient = DesignSpaceOptimizer::new(OptimizerOptions {
            accuracy_threshold_percent: 5.0,
            ..Default::default()
        });
        let strict_count = strict
            .search(PoolingStyle::Max, synthetic_accuracy)
            .iter()
            .filter(|e| e.meets_accuracy)
            .count();
        let lenient_count = lenient
            .search(PoolingStyle::Max, synthetic_accuracy)
            .iter()
            .filter(|e| e.meets_accuracy)
            .count();
        assert!(lenient_count > strict_count);
    }

    #[test]
    fn best_designs_meet_accuracy_and_prefer_short_streams() {
        let optimizer = DesignSpaceOptimizer::new(OptimizerOptions::default());
        let evaluations = optimizer.search(PoolingStyle::Average, synthetic_accuracy);
        if let Some(best_energy) = DesignSpaceOptimizer::most_energy_efficient(&evaluations) {
            assert!(best_energy.meets_accuracy);
            // Energy-optimal designs use the shortest surviving stream.
            assert!(best_energy.config.stream_length <= 512);
        }
        if let Some(best_area) = DesignSpaceOptimizer::most_area_efficient(&evaluations) {
            assert!(best_area.meets_accuracy);
        }
    }
}
