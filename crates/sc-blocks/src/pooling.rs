//! Pooling function blocks.
//!
//! Average pooling exploits the MUX's inherent `1/n` down-scaling, so it is
//! nearly free. Max pooling over stochastic streams normally requires the
//! whole stream to be counted before the maximum is known; the paper's
//! *hardware-oriented max pooling* instead slices the streams into `c`-bit
//! segments, counts ones per segment, and forwards the segment of the stream
//! that *previously* had the largest count — an approximation with near-zero
//! latency (Fig. 8, Table 4).
//!
//! Both pooling operations exist in two domains:
//!
//! * stream domain (inputs are [`BitStream`]s) — used after MUX-based inner
//!   product blocks;
//! * binary domain (inputs are [`CountStream`]s) — used after APC-based inner
//!   product blocks, where counters are replaced by accumulators.
//!
//! The MUX average-pooling path replays precomputed selector plans
//! ([`MuxSelectorPlan`]) whose masked-OR inner loop dispatches through the
//! word-generic kernel layer ([`sc_core::word`]); segment counting in the
//! hardware max path rides the same backend-dispatched popcount kernel.

use sc_core::add::{CountStream, MuxAdder, MuxSelectorPlan};
use sc_core::arena::StreamArena;
use sc_core::bitstream::BitStream;
use sc_core::error::ScError;
use sc_core::rng::Lfsr;
use serde::{Deserialize, Serialize};

/// Identifies a pooling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolingKind {
    /// Average pooling (MUX in the stream domain, adder+divider in binary).
    Average,
    /// The paper's hardware-oriented (approximate) max pooling.
    HardwareMax,
    /// Exact max pooling that inspects whole streams (software baseline).
    SoftwareMax,
}

impl PoolingKind {
    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            PoolingKind::Average => "Avg",
            PoolingKind::HardwareMax => "Max",
            PoolingKind::SoftwareMax => "SoftMax",
        }
    }
}

/// MUX-based average pooling block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AveragePooling {
    /// Seed for the MUX selector.
    pub seed: u64,
}

impl AveragePooling {
    /// Creates an average pooling block.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Pools bit-streams by selecting one input per cycle (MUX), producing a
    /// stream whose value is the mean of the inputs.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] for an empty slice and
    /// [`ScError::LengthMismatch`] if the streams differ in length.
    pub fn pool_streams(&self, inputs: &[BitStream]) -> Result<BitStream, ScError> {
        let mut selector = Lfsr::new_32((self.seed as u32) | 1);
        MuxAdder::new().sum(inputs, &mut selector)
    }

    /// Draws this block's selector samples for `lanes` streams of
    /// `stream_bits` bits into a reusable [`MuxSelectorPlan`].
    ///
    /// [`AveragePooling::pool_streams_with_plan`] replays the plan
    /// bit-identically to [`AveragePooling::pool_streams`]; every unit of a
    /// layer re-creates the same selector LFSR, so one plan serves them all.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] for a zero lane count and
    /// [`ScError::InvalidParameter`] for a zero stream length.
    pub fn selector_plan(
        &self,
        lanes: usize,
        stream_bits: usize,
    ) -> Result<MuxSelectorPlan, ScError> {
        let mut selector = Lfsr::new_32((self.seed as u32) | 1);
        MuxSelectorPlan::new(lanes, stream_bits, &mut selector)
    }

    /// Pools bit-streams replaying a pre-drawn selector plan (bit-exact with
    /// [`AveragePooling::pool_streams`] for a plan from
    /// [`AveragePooling::selector_plan`]).
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] for an empty slice and
    /// [`ScError::LengthMismatch`] for streams not matching the plan.
    pub fn pool_streams_with_plan(
        &self,
        inputs: &[BitStream],
        plan: &MuxSelectorPlan,
    ) -> Result<BitStream, ScError> {
        MuxAdder::new().sum_with_plan(inputs, plan)
    }

    /// [`AveragePooling::pool_streams_with_plan`] with the output buffer
    /// taken from `arena` (recycle it when done). Results are identical.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AveragePooling::pool_streams_with_plan`].
    pub fn pool_streams_with_plan_with(
        &self,
        inputs: &[BitStream],
        plan: &MuxSelectorPlan,
        arena: &mut StreamArena,
    ) -> Result<BitStream, ScError> {
        let first = inputs.first().ok_or(ScError::EmptyInput)?;
        let mut out = arena.take_zeroed(first.stream_length());
        match MuxAdder::new().sum_with_plan_into(inputs, plan, &mut out) {
            Ok(()) => Ok(out),
            Err(error) => {
                arena.recycle(out);
                Err(error)
            }
        }
    }

    /// Pools binary count streams with an adder and truncating divider.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] for an empty slice and
    /// [`ScError::LengthMismatch`] if the streams differ in length.
    pub fn pool_counts(&self, inputs: &[CountStream]) -> Result<CountStream, ScError> {
        CountStream::truncating_average(inputs)
    }

    /// The floating-point reference for this pooling operation.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn reference(&self, values: &[f64]) -> f64 {
        assert!(!values.is_empty(), "average of an empty set is undefined");
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// The paper's hardware-oriented max pooling block (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardwareMaxPooling {
    /// Segment length `c` in bits (the paper uses 16).
    pub segment_bits: usize,
}

impl Default for HardwareMaxPooling {
    fn default() -> Self {
        Self { segment_bits: 16 }
    }
}

impl HardwareMaxPooling {
    /// Creates a hardware-oriented max pooling block with the given segment
    /// length.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParameter`] if `segment_bits` is zero.
    pub fn new(segment_bits: usize) -> Result<Self, ScError> {
        if segment_bits == 0 {
            return Err(ScError::InvalidParameter {
                name: "segment_bits",
                message: "segment length must be non-zero".into(),
            });
        }
        Ok(Self { segment_bits })
    }

    /// Pools bit-streams: for every segment, the stream that had the largest
    /// ones-count in the *previous* segment is forwarded (the first segment
    /// forwards input 0, which the paper describes as a random choice with
    /// negligible impact).
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] for an empty slice and
    /// [`ScError::LengthMismatch`] if the streams differ in length.
    pub fn pool_streams(&self, inputs: &[BitStream]) -> Result<BitStream, ScError> {
        let first = inputs.first().ok_or(ScError::EmptyInput)?;
        let mut output = BitStream::zeros(first.stream_length());
        self.pool_streams_into(inputs, &mut output)?;
        Ok(output)
    }

    /// [`HardwareMaxPooling::pool_streams`] with the output buffer taken
    /// from `arena` (recycle it when done). Results are identical.
    ///
    /// # Errors
    ///
    /// Same conditions as [`HardwareMaxPooling::pool_streams`].
    pub fn pool_streams_with(
        &self,
        inputs: &[BitStream],
        arena: &mut StreamArena,
    ) -> Result<BitStream, ScError> {
        let first = inputs.first().ok_or(ScError::EmptyInput)?;
        let mut output = arena.take_zeroed(first.stream_length());
        match self.pool_streams_into(inputs, &mut output) {
            Ok(()) => Ok(output),
            Err(error) => {
                arena.recycle(output);
                Err(error)
            }
        }
    }

    fn pool_streams_into(
        &self,
        inputs: &[BitStream],
        output: &mut BitStream,
    ) -> Result<(), ScError> {
        let first = inputs.first().ok_or(ScError::EmptyInput)?;
        let len = first.len();
        for stream in inputs {
            if stream.len() != len {
                return Err(ScError::LengthMismatch {
                    left: len,
                    right: stream.len(),
                });
            }
        }
        let mut selected = 0usize;
        let mut start = 0usize;
        while start < len {
            let end = (start + self.segment_bits).min(len);
            // Forward the currently selected stream's bits for this segment
            // (word-level masked copy, no per-bit get/set).
            output.copy_range_from(&inputs[selected], start, end);
            // Count ones in this segment for every candidate; the winner
            // drives the selection for the *next* segment.
            let mut best = 0usize;
            let mut best_count = 0usize;
            for (lane, stream) in inputs.iter().enumerate() {
                let count = stream.count_ones_in_range(start, end);
                if count > best_count {
                    best_count = count;
                    best = lane;
                }
            }
            selected = best;
            start = end;
        }
        Ok(())
    }

    /// Pools binary count streams: identical control flow, but the per-segment
    /// counters become accumulators of the binary counts (APC-Max-Btanh).
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] for an empty slice and
    /// [`ScError::LengthMismatch`] if the streams differ in length.
    pub fn pool_counts(&self, inputs: &[CountStream]) -> Result<CountStream, ScError> {
        let len = common_count_length(inputs)?;
        self.pool_counts_into(inputs, vec![0u16; len])
    }

    /// [`HardwareMaxPooling::pool_counts`] with the output count buffer
    /// taken from `arena`'s count pool (recycle the result's buffer via
    /// [`CountStream::into_counts`] when done). Results are identical.
    ///
    /// # Errors
    ///
    /// Same conditions as [`HardwareMaxPooling::pool_counts`]; validation
    /// happens before the buffer is taken, so an invalid input cannot leak
    /// one from the pool.
    pub fn pool_counts_with(
        &self,
        inputs: &[CountStream],
        arena: &mut StreamArena,
    ) -> Result<CountStream, ScError> {
        let len = common_count_length(inputs)?;
        self.pool_counts_into(inputs, arena.take_counts(len))
    }

    /// Shared body of the `pool_counts` variants over already-validated
    /// inputs and a zeroed output buffer of the common length.
    fn pool_counts_into(
        &self,
        inputs: &[CountStream],
        mut out_counts: Vec<u16>,
    ) -> Result<CountStream, ScError> {
        let len = out_counts.len();
        let lanes = inputs[0].lanes();
        let mut selected = 0usize;
        let mut start = 0usize;
        while start < len {
            let end = (start + self.segment_bits).min(len);
            out_counts[start..end].copy_from_slice(&inputs[selected].counts()[start..end]);
            let mut best = 0usize;
            let mut best_total = 0u64;
            for (lane, stream) in inputs.iter().enumerate() {
                let total: u64 = stream.counts()[start..end]
                    .iter()
                    .map(|&c| u64::from(c))
                    .sum();
                if total > best_total {
                    best_total = total;
                    best = lane;
                }
            }
            selected = best;
            start = end;
        }
        CountStream::new(out_counts, lanes)
    }

    /// The floating-point reference for max pooling.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn reference(&self, values: &[f64]) -> f64 {
        assert!(!values.is_empty(), "max of an empty set is undefined");
        values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Validates a count-stream operand set and returns the common length.
fn common_count_length(inputs: &[CountStream]) -> Result<usize, ScError> {
    let first = inputs.first().ok_or(ScError::EmptyInput)?;
    let len = first.len();
    for stream in inputs {
        if stream.len() != len {
            return Err(ScError::LengthMismatch {
                left: len,
                right: stream.len(),
            });
        }
    }
    Ok(len)
}

/// Software max pooling baseline: counts ones over the whole streams and
/// returns the stream with the largest total (what a non-hardware-constrained
/// implementation would do, at the cost of full-stream latency).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoftwareMaxPooling;

impl SoftwareMaxPooling {
    /// Creates a software max pooling baseline.
    pub fn new() -> Self {
        Self
    }

    /// Returns a clone of the input stream with the largest ones count.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] for an empty slice.
    pub fn pool_streams(&self, inputs: &[BitStream]) -> Result<BitStream, ScError> {
        inputs
            .iter()
            .max_by_key(|s| s.count_ones())
            .cloned()
            .ok_or(ScError::EmptyInput)
    }

    /// Returns a clone of the count stream with the largest total.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::EmptyInput`] for an empty slice.
    pub fn pool_counts(&self, inputs: &[CountStream]) -> Result<CountStream, ScError> {
        inputs
            .iter()
            .max_by_key(|s| s.total())
            .cloned()
            .ok_or(ScError::EmptyInput)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::bitstream::StreamLength;
    use sc_core::sng::{Sng, SngKind};

    fn stream_for(value: f64, len: usize, seed: u64) -> BitStream {
        Sng::new(SngKind::Lfsr32, seed)
            .generate_bipolar(value, StreamLength::new(len))
            .unwrap()
    }

    #[test]
    fn average_pooling_tracks_mean() {
        let values = [0.8, -0.2, 0.4, 0.1];
        let streams: Vec<BitStream> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| stream_for(v, 8192, 10 + i as u64))
            .collect();
        let pooled = AveragePooling::new(3).pool_streams(&streams).unwrap();
        let expected = AveragePooling::new(3).reference(&values);
        assert!((pooled.bipolar_value() - expected).abs() < 0.06);
    }

    #[test]
    fn average_pooling_plan_replay_is_bit_exact() {
        let values = [0.8, -0.2, 0.4, 0.1];
        for len in [100usize, 127, 1024] {
            let streams: Vec<BitStream> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| stream_for(v, len, 10 + i as u64))
                .collect();
            let pool = AveragePooling::new(0xDEAD ^ len as u64);
            let direct = pool.pool_streams(&streams).unwrap();
            let plan = pool.selector_plan(streams.len(), len).unwrap();
            let replayed = pool.pool_streams_with_plan(&streams, &plan).unwrap();
            assert_eq!(replayed, direct, "len {len}");
            // Replaying twice gives the same bits (the plan is immutable).
            assert_eq!(
                pool.pool_streams_with_plan(&streams, &plan).unwrap(),
                direct
            );
        }
    }

    #[test]
    fn average_pooling_counts_truncate() {
        let a = CountStream::new(vec![3, 1], 4).unwrap();
        let b = CountStream::new(vec![2, 2], 4).unwrap();
        let pooled = AveragePooling::new(1).pool_counts(&[a, b]).unwrap();
        assert_eq!(pooled.counts(), &[2, 1]);
    }

    #[test]
    fn hardware_max_tracks_software_max() {
        let values = [0.7, -0.3, 0.2, 0.5];
        let streams: Vec<BitStream> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| stream_for(v, 2048, 40 + i as u64))
            .collect();
        let hw = HardwareMaxPooling::new(16)
            .unwrap()
            .pool_streams(&streams)
            .unwrap();
        let sw = SoftwareMaxPooling::new().pool_streams(&streams).unwrap();
        assert!(
            (hw.bipolar_value() - sw.bipolar_value()).abs() < 0.15,
            "hardware max {} deviates from software max {}",
            hw.bipolar_value(),
            sw.bipolar_value()
        );
    }

    #[test]
    fn hardware_max_never_exceeds_true_max_by_much() {
        let values = [0.6, 0.55, -0.1, 0.0];
        let streams: Vec<BitStream> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| stream_for(v, 4096, 90 + i as u64))
            .collect();
        let hw = HardwareMaxPooling::default()
            .pool_streams(&streams)
            .unwrap();
        assert!(hw.bipolar_value() <= 0.7);
        assert!(hw.bipolar_value() >= 0.4);
    }

    #[test]
    fn hardware_max_handles_non_divisible_lengths() {
        let streams = vec![
            BitStream::from_binary_str("110110111").unwrap(),
            BitStream::from_binary_str("000010001").unwrap(),
        ];
        let pooled = HardwareMaxPooling::new(4)
            .unwrap()
            .pool_streams(&streams)
            .unwrap();
        assert_eq!(pooled.len(), 9);
    }

    #[test]
    fn hardware_max_on_counts_selects_larger_lane() {
        let big = CountStream::new(vec![4, 4, 4, 4], 4).unwrap();
        let small = CountStream::new(vec![0, 0, 0, 0], 4).unwrap();
        let pooled = HardwareMaxPooling::new(2)
            .unwrap()
            .pool_counts(&[small.clone(), big.clone()])
            .unwrap();
        // First segment forwards lane 0 (small), afterwards lane 1 (big).
        assert_eq!(pooled.counts(), &[0, 0, 4, 4]);
    }

    #[test]
    fn arena_backed_pooling_matches_allocating_pooling() {
        let values = [0.8, -0.2, 0.4, 0.1];
        let streams: Vec<BitStream> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| stream_for(v, 127, 10 + i as u64))
            .collect();
        let mut arena = StreamArena::new();
        // Hardware max over streams.
        let hw = HardwareMaxPooling::new(16).unwrap();
        let direct = hw.pool_streams(&streams).unwrap();
        for _ in 0..2 {
            let pooled = hw.pool_streams_with(&streams, &mut arena).unwrap();
            assert_eq!(pooled, direct);
            arena.recycle(pooled);
        }
        assert_eq!(arena.stats().stream_allocs, 1);
        // Average pooling over a replayed plan.
        let avg = AveragePooling::new(77);
        let plan = avg.selector_plan(streams.len(), 127).unwrap();
        let direct = avg.pool_streams_with_plan(&streams, &plan).unwrap();
        let pooled = avg
            .pool_streams_with_plan_with(&streams, &plan, &mut arena)
            .unwrap();
        assert_eq!(pooled, direct);
        arena.recycle(pooled);
        // Hardware max over counts.
        let counts = vec![
            CountStream::new(vec![4u16; 9], 4).unwrap(),
            CountStream::new(vec![1u16; 9], 4).unwrap(),
        ];
        let direct = hw.pool_counts(&counts).unwrap();
        let pooled = hw.pool_counts_with(&counts, &mut arena).unwrap();
        assert_eq!(pooled, direct);
        arena.recycle_counts(pooled.into_counts());
        // Error paths reject empty inputs without leaking buffers.
        assert!(hw.pool_streams_with(&[], &mut arena).is_err());
        assert!(hw.pool_counts_with(&[], &mut arena).is_err());
        assert!(avg
            .pool_streams_with_plan_with(&[], &plan, &mut arena)
            .is_err());
        // A mismatched-length operand set is rejected before a count buffer
        // is taken, so the pool is untouched.
        let before = arena.stats();
        let short = CountStream::new(vec![1u16; 5], 4).unwrap();
        assert!(hw
            .pool_counts_with(&[counts[0].clone(), short], &mut arena)
            .is_err());
        let after = arena.stats();
        assert_eq!(after.count_allocs, before.count_allocs);
        assert_eq!(after.count_reuses, before.count_reuses);
        assert_eq!(after.pooled_counts, before.pooled_counts);
    }

    #[test]
    fn software_max_picks_largest() {
        let a = BitStream::from_binary_str("1100").unwrap();
        let b = BitStream::from_binary_str("1110").unwrap();
        let max = SoftwareMaxPooling::new()
            .pool_streams(&[a, b.clone()])
            .unwrap();
        assert_eq!(max, b);
    }

    #[test]
    fn pooling_rejects_empty_and_mismatched_inputs() {
        assert!(AveragePooling::new(1).pool_streams(&[]).is_err());
        assert!(SoftwareMaxPooling::new().pool_streams(&[]).is_err());
        assert!(HardwareMaxPooling::default().pool_streams(&[]).is_err());
        assert!(HardwareMaxPooling::new(0).is_err());
        let a = BitStream::from_binary_str("10").unwrap();
        let b = BitStream::from_binary_str("100").unwrap();
        assert!(HardwareMaxPooling::default()
            .pool_streams(&[a.clone(), b.clone()])
            .is_err());
        assert!(AveragePooling::new(1).pool_streams(&[a, b]).is_err());
    }

    #[test]
    fn references_match_expectations() {
        assert_eq!(AveragePooling::new(1).reference(&[1.0, 2.0, 3.0, 6.0]), 3.0);
        assert_eq!(
            HardwareMaxPooling::default().reference(&[1.0, -2.0, 0.5]),
            1.0
        );
    }

    #[test]
    fn kind_names_are_distinct() {
        let names: std::collections::HashSet<_> = [
            PoolingKind::Average,
            PoolingKind::HardwareMax,
            PoolingKind::SoftwareMax,
        ]
        .iter()
        .map(|k| k.name())
        .collect();
        assert_eq!(names.len(), 3);
    }
}
