//! Activation function blocks with jointly-optimized state counts.
//!
//! Section 4.4 of the paper stresses that the activation FSM cannot be sized
//! in isolation: the optimal state count depends on the input size `N`
//! (because MUX adders scale by `1/N`), the bit-stream length `L`, and which
//! pooling block precedes it. This module wraps [`sc_core::activation`] with
//! that joint selection logic so the feature-extraction layer can simply ask
//! for "the right activation block for this configuration".

use sc_core::activation::{
    apc_avg_btanh_states, apc_max_btanh_states, mux_avg_stanh_states, mux_max_stanh_states, Btanh,
    Stanh, StanhMode,
};
use sc_core::add::CountStream;
use sc_core::bitstream::BitStream;
use sc_core::error::ScError;
use serde::{Deserialize, Serialize};

/// Which activation implementation a feature extraction block uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivationKind {
    /// FSM-based Stanh, consuming a (scaled) bit-stream.
    Stanh,
    /// Counter-based Btanh, consuming APC binary counts.
    Btanh,
}

impl ActivationKind {
    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ActivationKind::Stanh => "Stanh",
            ActivationKind::Btanh => "Btanh",
        }
    }
}

/// A Stanh activation block whose state count is derived from the feature
/// extraction block configuration (Eq. 1 or Eq. 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StanhBlock {
    states: usize,
    mode: StanhMode,
}

impl StanhBlock {
    /// Builds the Stanh block for a MUX-Avg-Stanh feature extraction block.
    ///
    /// # Errors
    ///
    /// Propagates [`ScError::InvalidParameter`] if the derived state count is
    /// unusable (cannot happen for the supported parameter ranges).
    pub fn for_mux_avg(input_size: usize, stream_length: usize) -> Result<Self, ScError> {
        let states = mux_avg_stanh_states(input_size, stream_length);
        Stanh::new(states)?;
        Ok(Self {
            states,
            mode: StanhMode::Standard,
        })
    }

    /// Builds the re-designed Stanh block for a MUX-Max-Stanh feature
    /// extraction block (shifted output threshold, Eq. 2).
    ///
    /// # Errors
    ///
    /// Propagates [`ScError::InvalidParameter`] if the derived state count is
    /// unusable (cannot happen for the supported parameter ranges).
    pub fn for_mux_max(input_size: usize, stream_length: usize) -> Result<Self, ScError> {
        let states = mux_max_stanh_states(input_size, stream_length);
        Stanh::new(states)?;
        Ok(Self {
            states,
            mode: StanhMode::ShiftedFifth,
        })
    }

    /// Builds a Stanh block with an explicit state count (used by ablations).
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParameter`] unless `states` is an even
    /// number of at least two.
    pub fn with_states(states: usize, mode: StanhMode) -> Result<Self, ScError> {
        Stanh::new(states)?;
        Ok(Self { states, mode })
    }

    /// The selected state count `K`.
    pub fn states(&self) -> usize {
        self.states
    }

    /// The output threshold mode.
    pub fn mode(&self) -> StanhMode {
        self.mode
    }

    /// Applies the activation to a (scaled) input stream.
    pub fn apply(&self, input: &BitStream) -> BitStream {
        let mut fsm = Stanh::with_mode(self.states, self.mode)
            .expect("state count validated at construction");
        fsm.transform(input)
    }

    /// Applies one independent copy of the activation to every unit's
    /// stream, interleaved word-by-word across units
    /// ([`Stanh::transform_batch`]). `result[u]` is bit-exact with
    /// [`StanhBlock::apply`] on `inputs[u]`.
    pub fn apply_batch(&self, inputs: &[&BitStream]) -> Vec<BitStream> {
        let fsm = Stanh::with_mode(self.states, self.mode)
            .expect("state count validated at construction");
        fsm.transform_batch(inputs)
    }

    /// [`StanhBlock::apply_batch`] with the output stream buffers taken from
    /// `arena` (recycle them when done). Results are identical.
    pub fn apply_batch_with(
        &self,
        inputs: &[&BitStream],
        arena: &mut sc_core::arena::StreamArena,
    ) -> Vec<BitStream> {
        let fsm = Stanh::with_mode(self.states, self.mode)
            .expect("state count validated at construction");
        fsm.transform_batch_with(inputs, arena)
    }

    /// The continuous function this block approximates for an *unscaled*
    /// input `x` that was divided by `input_size` before reaching the FSM.
    ///
    /// `Stanh(K, x/N) ≈ tanh(K·x / (2N))`; with `K` chosen by Eq. 1/2 the
    /// overall block approximates `tanh(x)` up to the empirical fit error.
    pub fn reference(&self, x: f64) -> f64 {
        x.tanh()
    }
}

/// A Btanh activation block whose state count follows Eq. 3 (average pooling)
/// or the original Kim et al. sizing (max pooling).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BtanhBlock {
    states: usize,
}

impl BtanhBlock {
    /// Builds the Btanh block for an APC-Avg-Btanh feature extraction block
    /// (Eq. 3: `K ≈ N/2`).
    ///
    /// # Errors
    ///
    /// Propagates [`ScError::InvalidParameter`] if the derived state count is
    /// unusable (cannot happen for the supported parameter ranges).
    pub fn for_apc_avg(input_size: usize) -> Result<Self, ScError> {
        let states = apc_avg_btanh_states(input_size);
        Btanh::new(states)?;
        Ok(Self { states })
    }

    /// Builds the Btanh block for an APC-Max-Btanh feature extraction block.
    ///
    /// # Errors
    ///
    /// Propagates [`ScError::InvalidParameter`] if the derived state count is
    /// unusable (cannot happen for the supported parameter ranges).
    pub fn for_apc_max(input_size: usize) -> Result<Self, ScError> {
        let states = apc_max_btanh_states(input_size);
        Btanh::new(states)?;
        Ok(Self { states })
    }

    /// Builds a Btanh block with an explicit state count (used by ablations).
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParameter`] unless `states` is an even
    /// number of at least two.
    pub fn with_states(states: usize) -> Result<Self, ScError> {
        Btanh::new(states)?;
        Ok(Self { states })
    }

    /// The selected state count `K`.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Applies the activation to a binary count stream.
    pub fn apply(&self, counts: &CountStream) -> BitStream {
        let mut counter = Btanh::new(self.states).expect("state count validated at construction");
        counter.transform(counts)
    }

    /// Applies one independent copy of the activation to every unit's count
    /// stream, interleaved in 64-cycle blocks across units
    /// ([`Btanh::transform_batch`]). `result[u]` is bit-exact with
    /// [`BtanhBlock::apply`] on `inputs[u]`.
    pub fn apply_batch(&self, inputs: &[&CountStream]) -> Vec<BitStream> {
        let counter = Btanh::new(self.states).expect("state count validated at construction");
        counter.transform_batch(inputs)
    }

    /// [`BtanhBlock::apply_batch`] with the output stream buffers taken from
    /// `arena` (recycle them when done). Results are identical.
    pub fn apply_batch_with(
        &self,
        inputs: &[&CountStream],
        arena: &mut sc_core::arena::StreamArena,
    ) -> Vec<BitStream> {
        let counter = Btanh::new(self.states).expect("state count validated at construction");
        counter.transform_batch_with(inputs, arena)
    }

    /// The continuous function this block approximates for an unscaled sum `x`.
    pub fn reference(&self, x: f64) -> f64 {
        x.tanh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::add::ExactParallelCounter;
    use sc_core::bitstream::StreamLength;
    use sc_core::sng::{Sng, SngKind};

    #[test]
    fn state_counts_follow_formulas() {
        let block = StanhBlock::for_mux_avg(16, 1024).unwrap();
        assert_eq!(block.states(), mux_avg_stanh_states(16, 1024));
        assert_eq!(block.mode(), StanhMode::Standard);

        let block = StanhBlock::for_mux_max(64, 1024).unwrap();
        assert_eq!(block.states(), mux_max_stanh_states(64, 1024));
        assert_eq!(block.mode(), StanhMode::ShiftedFifth);

        let block = BtanhBlock::for_apc_avg(64).unwrap();
        assert_eq!(block.states(), 32);

        let block = BtanhBlock::for_apc_max(16).unwrap();
        assert_eq!(block.states(), 32);
    }

    #[test]
    fn explicit_state_counts_are_validated() {
        assert!(StanhBlock::with_states(3, StanhMode::Standard).is_err());
        assert!(BtanhBlock::with_states(0).is_err());
        assert!(StanhBlock::with_states(8, StanhMode::Standard).is_ok());
        assert!(BtanhBlock::with_states(8).is_ok());
    }

    #[test]
    fn stanh_block_output_has_same_length() {
        let block = StanhBlock::for_mux_avg(16, 512).unwrap();
        let mut sng = Sng::new(SngKind::Lfsr32, 2);
        let input = sng.generate_bipolar(0.2, StreamLength::new(512)).unwrap();
        let output = block.apply(&input);
        assert_eq!(output.len(), 512);
    }

    #[test]
    fn btanh_block_saturates_on_strong_sums() {
        let block = BtanhBlock::for_apc_avg(4).unwrap();
        let streams: Vec<_> = (0..4)
            .map(|i| {
                Sng::new(SngKind::Lfsr32, 60 + i)
                    .generate_bipolar(0.6, StreamLength::new(2048))
                    .unwrap()
            })
            .collect();
        let counts = ExactParallelCounter::new().count(&streams).unwrap();
        let output = block.apply(&counts);
        assert!(output.bipolar_value() > 0.6);
    }

    #[test]
    fn references_are_tanh() {
        let stanh = StanhBlock::for_mux_avg(16, 256).unwrap();
        let btanh = BtanhBlock::for_apc_avg(16).unwrap();
        assert!((stanh.reference(0.5) - 0.5f64.tanh()).abs() < 1e-12);
        assert!((btanh.reference(-0.7) - (-0.7f64).tanh()).abs() < 1e-12);
    }

    #[test]
    fn activation_kind_names() {
        assert_eq!(ActivationKind::Stanh.name(), "Stanh");
        assert_eq!(ActivationKind::Btanh.name(), "Btanh");
    }
}
