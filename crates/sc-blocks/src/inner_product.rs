//! Inner-product / convolution function blocks.
//!
//! Every block multiplies `n` bipolar inputs with `n` bipolar weights using an
//! XNOR array (or an AND array in the unipolar OR-gate variant) and then sums
//! the products with one of the adder structures of
//! [`sc_core::add`] / [`sc_core::twoline`]. The blocks differ in what they
//! emit:
//!
//! | Block | Adder | Output | Scaling |
//! |---|---|---|---|
//! | [`OrInnerProduct`] | OR gate | bit-stream | pre-scaled |
//! | [`MuxInnerProduct`] | n-to-1 MUX | bit-stream | `1/n` |
//! | [`ApcInnerProduct`] | approximate parallel counter | binary count stream | none |
//! | [`ExactCounterInnerProduct`] | exact parallel counter | binary count stream | none |
//! | [`TwoLineInnerProduct`] | two-line adder chain | two-line stream | none (overflows) |
//!
//! The blocks themselves are width-agnostic: the XNOR/popcount reductions,
//! MUX selector replays, and CSA column accumulators they call dispatch
//! through the word-generic kernel layer ([`sc_core::word`]), so the same
//! block code runs on the scalar, portable super-word, or SIMD backend —
//! with bit-identical results on each.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sc_core::add::{Apc, CountStream, ExactParallelCounter, MuxAdder};
use sc_core::arena::StreamArena;
use sc_core::bitstream::{BitStream, StreamLength};
use sc_core::encoding::prescale;
use sc_core::error::ScError;
use sc_core::rng::Lfsr;
use sc_core::sng::{BatchSng, SngBank, SngKind};
use sc_core::twoline::{TwoLineAdder, TwoLineStream, TwoLineSum};
use serde::{Deserialize, Serialize};

/// Identifies an inner-product block family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InnerProductKind {
    /// OR-gate adder (pre-scaled, lossy).
    Or,
    /// MUX adder (scaled by `1/n`).
    Mux,
    /// Approximate parallel counter adder (binary output).
    Apc,
    /// Exact accumulative parallel counter (binary output, baseline).
    ExactCounter,
    /// Two-line representation adder (non-scaled, overflow-prone).
    TwoLine,
}

impl InnerProductKind {
    /// All kinds, in the order the paper discusses them.
    pub const ALL: [InnerProductKind; 5] = [
        InnerProductKind::Or,
        InnerProductKind::Mux,
        InnerProductKind::Apc,
        InnerProductKind::ExactCounter,
        InnerProductKind::TwoLine,
    ];

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            InnerProductKind::Or => "OR",
            InnerProductKind::Mux => "MUX",
            InnerProductKind::Apc => "APC",
            InnerProductKind::ExactCounter => "CPC",
            InnerProductKind::TwoLine => "two-line",
        }
    }
}

/// The floating-point inner product `Σ xᵢ·wᵢ` used as the accuracy reference.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn reference_inner_product(inputs: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(
        inputs.len(),
        weights.len(),
        "inputs and weights must pair up"
    );
    inputs.iter().zip(weights.iter()).map(|(x, w)| x * w).sum()
}

/// XOR applied to an inner-product block's seed to derive its *weight* SNG
/// bank's base seed (the input bank uses the block seed directly). Exposed so
/// compiled engines can pre-generate or cache individual operand streams that
/// are bit-identical to what the per-call path generates.
pub const WEIGHT_BANK_SEED_XOR: u64 = 0xABCD_EF01_2345_6789;

/// The selector LFSR a MUX inner-product block with `seed` draws from.
///
/// Exposed (alongside [`WEIGHT_BANK_SEED_XOR`]) so stream-level re-creations
/// of the per-call pipeline can reproduce its bits exactly.
pub fn mux_selector(seed: u64) -> Lfsr {
    Lfsr::new_32((seed as u32).wrapping_mul(2_654_435_761) | 1)
}

/// Generates the per-lane input and weight streams of an inner-product
/// block. The XNOR products are *not* materialized here: every consumer
/// fuses the multiply into its accumulation kernel
/// ([`Apc::count_products`], [`ExactParallelCounter::count_products`],
/// [`MuxAdder::sum_products`]), which halves the stream traffic and removes
/// one allocation per lane. Stream buffers come from `arena` and should be
/// recycled into it after use; both banks are generated through one
/// [`BatchSng`] (a single staged-recurrence scratch for all lanes), which is
/// bit-identical to the per-lane [`SngBank`] generators it replaces.
fn generate_operand_streams(
    inputs: &[f64],
    weights: &[f64],
    length: StreamLength,
    seed: u64,
    arena: &mut StreamArena,
) -> Result<(Vec<BitStream>, Vec<BitStream>), ScError> {
    if inputs.is_empty() {
        return Err(ScError::EmptyInput);
    }
    if inputs.len() != weights.len() {
        return Err(ScError::LengthMismatch {
            left: inputs.len(),
            right: weights.len(),
        });
    }
    let mut batch = BatchSng::new(SngKind::Lfsr32);
    let input_streams = batch.generate_bipolar_bank_with(seed, inputs, length, arena)?;
    let weight_streams =
        match batch.generate_bipolar_bank_with(seed ^ WEIGHT_BANK_SEED_XOR, weights, length, arena)
        {
            Ok(streams) => streams,
            Err(error) => {
                arena.recycle_all(input_streams);
                return Err(error);
            }
        };
    Ok((input_streams, weight_streams))
}

/// OR-gate based inner-product block (the paper's strawman, Table 1).
///
/// The products are formed with AND gates (unipolar) or XNOR gates (bipolar)
/// and then OR-ed together. Because "1 OR 1" collapses to a single one, the
/// inputs are pre-scaled by the smallest power of two that keeps the expected
/// one-density low; the block scales the decoded output back up.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrInnerProduct {
    /// Whether inputs/weights are treated as unipolar (`[0, 1]`) values.
    pub unipolar: bool,
    /// Seed for the stochastic number generators.
    pub seed: u64,
}

impl OrInnerProduct {
    /// Creates an OR-gate inner-product block.
    pub fn new(unipolar: bool, seed: u64) -> Self {
        Self { unipolar, seed }
    }

    /// Evaluates the inner product, returning the decoded (scaled-back) value.
    ///
    /// # Errors
    ///
    /// Returns an error for empty inputs, mismatched lengths, or values the
    /// encoding cannot represent even after pre-scaling.
    pub fn evaluate(
        &self,
        inputs: &[f64],
        weights: &[f64],
        length: StreamLength,
    ) -> Result<f64, ScError> {
        if inputs.is_empty() {
            return Err(ScError::EmptyInput);
        }
        if inputs.len() != weights.len() {
            return Err(ScError::LengthMismatch {
                left: inputs.len(),
                right: weights.len(),
            });
        }
        let n = inputs.len();
        // Pre-scale so that each product stream carries few ones. The paper
        // notes the most suitable pre-scaling is applied before OR-ing; for a
        // sum of n terms each term is additionally divided by n so the ideal
        // OR output stays well below saturation.
        let products: Vec<f64> = inputs
            .iter()
            .zip(weights.iter())
            .map(|(x, w)| x * w)
            .collect();
        let scaled = prescale(&products)?;
        // Each encoded term is products[i] / (scale * n); the decoded OR
        // output therefore has to be multiplied back by scale * n.
        let per_term_scale = scaled.scale * n as f64;

        let mut bank = SngBank::new(SngKind::Lfsr32, n, self.seed);
        let mut arena = StreamArena::new();
        // OR-accumulate in place as each lane stream is generated: only two
        // stream buffers (the accumulator and a reused scratch) ever exist.
        let mut acc: Option<BitStream> = None;
        let mut scratch = arena.take_zeroed(length);
        for (i, &p) in scaled.values.iter().enumerate() {
            let lane = bank.lane_mut(i).expect("lane exists");
            if self.unipolar {
                lane.generate_unipolar_into((p / n as f64).clamp(0.0, 1.0), &mut scratch)?;
            } else {
                lane.generate_bipolar_into((p / n as f64).clamp(-1.0, 1.0), &mut scratch)?;
            }
            match &mut acc {
                Some(acc) => scratch.or_into(acc),
                None => acc = Some(std::mem::replace(&mut scratch, arena.take_zeroed(length))),
            }
        }
        let sum = acc.expect("n >= 1 lanes were accumulated");
        let decoded = if self.unipolar {
            sum.unipolar_value()
        } else {
            sum.bipolar_value()
        };
        Ok(decoded * per_term_scale)
    }
}

/// MUX-based inner-product block (Table 2).
///
/// The XNOR product streams feed an n-to-1 MUX whose selector is a uniformly
/// random lane index, producing a stream that encodes `(1/n)·Σ xᵢwᵢ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MuxInnerProduct {
    /// Seed for the stochastic number generators and the MUX selector.
    pub seed: u64,
}

impl MuxInnerProduct {
    /// Creates a MUX-based inner-product block.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Evaluates the inner product, returning the *scaled* output stream
    /// (value `≈ (1/n)·Σ xᵢwᵢ`).
    ///
    /// # Errors
    ///
    /// Returns an error for empty inputs, mismatched lengths, or out-of-range
    /// values.
    pub fn evaluate_stream(
        &self,
        inputs: &[f64],
        weights: &[f64],
        length: StreamLength,
    ) -> Result<BitStream, ScError> {
        self.evaluate_stream_with(inputs, weights, length, &mut StreamArena::new())
    }

    /// Arena-backed variant of [`MuxInnerProduct::evaluate_stream`]: operand
    /// stream buffers are taken from and recycled into `arena`, so repeated
    /// evaluations (e.g. across the receptive fields of a feature block)
    /// allocate nothing in steady state. Output is bit-identical.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MuxInnerProduct::evaluate_stream`].
    pub fn evaluate_stream_with(
        &self,
        inputs: &[f64],
        weights: &[f64],
        length: StreamLength,
        arena: &mut StreamArena,
    ) -> Result<BitStream, ScError> {
        let (xs, ws) = generate_operand_streams(inputs, weights, length, self.seed, arena)?;
        let mut selector = mux_selector(self.seed);
        let sum = MuxAdder::new().sum_products(&xs, &ws, &mut selector);
        arena.recycle_all(xs);
        arena.recycle_all(ws);
        sum
    }

    /// Evaluates the inner product and scales the decoded value back up by
    /// `n`, returning an estimate of `Σ xᵢwᵢ`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MuxInnerProduct::evaluate_stream`].
    pub fn evaluate(
        &self,
        inputs: &[f64],
        weights: &[f64],
        length: StreamLength,
    ) -> Result<f64, ScError> {
        let stream = self.evaluate_stream(inputs, weights, length)?;
        Ok(stream.bipolar_value() * inputs.len() as f64)
    }
}

/// APC-based inner-product block (Table 3).
///
/// The XNOR product streams feed an approximate parallel counter; the output
/// is a binary count per cycle, preserving (almost) all information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApcInnerProduct {
    /// Seed for the stochastic number generators.
    pub seed: u64,
}

impl ApcInnerProduct {
    /// Creates an APC-based inner-product block.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Evaluates the inner product, returning the per-cycle count stream.
    ///
    /// # Errors
    ///
    /// Returns an error for empty inputs, mismatched lengths, or out-of-range
    /// values.
    pub fn evaluate_counts(
        &self,
        inputs: &[f64],
        weights: &[f64],
        length: StreamLength,
    ) -> Result<CountStream, ScError> {
        self.evaluate_counts_with(inputs, weights, length, &mut StreamArena::new())
    }

    /// Arena-backed variant of [`ApcInnerProduct::evaluate_counts`] using the
    /// fused XNOR + column-count kernel. Output is bit-identical.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ApcInnerProduct::evaluate_counts`].
    pub fn evaluate_counts_with(
        &self,
        inputs: &[f64],
        weights: &[f64],
        length: StreamLength,
        arena: &mut StreamArena,
    ) -> Result<CountStream, ScError> {
        let (xs, ws) = generate_operand_streams(inputs, weights, length, self.seed, arena)?;
        let counts = Apc::new().count_products(&xs, &ws);
        arena.recycle_all(xs);
        arena.recycle_all(ws);
        counts
    }

    /// Evaluates the inner product and decodes it to an estimate of `Σ xᵢwᵢ`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ApcInnerProduct::evaluate_counts`].
    pub fn evaluate(
        &self,
        inputs: &[f64],
        weights: &[f64],
        length: StreamLength,
    ) -> Result<f64, ScError> {
        Ok(self.evaluate_counts(inputs, weights, length)?.bipolar_sum())
    }
}

/// Exact (conventional accumulative) parallel-counter inner-product block.
///
/// This is the baseline the APC block is compared against in Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExactCounterInnerProduct {
    /// Seed for the stochastic number generators.
    pub seed: u64,
}

impl ExactCounterInnerProduct {
    /// Creates an exact-counter inner-product block.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Evaluates the inner product, returning the per-cycle count stream.
    ///
    /// # Errors
    ///
    /// Returns an error for empty inputs, mismatched lengths, or out-of-range
    /// values.
    pub fn evaluate_counts(
        &self,
        inputs: &[f64],
        weights: &[f64],
        length: StreamLength,
    ) -> Result<CountStream, ScError> {
        let mut arena = StreamArena::new();
        let (xs, ws) = generate_operand_streams(inputs, weights, length, self.seed, &mut arena)?;
        ExactParallelCounter::new().count_products(&xs, &ws)
    }

    /// Evaluates the inner product and decodes it to an estimate of `Σ xᵢwᵢ`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExactCounterInnerProduct::evaluate_counts`].
    pub fn evaluate(
        &self,
        inputs: &[f64],
        weights: &[f64],
        length: StreamLength,
    ) -> Result<f64, ScError> {
        Ok(self.evaluate_counts(inputs, weights, length)?.bipolar_sum())
    }
}

/// Two-line representation inner-product block (Section 4.1, rejected by the
/// paper for its overflow behaviour and area overhead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoLineInnerProduct {
    /// Seed for the magnitude-stream generators.
    pub seed: u64,
}

impl TwoLineInnerProduct {
    /// Creates a two-line inner-product block.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Evaluates the inner product, returning the two-line sum (which records
    /// how many cycles saturated, i.e. overflowed).
    ///
    /// # Errors
    ///
    /// Returns an error for empty inputs, mismatched lengths, or out-of-range
    /// products.
    pub fn evaluate_sum(
        &self,
        inputs: &[f64],
        weights: &[f64],
        length: StreamLength,
    ) -> Result<TwoLineSum, ScError> {
        if inputs.is_empty() {
            return Err(ScError::EmptyInput);
        }
        if inputs.len() != weights.len() {
            return Err(ScError::LengthMismatch {
                left: inputs.len(),
                right: weights.len(),
            });
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let products: Result<Vec<TwoLineStream>, ScError> = inputs
            .iter()
            .zip(weights.iter())
            .map(|(&x, &w)| {
                let mut lfsr = Lfsr::new_32(rng.gen::<u32>() | 1);
                TwoLineStream::encode((x * w).clamp(-1.0, 1.0), length, &mut lfsr)
            })
            .collect();
        TwoLineAdder::new().sum(&products?)
    }

    /// Evaluates the inner product and decodes it to an estimate of `Σ xᵢwᵢ`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TwoLineInnerProduct::evaluate_sum`].
    pub fn evaluate(
        &self,
        inputs: &[f64],
        weights: &[f64],
        length: StreamLength,
    ) -> Result<f64, ScError> {
        Ok(self.evaluate_sum(inputs, weights, length)?.stream.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_vectors(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let weights = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        (inputs, weights)
    }

    #[test]
    fn reference_matches_hand_computation() {
        assert_eq!(reference_inner_product(&[1.0, 2.0], &[3.0, -1.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn reference_panics_on_mismatch() {
        let _ = reference_inner_product(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn mux_inner_product_tracks_reference() {
        let (inputs, weights) = test_vectors(16, 1);
        let reference = reference_inner_product(&inputs, &weights);
        let block = MuxInnerProduct::new(7);
        let value = block
            .evaluate(&inputs, &weights, StreamLength::new(4096))
            .unwrap();
        assert!(
            (value - reference).abs() < 0.9,
            "MUX estimate {value} too far from reference {reference}"
        );
    }

    #[test]
    fn mux_stream_is_scaled_down() {
        let (inputs, weights) = test_vectors(16, 2);
        let block = MuxInnerProduct::new(3);
        let stream = block
            .evaluate_stream(&inputs, &weights, StreamLength::new(2048))
            .unwrap();
        let reference = reference_inner_product(&inputs, &weights) / 16.0;
        assert!((stream.bipolar_value() - reference).abs() < 0.1);
    }

    #[test]
    fn apc_inner_product_is_more_accurate_than_mux() {
        let mut apc_error = 0.0;
        let mut mux_error = 0.0;
        for trial in 0..8 {
            let (inputs, weights) = test_vectors(32, 100 + trial);
            let reference = reference_inner_product(&inputs, &weights);
            let apc = ApcInnerProduct::new(trial)
                .evaluate(&inputs, &weights, StreamLength::new(1024))
                .unwrap();
            let mux = MuxInnerProduct::new(trial)
                .evaluate(&inputs, &weights, StreamLength::new(1024))
                .unwrap();
            apc_error += (apc - reference).abs();
            mux_error += (mux - reference).abs();
        }
        assert!(
            apc_error < mux_error,
            "expected APC ({apc_error}) to beat MUX ({mux_error}) on average"
        );
    }

    #[test]
    fn apc_tracks_exact_counter_closely() {
        let (inputs, weights) = test_vectors(64, 11);
        let length = StreamLength::new(512);
        let apc = ApcInnerProduct::new(5)
            .evaluate(&inputs, &weights, length)
            .unwrap();
        let exact = ExactCounterInnerProduct::new(5)
            .evaluate(&inputs, &weights, length)
            .unwrap();
        assert!((apc - exact).abs() < 1.0, "APC {apc} vs exact {exact}");
    }

    #[test]
    fn or_inner_product_unipolar_is_usable() {
        let inputs = vec![0.3, 0.2, 0.25, 0.1, 0.15, 0.3, 0.2, 0.1];
        let weights = vec![0.5, 0.25, 0.4, 0.3, 0.2, 0.35, 0.3, 0.25];
        let reference = reference_inner_product(&inputs, &weights);
        let block = OrInnerProduct::new(true, 3);
        let value = block
            .evaluate(&inputs, &weights, StreamLength::new(1024))
            .unwrap();
        // Table 1 reports absolute errors around 0.5 for unipolar inputs.
        assert!((value - reference).abs() < 1.0);
    }

    #[test]
    fn or_inner_product_bipolar_is_poor() {
        let (inputs, weights) = test_vectors(32, 17);
        let reference = reference_inner_product(&inputs, &weights);
        let block = OrInnerProduct::new(false, 3);
        let value = block
            .evaluate(&inputs, &weights, StreamLength::new(1024))
            .unwrap();
        // The bipolar OR-gate block is expected to be badly wrong (Table 1
        // reports errors > 1.5); we only check it runs and returns a finite value.
        assert!(value.is_finite());
        let _ = reference;
    }

    #[test]
    fn two_line_inner_product_overflows_with_many_inputs() {
        let inputs = vec![0.9; 16];
        let weights = vec![0.9; 16];
        let sum = TwoLineInnerProduct::new(1)
            .evaluate_sum(&inputs, &weights, StreamLength::new(1024))
            .unwrap();
        // True inner product is 12.96 but the representation cannot exceed 1.
        assert!(sum.stream.value() <= 1.0);
        assert!(sum.saturated_cycles > 0);
    }

    #[test]
    fn blocks_reject_empty_and_mismatched_inputs() {
        let length = StreamLength::new(64);
        assert!(MuxInnerProduct::new(1).evaluate(&[], &[], length).is_err());
        assert!(ApcInnerProduct::new(1)
            .evaluate(&[0.1], &[0.1, 0.2], length)
            .is_err());
        assert!(ExactCounterInnerProduct::new(1)
            .evaluate(&[], &[], length)
            .is_err());
        assert!(OrInnerProduct::new(false, 1)
            .evaluate(&[0.1], &[], length)
            .is_err());
        assert!(TwoLineInnerProduct::new(1)
            .evaluate(&[], &[], length)
            .is_err());
    }

    #[test]
    fn kind_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            InnerProductKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), InnerProductKind::ALL.len());
    }
}
