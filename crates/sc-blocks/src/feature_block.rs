//! Feature extraction blocks (FEBs).
//!
//! A feature extraction block (Fig. 10 of the paper) cascades four
//! inner-product blocks, one pooling block and one activation block, and is
//! the unit the network-level optimizer selects per layer. The paper studies
//! four jointly-optimized configurations; all of them are exposed behind the
//! single [`FeatureBlock`] type so the higher layers can treat the choice as
//! data:
//!
//! | Kind | Inner product | Pooling | Activation | Character |
//! |---|---|---|---|---|
//! | `MuxAvgStanh` | MUX | average | Stanh (Eq. 1) | smallest/cheapest, worst accuracy |
//! | `MuxMaxStanh` | MUX | hardware max | re-designed Stanh (Eq. 2) | cheap, medium accuracy |
//! | `ApcAvgBtanh` | APC | average | Btanh (Eq. 3) | accurate, higher area/energy |
//! | `ApcMaxBtanh` | APC | hardware max | Btanh | most accurate, most expensive |
//!
//! Every hot kernel a feature block evaluates — SNG comparator fills, fused
//! XNOR/popcount reductions, MUX selector replay, CSA vertical-counter
//! accumulation, and the Stanh/Btanh FSM batch walks — is word-generic and
//! dispatches to the active [`sc_core::word`] backend (scalar, portable
//! super-word, or SIMD). Backends are bit-identical, so block outputs do not
//! depend on which one serves them.

use crate::activation_block::{ActivationKind, BtanhBlock, StanhBlock};
use crate::inner_product::{
    mux_selector, reference_inner_product, ApcInnerProduct, InnerProductKind, MuxInnerProduct,
    WEIGHT_BANK_SEED_XOR,
};
use crate::pooling::{AveragePooling, HardwareMaxPooling, PoolingKind};
use sc_core::add::{Apc, CountStream, MuxAdder, MuxSelectorPlan};
use sc_core::arena::StreamArena;
use sc_core::bitstream::{BitStream, StreamLength};
use sc_core::error::ScError;
use sc_core::parallel::parallel_map_with;
use sc_core::sng::{BatchSng, SngKind};
use serde::{Deserialize, Serialize};

/// Default segment length (in bits) of the hardware-oriented max pooling.
pub const DEFAULT_MAX_POOL_SEGMENT: usize = 16;

/// Caps an activation state count at half the bit-stream length (rounded to
/// an even number, floored at two) so the counter can actually traverse its
/// range within one stream.
fn capped_states(states: usize, stream_length: sc_core::bitstream::StreamLength) -> usize {
    let cap = (stream_length.bits() / 2).max(2) & !1;
    states.min(cap.max(2))
}

/// The four feature extraction block configurations studied by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureBlockKind {
    /// MUX inner product, average pooling, Stanh activation.
    MuxAvgStanh,
    /// MUX inner product, hardware-oriented max pooling, re-designed Stanh.
    MuxMaxStanh,
    /// APC inner product, average pooling, Btanh activation.
    ApcAvgBtanh,
    /// APC inner product, hardware-oriented max pooling, Btanh activation.
    ApcMaxBtanh,
}

impl FeatureBlockKind {
    /// All four kinds in the paper's order.
    pub const ALL: [FeatureBlockKind; 4] = [
        FeatureBlockKind::MuxAvgStanh,
        FeatureBlockKind::MuxMaxStanh,
        FeatureBlockKind::ApcAvgBtanh,
        FeatureBlockKind::ApcMaxBtanh,
    ];

    /// The two max-pooling configurations.
    pub const MAX_POOLING: [FeatureBlockKind; 2] =
        [FeatureBlockKind::MuxMaxStanh, FeatureBlockKind::ApcMaxBtanh];

    /// The two average-pooling configurations.
    pub const AVG_POOLING: [FeatureBlockKind; 2] =
        [FeatureBlockKind::MuxAvgStanh, FeatureBlockKind::ApcAvgBtanh];

    /// The paper's name for the configuration (e.g. `"MUX-Avg-Stanh"`).
    pub fn name(self) -> &'static str {
        match self {
            FeatureBlockKind::MuxAvgStanh => "MUX-Avg-Stanh",
            FeatureBlockKind::MuxMaxStanh => "MUX-Max-Stanh",
            FeatureBlockKind::ApcAvgBtanh => "APC-Avg-Btanh",
            FeatureBlockKind::ApcMaxBtanh => "APC-Max-Btanh",
        }
    }

    /// Short name used in Table 6 ("MUX" / "APC").
    pub fn short_name(self) -> &'static str {
        match self.inner_product() {
            InnerProductKind::Mux => "MUX",
            _ => "APC",
        }
    }

    /// The inner-product block family used by this configuration.
    pub fn inner_product(self) -> InnerProductKind {
        match self {
            FeatureBlockKind::MuxAvgStanh | FeatureBlockKind::MuxMaxStanh => InnerProductKind::Mux,
            FeatureBlockKind::ApcAvgBtanh | FeatureBlockKind::ApcMaxBtanh => InnerProductKind::Apc,
        }
    }

    /// The pooling block used by this configuration.
    pub fn pooling(self) -> PoolingKind {
        match self {
            FeatureBlockKind::MuxAvgStanh | FeatureBlockKind::ApcAvgBtanh => PoolingKind::Average,
            FeatureBlockKind::MuxMaxStanh | FeatureBlockKind::ApcMaxBtanh => {
                PoolingKind::HardwareMax
            }
        }
    }

    /// The activation block used by this configuration.
    pub fn activation(self) -> ActivationKind {
        match self {
            FeatureBlockKind::MuxAvgStanh | FeatureBlockKind::MuxMaxStanh => ActivationKind::Stanh,
            FeatureBlockKind::ApcAvgBtanh | FeatureBlockKind::ApcMaxBtanh => ActivationKind::Btanh,
        }
    }

    /// Whether this configuration uses max pooling.
    pub fn uses_max_pooling(self) -> bool {
        self.pooling() == PoolingKind::HardwareMax
    }

    /// The kind with the same inner product / activation but the other
    /// pooling strategy (useful when the network-level search is restricted
    /// to a pooling style).
    pub fn with_pooling(self, max: bool) -> FeatureBlockKind {
        match (self.inner_product(), max) {
            (InnerProductKind::Mux, true) => FeatureBlockKind::MuxMaxStanh,
            (InnerProductKind::Mux, false) => FeatureBlockKind::MuxAvgStanh,
            (_, true) => FeatureBlockKind::ApcMaxBtanh,
            (_, false) => FeatureBlockKind::MuxAvgStanh.pick_apc(false),
        }
    }

    fn pick_apc(self, max: bool) -> FeatureBlockKind {
        if max {
            FeatureBlockKind::ApcMaxBtanh
        } else {
            FeatureBlockKind::ApcAvgBtanh
        }
    }
}

impl std::fmt::Display for FeatureBlockKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Pre-drawn MUX selector plans for one SC layer at one stream length.
///
/// Built by [`FeatureBlock::prepare_selectors`] and replayed by
/// [`FeatureBlock::evaluate_layer_prepared_with`]; the plans depend only on
/// the block's seeds and the stream length, so one set serves every unit,
/// every layer position, and every fan-out worker. Empty for APC kinds.
#[derive(Debug, Clone)]
pub struct LayerSelectors {
    /// One inner-product selector plan per pool-window field (MUX kinds).
    field_plans: Vec<MuxSelectorPlan>,
    /// The average-pooling selector plan (`MuxAvgStanh` only).
    avg_plan: Option<MuxSelectorPlan>,
    stream_bits: usize,
}

impl LayerSelectors {
    /// The stream length (in bits) the plans were drawn for.
    pub fn stream_bits(&self) -> usize {
        self.stream_bits
    }
}

/// A configured feature extraction block.
///
/// The block is parameterized by the receptive-field size `N` (number of
/// inputs per inner product), the pooling window size (number of inner
/// products pooled together, four for the 2×2 windows used by LeNet-5), and
/// the bit-stream length `L`. The activation state count is derived from the
/// configuration via the paper's empirical formulas at construction time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureBlock {
    kind: FeatureBlockKind,
    input_size: usize,
    pool_window: usize,
    stream_length: StreamLength,
    seed: u64,
    stanh: Option<StanhBlock>,
    btanh: Option<BtanhBlock>,
}

impl FeatureBlock {
    /// Creates a feature extraction block with a 2×2 pooling window.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParameter`] for a zero `input_size`.
    pub fn new(
        kind: FeatureBlockKind,
        input_size: usize,
        stream_length: StreamLength,
        seed: u64,
    ) -> Result<Self, ScError> {
        Self::with_pool_window(kind, input_size, 4, stream_length, seed)
    }

    /// Creates a feature extraction block with an explicit pooling window.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParameter`] for a zero `input_size` or
    /// `pool_window`.
    pub fn with_pool_window(
        kind: FeatureBlockKind,
        input_size: usize,
        pool_window: usize,
        stream_length: StreamLength,
        seed: u64,
    ) -> Result<Self, ScError> {
        if input_size == 0 {
            return Err(ScError::InvalidParameter {
                name: "input_size",
                message: "receptive field must contain at least one element".into(),
            });
        }
        if pool_window == 0 {
            return Err(ScError::InvalidParameter {
                name: "pool_window",
                message: "pooling window must contain at least one inner product".into(),
            });
        }
        let (stanh, btanh) = match kind {
            FeatureBlockKind::MuxAvgStanh => (
                Some(StanhBlock::for_mux_avg(input_size, stream_length.bits())?),
                None,
            ),
            FeatureBlockKind::MuxMaxStanh => (
                Some(StanhBlock::for_mux_max(input_size, stream_length.bits())?),
                None,
            ),
            // The averaging adder merges the pool window's APC outputs, so
            // the counter effectively sees `pool_window · N` lanes; Eq. 3 is
            // applied to that effective lane count. The counter is further
            // capped at half the stream length: a counter with more states
            // than the stream can traverse never saturates and only adds
            // latency (the paper's joint optimization makes the same
            // bit-stream-length/state-count trade).
            FeatureBlockKind::ApcAvgBtanh => {
                let states = capped_states(
                    sc_core::activation::apc_avg_btanh_states(input_size * pool_window),
                    stream_length,
                );
                (None, Some(BtanhBlock::with_states(states)?))
            }
            FeatureBlockKind::ApcMaxBtanh => {
                let states = capped_states(
                    sc_core::activation::apc_max_btanh_states(input_size),
                    stream_length,
                );
                (None, Some(BtanhBlock::with_states(states)?))
            }
        };
        Ok(Self {
            kind,
            input_size,
            pool_window,
            stream_length,
            seed,
            stanh,
            btanh,
        })
    }

    /// The configuration kind.
    pub fn kind(&self) -> FeatureBlockKind {
        self.kind
    }

    /// Receptive-field size `N` per inner product.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Number of inner products pooled together.
    pub fn pool_window(&self) -> usize {
        self.pool_window
    }

    /// Configured bit-stream length `L`.
    pub fn stream_length(&self) -> StreamLength {
        self.stream_length
    }

    /// The average-pooling block used by the Avg configurations.
    ///
    /// Single point of truth for the pooling selector's seed derivation:
    /// the per-call, prepared, and layer-fused paths are only bit-identical
    /// because they all instantiate *this* block.
    fn average_pooling(&self) -> AveragePooling {
        AveragePooling::new(self.seed ^ 0x5151_5151)
    }

    /// The activation state count selected by the joint-optimization formulas.
    pub fn activation_states(&self) -> usize {
        match (&self.stanh, &self.btanh) {
            (Some(block), _) => block.states(),
            (_, Some(block)) => block.states(),
            _ => unreachable!("a feature block always has exactly one activation"),
        }
    }

    /// Evaluates the block on `pool_window` receptive fields sharing one
    /// filter, returning the SC output stream.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParameter`] if the number of receptive
    /// fields differs from the pooling window or any receptive field /
    /// the filter has the wrong length, and propagates encoding errors for
    /// values outside `[-1, 1]`.
    pub fn evaluate_stream(
        &self,
        receptive_fields: &[Vec<f64>],
        weights: &[f64],
    ) -> Result<BitStream, ScError> {
        self.validate(receptive_fields, weights)?;
        // The pool window's inner products are independent hardware blocks
        // with per-field seeds, so they fan out across threads; each worker
        // reuses one stream arena so the per-field evaluations stay
        // allocation-free. Seeds derive from the field index, never from the
        // thread schedule, so parallel and serial runs are bit-identical.
        match self.kind {
            FeatureBlockKind::MuxAvgStanh | FeatureBlockKind::MuxMaxStanh => {
                let streams: Vec<BitStream> =
                    parallel_map_with(receptive_fields, StreamArena::new, |arena, i, field| {
                        MuxInnerProduct::new(self.seed.wrapping_add(1 + i as u64 * 131))
                            .evaluate_stream_with(field, weights, self.stream_length, arena)
                    })
                    .into_iter()
                    .collect::<Result<_, _>>()?;
                let pooled = if self.kind == FeatureBlockKind::MuxAvgStanh {
                    self.average_pooling().pool_streams(&streams)?
                } else {
                    HardwareMaxPooling::new(DEFAULT_MAX_POOL_SEGMENT)?.pool_streams(&streams)?
                };
                let stanh = self.stanh.as_ref().expect("MUX blocks carry a Stanh");
                Ok(stanh.apply(&pooled))
            }
            FeatureBlockKind::ApcAvgBtanh | FeatureBlockKind::ApcMaxBtanh => {
                let counts: Vec<_> =
                    parallel_map_with(receptive_fields, StreamArena::new, |arena, i, field| {
                        ApcInnerProduct::new(self.seed.wrapping_add(1 + i as u64 * 131))
                            .evaluate_counts_with(field, weights, self.stream_length, arena)
                    })
                    .into_iter()
                    .collect::<Result<Vec<_>, _>>()?;
                let pooled = if self.kind == FeatureBlockKind::ApcAvgBtanh {
                    // Average pooling in the binary domain is an adder tree;
                    // the 1/pool_window division is folded into the Btanh
                    // state count (see `with_pool_window`).
                    sc_core::add::CountStream::merge_sum(&counts)?
                } else {
                    HardwareMaxPooling::new(DEFAULT_MAX_POOL_SEGMENT)?.pool_counts(&counts)?
                };
                let btanh = self.btanh.as_ref().expect("APC blocks carry a Btanh");
                Ok(btanh.apply(&pooled))
            }
        }
    }

    /// Seed of the inner-product block evaluating pool-window field
    /// `field_index` (the per-field seed derivation of
    /// [`FeatureBlock::evaluate_stream`]).
    pub fn field_seed(&self, field_index: usize) -> u64 {
        self.seed.wrapping_add(1 + field_index as u64 * 131)
    }

    /// Base seeds `(input_bank, weight_bank)` of the SNG banks feeding the
    /// inner product at pool-window index `field_index`. Individual lane
    /// seeds follow via [`sc_core::sng::SngBank::lane_seed`].
    pub fn operand_bank_seeds(&self, field_index: usize) -> (u64, u64) {
        let seed = self.field_seed(field_index);
        (seed, seed ^ WEIGHT_BANK_SEED_XOR)
    }

    /// Generates, for every pool-window field, the weight streams that
    /// [`FeatureBlock::evaluate_stream`] would generate internally for
    /// `weights` (outer index: field, inner index: lane).
    ///
    /// The per-call path re-derives these streams on every evaluation even
    /// though they only depend on the filter; a compiled engine generates
    /// them once per filter and feeds them back through
    /// [`FeatureBlock::evaluate_prepared`].
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParameter`] for a wrong weight count and
    /// propagates encoding errors for values outside `[-1, 1]`.
    pub fn weight_streams(&self, weights: &[f64]) -> Result<Vec<Vec<BitStream>>, ScError> {
        if weights.len() != self.input_size {
            return Err(ScError::InvalidParameter {
                name: "weights",
                message: format!(
                    "expected {} weights, got {}",
                    self.input_size,
                    weights.len()
                ),
            });
        }
        // One batched generator (a single staged-recurrence scratch) fills
        // every field's bank; bit-identical to per-lane `SngBank` generators.
        let mut batch = BatchSng::new(SngKind::Lfsr32);
        (0..self.pool_window)
            .map(|field| {
                let (_, weight_seed) = self.operand_bank_seeds(field);
                batch.generate_bipolar_bank(weight_seed, weights, self.stream_length)
            })
            .collect()
    }

    /// Evaluates the block from pre-generated operand streams.
    ///
    /// `inputs[i]` / `weights[i]` are the per-lane input and weight streams
    /// of pool-window field `i`, as produced by the SNG banks seeded with
    /// [`FeatureBlock::operand_bank_seeds`] (for the weights, exactly what
    /// [`FeatureBlock::weight_streams`] returns). The result is bit-identical
    /// to [`FeatureBlock::evaluate_stream`] on the corresponding values: the
    /// fused multiply-accumulate kernels, the per-field MUX selectors, the
    /// pooling block and the activation are applied in the same order with
    /// the same seeds.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParameter`] for mismatched field or lane
    /// counts and propagates kernel errors for mismatched stream lengths.
    pub fn evaluate_prepared(
        &self,
        inputs: &[Vec<BitStream>],
        weights: &[Vec<BitStream>],
    ) -> Result<BitStream, ScError> {
        if inputs.len() != self.pool_window || weights.len() != self.pool_window {
            return Err(ScError::InvalidParameter {
                name: "inputs",
                message: format!(
                    "expected {} prepared fields, got {} input / {} weight fields",
                    self.pool_window,
                    inputs.len(),
                    weights.len()
                ),
            });
        }
        for (field, (xs, ws)) in inputs.iter().zip(weights.iter()).enumerate() {
            if xs.len() != self.input_size || ws.len() != self.input_size {
                return Err(ScError::InvalidParameter {
                    name: "inputs",
                    message: format!(
                        "field {field} has {} input / {} weight lanes, expected {}",
                        xs.len(),
                        ws.len(),
                        self.input_size
                    ),
                });
            }
        }
        match self.kind {
            FeatureBlockKind::MuxAvgStanh | FeatureBlockKind::MuxMaxStanh => {
                let streams: Vec<BitStream> = inputs
                    .iter()
                    .zip(weights.iter())
                    .enumerate()
                    .map(|(field, (xs, ws))| {
                        let mut selector = mux_selector(self.field_seed(field));
                        MuxAdder::new().sum_products(xs, ws, &mut selector)
                    })
                    .collect::<Result<_, _>>()?;
                let pooled = if self.kind == FeatureBlockKind::MuxAvgStanh {
                    self.average_pooling().pool_streams(&streams)?
                } else {
                    HardwareMaxPooling::new(DEFAULT_MAX_POOL_SEGMENT)?.pool_streams(&streams)?
                };
                let stanh = self.stanh.as_ref().expect("MUX blocks carry a Stanh");
                Ok(stanh.apply(&pooled))
            }
            FeatureBlockKind::ApcAvgBtanh | FeatureBlockKind::ApcMaxBtanh => {
                let counts: Vec<CountStream> = inputs
                    .iter()
                    .zip(weights.iter())
                    .map(|(xs, ws)| Apc::new().count_products(xs, ws))
                    .collect::<Result<_, _>>()?;
                let pooled = if self.kind == FeatureBlockKind::ApcAvgBtanh {
                    CountStream::merge_sum(&counts)?
                } else {
                    HardwareMaxPooling::new(DEFAULT_MAX_POOL_SEGMENT)?.pool_counts(&counts)?
                };
                let btanh = self.btanh.as_ref().expect("APC blocks carry a Btanh");
                Ok(btanh.apply(&pooled))
            }
        }
    }

    /// Evaluates *all output units of one layer position* from pre-generated
    /// operand streams in a single fused call.
    ///
    /// `inputs[field][lane]` are the input streams of pool-window field
    /// `field`, shared by every unit (all units of an SC layer see the same
    /// receptive fields through identically-wired SNG banks — the layer-level
    /// analogue of the paper's filter-aware SRAM sharing).
    /// `unit_weights[u][field][lane]` are unit `u`'s weight streams, exactly
    /// what [`FeatureBlock::weight_streams`] returns for its filter.
    ///
    /// `result[u]` is **bit-identical** to
    /// `self.evaluate_prepared(inputs, unit_weights[u])`, but the fused path
    /// does the shared work once instead of once per unit:
    ///
    /// * MUX selector samples are drawn, fastmod-reduced and bit-sliced once
    ///   per pool-window field into a [`MuxSelectorPlan`] that every unit
    ///   replays (the selector LFSRs are seeded per field, not per unit);
    /// * the average-pooling MUX selector is likewise planned once;
    /// * APC popcounts run through the shared-input bit-transposed
    ///   carry-save kernel ([`Apc::count_products_shared`]): every input
    ///   word is loaded once for all units and compressed through in-register
    ///   3:2 compressors into per-unit vertical counters (see
    ///   [`sc_core::csa`]);
    /// * the Btanh/Stanh walks of all units are interleaved word-by-word
    ///   ([`BtanhBlock::apply_batch`] / [`StanhBlock::apply_batch`]).
    ///
    /// [`StanhBlock::apply_batch`]: crate::activation_block::StanhBlock::apply_batch
    /// [`BtanhBlock::apply_batch`]: crate::activation_block::BtanhBlock::apply_batch
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParameter`] for mismatched field or lane
    /// counts of the shared inputs or any unit's weights, and propagates
    /// kernel errors for mismatched stream lengths.
    pub fn evaluate_layer_prepared(
        &self,
        inputs: &[Vec<BitStream>],
        unit_weights: &[&[Vec<BitStream>]],
    ) -> Result<Vec<BitStream>, ScError> {
        let length = inputs
            .first()
            .and_then(|field| field.first())
            .map(BitStream::len)
            .unwrap_or(self.stream_length.bits());
        let selectors = self.prepare_selectors(length)?;
        self.evaluate_layer_prepared_with(&selectors, inputs, unit_weights, &mut StreamArena::new())
    }

    /// Pre-draws the selector plans shared by *every* unit and every
    /// position of one SC layer for streams of `stream_bits` bits.
    ///
    /// The plans depend only on the block's seeds and the stream length —
    /// not on the operands — so an engine evaluating a whole layer builds
    /// them once and replays them across all positions (and all fan-out
    /// workers) via [`FeatureBlock::evaluate_layer_prepared_with`]. APC
    /// kinds need no selector plans; their prepared set is empty.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParameter`] for a zero `stream_bits`.
    pub fn prepare_selectors(&self, stream_bits: usize) -> Result<LayerSelectors, ScError> {
        let (field_plans, avg_plan) = match self.kind {
            FeatureBlockKind::MuxAvgStanh | FeatureBlockKind::MuxMaxStanh => {
                // Selector draws are a function of the field index only, so
                // one plan per field serves every unit at every position.
                let field_plans: Vec<MuxSelectorPlan> = (0..self.pool_window)
                    .map(|field| {
                        MuxSelectorPlan::new(
                            self.input_size,
                            stream_bits,
                            &mut mux_selector(self.field_seed(field)),
                        )
                    })
                    .collect::<Result<_, _>>()?;
                let avg_plan = if self.kind == FeatureBlockKind::MuxAvgStanh {
                    Some(
                        self.average_pooling()
                            .selector_plan(self.pool_window, stream_bits)?,
                    )
                } else {
                    None
                };
                (field_plans, avg_plan)
            }
            FeatureBlockKind::ApcAvgBtanh | FeatureBlockKind::ApcMaxBtanh => {
                sc_core::bitstream::StreamLength::try_new(stream_bits)?;
                (Vec::new(), None)
            }
        };
        Ok(LayerSelectors {
            field_plans,
            avg_plan,
            stream_bits,
        })
    }

    /// [`FeatureBlock::evaluate_layer_prepared`] with externally-prepared
    /// selector plans (see [`FeatureBlock::prepare_selectors`]) and an
    /// externally-owned [`StreamArena`], so the draw + fastmod + bit-slice
    /// pass is not repeated per call and steady-state evaluation allocates
    /// no stream or count buffers.
    ///
    /// **Arena contract**: the caller owns `arena` and threads it down; all
    /// intermediates (per-field MUX sums, APC column counts, pooled streams)
    /// are taken from and recycled into it before the call returns. The
    /// returned output streams are arena-backed too — the caller recycles
    /// them once decoded. Error paths drop in-flight buffers instead of
    /// pooling them (an error means a caller bug, not steady state).
    ///
    /// # Errors
    ///
    /// Same conditions as [`FeatureBlock::evaluate_layer_prepared`], plus
    /// [`ScError::LengthMismatch`] for selectors prepared for a different
    /// stream length.
    pub fn evaluate_layer_prepared_with(
        &self,
        selectors: &LayerSelectors,
        inputs: &[Vec<BitStream>],
        unit_weights: &[&[Vec<BitStream>]],
        arena: &mut StreamArena,
    ) -> Result<Vec<BitStream>, ScError> {
        self.validate_prepared_fields("inputs", inputs)?;
        for (unit, weights) in unit_weights.iter().enumerate() {
            self.validate_prepared_fields("unit_weights", weights)
                .map_err(|_| ScError::InvalidParameter {
                    name: "unit_weights",
                    message: format!(
                        "unit {unit} weight streams do not match {} fields x {} lanes",
                        self.pool_window, self.input_size
                    ),
                })?;
        }
        if unit_weights.is_empty() {
            return Ok(Vec::new());
        }
        match self.kind {
            FeatureBlockKind::MuxAvgStanh | FeatureBlockKind::MuxMaxStanh => {
                if selectors.field_plans.len() != self.pool_window {
                    return Err(ScError::InvalidParameter {
                        name: "selectors",
                        message: format!(
                            "{} field plans do not cover {} pool-window fields",
                            selectors.field_plans.len(),
                            self.pool_window
                        ),
                    });
                }
                if self.kind == FeatureBlockKind::MuxAvgStanh && selectors.avg_plan.is_none() {
                    return Err(ScError::InvalidParameter {
                        name: "selectors",
                        message: "average-pooling MUX plan missing (selectors prepared for a \
                                  different block?)"
                            .into(),
                    });
                }
                let length = StreamLength::try_new(selectors.stream_bits)?;
                let mut pooled_units = Vec::with_capacity(unit_weights.len());
                let mut field_sums: Vec<BitStream> = Vec::with_capacity(self.pool_window);
                for weights in unit_weights {
                    for ((xs, ws), plan) in inputs
                        .iter()
                        .zip(weights.iter())
                        .zip(selectors.field_plans.iter())
                    {
                        let mut sum = arena.take_zeroed(length);
                        MuxAdder::new().sum_products_with_plan_into(xs, ws, plan, &mut sum)?;
                        field_sums.push(sum);
                    }
                    let pooled = match &selectors.avg_plan {
                        Some(plan) => self.average_pooling().pool_streams_with_plan_with(
                            &field_sums,
                            plan,
                            arena,
                        )?,
                        None => HardwareMaxPooling::new(DEFAULT_MAX_POOL_SEGMENT)?
                            .pool_streams_with(&field_sums, arena)?,
                    };
                    arena.recycle_all(field_sums.drain(..));
                    pooled_units.push(pooled);
                }
                let stanh = self.stanh.as_ref().expect("MUX blocks carry a Stanh");
                let refs: Vec<&BitStream> = pooled_units.iter().collect();
                let outputs = stanh.apply_batch_with(&refs, arena);
                drop(refs);
                arena.recycle_all(pooled_units);
                Ok(outputs)
            }
            FeatureBlockKind::ApcAvgBtanh | FeatureBlockKind::ApcMaxBtanh => {
                // counts transposed to unit-major as each field's shared
                // CSA pass completes (no per-unit copies of the buffers).
                let mut per_unit: Vec<Vec<CountStream>> = (0..unit_weights.len())
                    .map(|_| Vec::with_capacity(self.pool_window))
                    .collect();
                for field in 0..self.pool_window {
                    let field_weights: Vec<&[BitStream]> = unit_weights
                        .iter()
                        .map(|weights| weights[field].as_slice())
                        .collect();
                    let field_counts = Apc::new().count_products_shared_with(
                        &inputs[field],
                        &field_weights,
                        arena,
                    )?;
                    for (unit, stream) in field_counts.into_iter().enumerate() {
                        per_unit[unit].push(stream);
                    }
                }
                let mut pooled_units = Vec::with_capacity(unit_weights.len());
                for unit_counts in &per_unit {
                    pooled_units.push(if self.kind == FeatureBlockKind::ApcAvgBtanh {
                        CountStream::merge_sum_with(unit_counts, arena)?
                    } else {
                        HardwareMaxPooling::new(DEFAULT_MAX_POOL_SEGMENT)?
                            .pool_counts_with(unit_counts, arena)?
                    });
                }
                let btanh = self.btanh.as_ref().expect("APC blocks carry a Btanh");
                let refs: Vec<&CountStream> = pooled_units.iter().collect();
                let outputs = btanh.apply_batch_with(&refs, arena);
                drop(refs);
                for unit_counts in per_unit {
                    for counts in unit_counts {
                        arena.recycle_counts(counts.into_counts());
                    }
                }
                for pooled in pooled_units {
                    arena.recycle_counts(pooled.into_counts());
                }
                Ok(outputs)
            }
        }
    }

    /// Validates one prepared `[field][lane]` stream set against this
    /// block's pool window and receptive-field size.
    fn validate_prepared_fields(
        &self,
        name: &'static str,
        fields: &[Vec<BitStream>],
    ) -> Result<(), ScError> {
        if fields.len() != self.pool_window {
            return Err(ScError::InvalidParameter {
                name,
                message: format!(
                    "expected {} prepared fields, got {}",
                    self.pool_window,
                    fields.len()
                ),
            });
        }
        for (field, lanes) in fields.iter().enumerate() {
            if lanes.len() != self.input_size {
                return Err(ScError::InvalidParameter {
                    name,
                    message: format!(
                        "field {field} has {} lanes, expected {}",
                        lanes.len(),
                        self.input_size
                    ),
                });
            }
        }
        Ok(())
    }

    /// Evaluates the block and decodes the output to a bipolar value.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FeatureBlock::evaluate_stream`].
    pub fn evaluate(&self, receptive_fields: &[Vec<f64>], weights: &[f64]) -> Result<f64, ScError> {
        Ok(self
            .evaluate_stream(receptive_fields, weights)?
            .bipolar_value())
    }

    /// The floating-point reference output: `tanh(pool(⟨xᵢ, w⟩))` with the
    /// pooling operator matching this configuration.
    ///
    /// # Errors
    ///
    /// Same validation as [`FeatureBlock::evaluate_stream`].
    pub fn reference(
        &self,
        receptive_fields: &[Vec<f64>],
        weights: &[f64],
    ) -> Result<f64, ScError> {
        self.validate(receptive_fields, weights)?;
        let inner_products: Vec<f64> = receptive_fields
            .iter()
            .map(|field| reference_inner_product(field, weights))
            .collect();
        let pooled = if self.kind.uses_max_pooling() {
            inner_products
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        } else {
            inner_products.iter().sum::<f64>() / inner_products.len() as f64
        };
        Ok(pooled.tanh())
    }

    /// Absolute error of the SC evaluation against the reference for one
    /// input set.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FeatureBlock::evaluate_stream`].
    pub fn absolute_error(
        &self,
        receptive_fields: &[Vec<f64>],
        weights: &[f64],
    ) -> Result<f64, ScError> {
        let sc = self.evaluate(receptive_fields, weights)?;
        let reference = self.reference(receptive_fields, weights)?;
        Ok((sc - reference).abs())
    }

    fn validate(&self, receptive_fields: &[Vec<f64>], weights: &[f64]) -> Result<(), ScError> {
        if receptive_fields.len() != self.pool_window {
            return Err(ScError::InvalidParameter {
                name: "receptive_fields",
                message: format!(
                    "expected {} receptive fields, got {}",
                    self.pool_window,
                    receptive_fields.len()
                ),
            });
        }
        if weights.len() != self.input_size {
            return Err(ScError::InvalidParameter {
                name: "weights",
                message: format!(
                    "expected {} weights, got {}",
                    self.input_size,
                    weights.len()
                ),
            });
        }
        for (i, field) in receptive_fields.iter().enumerate() {
            if field.len() != self.input_size {
                return Err(ScError::InvalidParameter {
                    name: "receptive_fields",
                    message: format!(
                        "receptive field {i} has {} elements, expected {}",
                        field.len(),
                        self.input_size
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_case(input_size: usize, pool_window: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = 1.0 / (input_size as f64).sqrt();
        let fields = (0..pool_window)
            .map(|_| (0..input_size).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let weights = (0..input_size)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        (fields, weights)
    }

    #[test]
    fn kind_component_mapping_is_consistent() {
        for kind in FeatureBlockKind::ALL {
            match kind.activation() {
                ActivationKind::Stanh => assert_eq!(kind.inner_product(), InnerProductKind::Mux),
                ActivationKind::Btanh => assert_eq!(kind.inner_product(), InnerProductKind::Apc),
            }
            assert!(!kind.name().is_empty());
            assert_eq!(kind.to_string(), kind.name());
        }
        assert!(FeatureBlockKind::MuxMaxStanh.uses_max_pooling());
        assert!(!FeatureBlockKind::ApcAvgBtanh.uses_max_pooling());
    }

    #[test]
    fn construction_validates_parameters() {
        let len = StreamLength::new(256);
        assert!(FeatureBlock::new(FeatureBlockKind::ApcAvgBtanh, 0, len, 1).is_err());
        assert!(
            FeatureBlock::with_pool_window(FeatureBlockKind::ApcAvgBtanh, 4, 0, len, 1).is_err()
        );
        let block = FeatureBlock::new(FeatureBlockKind::ApcAvgBtanh, 16, len, 1).unwrap();
        assert_eq!(block.input_size(), 16);
        assert_eq!(block.pool_window(), 4);
        assert_eq!(block.stream_length(), len);
        assert_eq!(block.activation_states(), 32);
    }

    #[test]
    fn evaluation_validates_shapes() {
        let block =
            FeatureBlock::new(FeatureBlockKind::ApcAvgBtanh, 8, StreamLength::new(128), 3).unwrap();
        let (fields, weights) = random_case(8, 4, 1);
        assert!(block.evaluate(&fields[..3], &weights).is_err());
        assert!(block.evaluate(&fields, &weights[..7]).is_err());
        let mut bad_fields = fields.clone();
        bad_fields[2].pop();
        assert!(block.evaluate(&bad_fields, &weights).is_err());
        assert!(block.evaluate(&fields, &weights).is_ok());
    }

    #[test]
    fn apc_blocks_track_reference_closely() {
        let mut total_error = 0.0;
        let trials = 6;
        for trial in 0..trials {
            let block = FeatureBlock::new(
                FeatureBlockKind::ApcAvgBtanh,
                16,
                StreamLength::new(1024),
                trial,
            )
            .unwrap();
            let (fields, weights) = random_case(16, 4, 500 + trial);
            total_error += block.absolute_error(&fields, &weights).unwrap();
        }
        let mean_error = total_error / trials as f64;
        assert!(
            mean_error < 0.25,
            "APC-Avg-Btanh mean error {mean_error} too large"
        );
    }

    #[test]
    fn apc_max_block_tracks_reference() {
        let block = FeatureBlock::new(
            FeatureBlockKind::ApcMaxBtanh,
            16,
            StreamLength::new(1024),
            9,
        )
        .unwrap();
        let (fields, weights) = random_case(16, 4, 77);
        let error = block.absolute_error(&fields, &weights).unwrap();
        assert!(error < 0.4, "APC-Max-Btanh error {error} too large");
    }

    #[test]
    fn apc_is_more_accurate_than_mux_avg() {
        let mut apc_error = 0.0;
        let mut mux_error = 0.0;
        let trials = 6;
        for trial in 0..trials {
            let (fields, weights) = random_case(32, 4, 900 + trial);
            let apc = FeatureBlock::new(
                FeatureBlockKind::ApcAvgBtanh,
                32,
                StreamLength::new(1024),
                trial,
            )
            .unwrap();
            let mux = FeatureBlock::new(
                FeatureBlockKind::MuxAvgStanh,
                32,
                StreamLength::new(1024),
                trial,
            )
            .unwrap();
            apc_error += apc.absolute_error(&fields, &weights).unwrap();
            mux_error += mux.absolute_error(&fields, &weights).unwrap();
        }
        assert!(
            apc_error < mux_error,
            "expected APC ({apc_error}) to be more accurate than MUX-Avg ({mux_error})"
        );
    }

    #[test]
    fn mux_blocks_produce_streams_of_configured_length() {
        for kind in [FeatureBlockKind::MuxAvgStanh, FeatureBlockKind::MuxMaxStanh] {
            let block = FeatureBlock::new(kind, 8, StreamLength::new(256), 5).unwrap();
            let (fields, weights) = random_case(8, 4, 31);
            let stream = block.evaluate_stream(&fields, &weights).unwrap();
            assert_eq!(stream.len(), 256);
        }
    }

    #[test]
    fn reference_uses_matching_pooling() {
        let (fields, weights) = random_case(8, 4, 13);
        let avg_block =
            FeatureBlock::new(FeatureBlockKind::ApcAvgBtanh, 8, StreamLength::new(128), 1).unwrap();
        let max_block =
            FeatureBlock::new(FeatureBlockKind::ApcMaxBtanh, 8, StreamLength::new(128), 1).unwrap();
        let avg_ref = avg_block.reference(&fields, &weights).unwrap();
        let max_ref = max_block.reference(&fields, &weights).unwrap();
        assert!(
            max_ref >= avg_ref - 1e-12,
            "max pooling reference must dominate average"
        );
    }

    #[test]
    fn prepared_evaluation_is_bit_exact_with_per_call_path() {
        for kind in FeatureBlockKind::ALL {
            for len in [100usize, 127, 256] {
                let block = FeatureBlock::new(kind, 8, StreamLength::new(len), 77).unwrap();
                let (fields, weights) = random_case(8, 4, 1234 + len as u64);
                let per_call = block.evaluate_stream(&fields, &weights).unwrap();
                // Re-create the operand streams through the published seed
                // scheme and evaluate from streams.
                let weight_streams = block.weight_streams(&weights).unwrap();
                let input_streams: Vec<Vec<_>> = fields
                    .iter()
                    .enumerate()
                    .map(|(i, field)| {
                        let (input_seed, _) = block.operand_bank_seeds(i);
                        sc_core::sng::SngBank::new(
                            sc_core::sng::SngKind::Lfsr32,
                            field.len(),
                            input_seed,
                        )
                        .generate_bipolar(field, block.stream_length())
                        .unwrap()
                    })
                    .collect();
                let prepared = block
                    .evaluate_prepared(&input_streams, &weight_streams)
                    .unwrap();
                assert_eq!(prepared, per_call, "{kind} at length {len}");
            }
        }
    }

    /// Input streams for `fields` through the published seed scheme.
    fn input_streams_for(block: &FeatureBlock, fields: &[Vec<f64>]) -> Vec<Vec<BitStream>> {
        fields
            .iter()
            .enumerate()
            .map(|(i, field)| {
                let (input_seed, _) = block.operand_bank_seeds(i);
                sc_core::sng::SngBank::new(sc_core::sng::SngKind::Lfsr32, field.len(), input_seed)
                    .generate_bipolar(field, block.stream_length())
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn layer_fused_evaluation_is_bit_exact_with_per_unit_path() {
        // All four kinds, lengths including the non-word-multiple 127, and
        // several units sharing the layer's input streams — the fused call
        // must reproduce the per-unit prepared path (itself pinned to
        // `evaluate_stream`) bit for bit, serial or parallel.
        for kind in FeatureBlockKind::ALL {
            for len in [100usize, 127, 256] {
                let block = FeatureBlock::new(kind, 8, StreamLength::new(len), 77).unwrap();
                let (fields, _) = random_case(8, 4, 4321 + len as u64);
                let inputs = input_streams_for(&block, &fields);
                let unit_filters: Vec<Vec<f64>> =
                    (0..3).map(|u| random_case(8, 4, 9000 + u).1).collect();
                let unit_streams: Vec<Vec<Vec<BitStream>>> = unit_filters
                    .iter()
                    .map(|filter| block.weight_streams(filter).unwrap())
                    .collect();
                let unit_refs: Vec<&[Vec<BitStream>]> =
                    unit_streams.iter().map(|u| u.as_slice()).collect();
                let fused = block.evaluate_layer_prepared(&inputs, &unit_refs).unwrap();
                assert_eq!(fused.len(), 3);
                for (unit, filter) in unit_filters.iter().enumerate() {
                    let per_unit = block
                        .evaluate_prepared(&inputs, &unit_streams[unit])
                        .unwrap();
                    assert_eq!(fused[unit], per_unit, "{kind} unit {unit} at length {len}");
                    let per_call = block.evaluate_stream(&fields, filter).unwrap();
                    assert_eq!(fused[unit], per_call, "{kind} unit {unit} vs per-call");
                }
            }
        }
    }

    #[test]
    fn layer_fused_arena_path_is_bit_exact_and_allocation_free_in_steady_state() {
        // The arena-threaded fused call must (a) reproduce the allocating
        // path bit for bit and (b) take every stream/count buffer from the
        // pool once the arena is warm.
        for kind in FeatureBlockKind::ALL {
            let block = FeatureBlock::new(kind, 8, StreamLength::new(127), 77).unwrap();
            let (fields, _) = random_case(8, 4, 4321);
            let inputs = input_streams_for(&block, &fields);
            let unit_streams: Vec<Vec<Vec<BitStream>>> = (0..3)
                .map(|u| {
                    block
                        .weight_streams(&random_case(8, 4, 9000 + u).1)
                        .unwrap()
                })
                .collect();
            let unit_refs: Vec<&[Vec<BitStream>]> =
                unit_streams.iter().map(|u| u.as_slice()).collect();
            let expected = block.evaluate_layer_prepared(&inputs, &unit_refs).unwrap();
            let selectors = block.prepare_selectors(127).unwrap();
            let mut arena = StreamArena::new();
            let mut warm_allocs = 0;
            for round in 0..3 {
                let outputs = block
                    .evaluate_layer_prepared_with(&selectors, &inputs, &unit_refs, &mut arena)
                    .unwrap();
                assert_eq!(outputs, expected, "{kind} round {round}");
                arena.recycle_all(outputs);
                let stats = arena.stats();
                if round == 0 {
                    warm_allocs = stats.total_allocs();
                } else {
                    assert_eq!(
                        stats.total_allocs(),
                        warm_allocs,
                        "{kind}: steady-state fused evaluation must not allocate \
                         stream or count buffers (round {round})"
                    );
                }
            }
        }
    }

    #[test]
    fn layer_fused_evaluation_is_schedule_independent() {
        // The per-call path fans receptive fields across threads; the fused
        // path must match it whatever the thread budget is.
        let kind = FeatureBlockKind::ApcMaxBtanh;
        let block = FeatureBlock::new(kind, 8, StreamLength::new(127), 3).unwrap();
        let (fields, _) = random_case(8, 4, 555);
        let inputs = input_streams_for(&block, &fields);
        let filter = random_case(8, 4, 556).1;
        let weight_streams = block.weight_streams(&filter).unwrap();
        let refs: Vec<&[Vec<BitStream>]> = vec![weight_streams.as_slice()];
        let fused = block.evaluate_layer_prepared(&inputs, &refs).unwrap();
        for limit in [1usize, 4] {
            sc_core::parallel::set_thread_limit(limit);
            let per_call = block.evaluate_stream(&fields, &filter).unwrap();
            sc_core::parallel::set_thread_limit(0);
            assert_eq!(fused[0], per_call, "thread limit {limit}");
        }
    }

    #[test]
    fn layer_fused_evaluation_validates_shapes() {
        let block =
            FeatureBlock::new(FeatureBlockKind::MuxAvgStanh, 4, StreamLength::new(64), 3).unwrap();
        let (fields, weights) = random_case(4, 4, 9);
        let inputs = input_streams_for(&block, &fields);
        let weight_streams = block.weight_streams(&weights).unwrap();
        let good: Vec<&[Vec<BitStream>]> = vec![weight_streams.as_slice()];
        // No units: valid, empty result.
        assert!(block
            .evaluate_layer_prepared(&inputs, &[])
            .unwrap()
            .is_empty());
        // Wrong field count in the shared inputs.
        assert!(block.evaluate_layer_prepared(&inputs[..3], &good).is_err());
        // Wrong lane count in one unit's weights.
        let mut short = weight_streams.clone();
        short[1].pop();
        let bad: Vec<&[Vec<BitStream>]> = vec![weight_streams.as_slice(), short.as_slice()];
        assert!(block.evaluate_layer_prepared(&inputs, &bad).is_err());
        assert!(block.evaluate_layer_prepared(&inputs, &good).is_ok());
    }

    #[test]
    fn prepared_evaluation_validates_shapes() {
        let block =
            FeatureBlock::new(FeatureBlockKind::ApcAvgBtanh, 4, StreamLength::new(64), 3).unwrap();
        let (fields, weights) = random_case(4, 4, 9);
        let weight_streams = block.weight_streams(&weights).unwrap();
        let input_streams: Vec<Vec<_>> = fields
            .iter()
            .enumerate()
            .map(|(i, field)| {
                let (input_seed, _) = block.operand_bank_seeds(i);
                sc_core::sng::SngBank::new(sc_core::sng::SngKind::Lfsr32, field.len(), input_seed)
                    .generate_bipolar(field, block.stream_length())
                    .unwrap()
            })
            .collect();
        assert!(block
            .evaluate_prepared(&input_streams[..3], &weight_streams)
            .is_err());
        let mut short = input_streams.clone();
        short[1].pop();
        assert!(block.evaluate_prepared(&short, &weight_streams).is_err());
        assert!(block.weight_streams(&weights[..3]).is_err());
        assert!(block
            .evaluate_prepared(&input_streams, &weight_streams)
            .is_ok());
    }

    #[test]
    fn output_is_within_bipolar_range() {
        for kind in FeatureBlockKind::ALL {
            let block = FeatureBlock::new(kind, 16, StreamLength::new(256), 21).unwrap();
            let (fields, weights) = random_case(16, 4, 321);
            let value = block.evaluate(&fields, &weights).unwrap();
            assert!(
                (-1.0..=1.0).contains(&value),
                "{kind}: output {value} outside [-1, 1]"
            );
        }
    }
}
