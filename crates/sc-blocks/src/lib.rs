//! # sc-blocks
//!
//! SC-DCNN *function blocks* and *feature extraction blocks*.
//!
//! The paper decomposes a DCNN layer into three kinds of basic operations —
//! inner product (convolution), pooling, and activation — and builds an SC
//! hardware *function block* for each. A *feature extraction block* (FEB)
//! cascades four inner-product blocks, one pooling block and one activation
//! block, and is the unit the network-level optimizer reasons about.
//!
//! This crate provides:
//!
//! * [`inner_product`] — OR-gate, MUX, APC, exact-counter and two-line
//!   inner-product blocks (Section 4.1, Tables 1–3).
//! * [`pooling`] — average pooling and the paper's novel hardware-oriented
//!   max pooling, in both the stream domain and the binary (APC output)
//!   domain (Section 4.2, Table 4).
//! * [`activation_block`] — Stanh and Btanh activation blocks with the
//!   jointly-optimized state-count selection of Section 4.4.
//! * [`feature_block`] — the four FEB configurations
//!   (`MUX-Avg-Stanh`, `MUX-Max-Stanh`, `APC-Avg-Btanh`, `APC-Max-Btanh`)
//!   behind one [`feature_block::FeatureBlock`] type (Figures 14–15).
//! * [`accuracy`] — Monte-Carlo harnesses measuring block inaccuracy against
//!   floating-point references, used by the experiment binaries.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod accuracy;
pub mod activation_block;
pub mod feature_block;
pub mod inner_product;
pub mod pooling;

pub use feature_block::{FeatureBlock, FeatureBlockKind};
pub use inner_product::{
    ApcInnerProduct, ExactCounterInnerProduct, InnerProductKind, MuxInnerProduct, OrInnerProduct,
    TwoLineInnerProduct,
};
pub use pooling::{AveragePooling, HardwareMaxPooling, PoolingKind, SoftwareMaxPooling};
