//! Monte-Carlo accuracy measurement for function blocks and feature
//! extraction blocks.
//!
//! All the accuracy tables and figures in the paper (Tables 1–5, Fig. 9,
//! Fig. 14) are averages over randomly drawn inputs. This module implements
//! one measurement routine per experiment so the `sc-bench` binaries contain
//! only formatting code. Every routine takes an explicit seed and trial
//! count, runs the trials across threads, and returns an
//! [`sc_core::stats::ErrorSummary`] so the numbers are
//! reproducible run to run.

use crate::feature_block::{FeatureBlock, FeatureBlockKind};
use crate::inner_product::{
    reference_inner_product, ApcInnerProduct, ExactCounterInnerProduct, MuxInnerProduct,
    OrInnerProduct,
};
use crate::pooling::{HardwareMaxPooling, SoftwareMaxPooling};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sc_core::activation::Stanh;
use sc_core::bitstream::StreamLength;
use sc_core::sng::{Sng, SngKind};
use sc_core::stats::ErrorSummary;

/// Runs `trials` independent trials of `f` across threads and summarizes the
/// `(observed, reference)` pairs.
///
/// Every trial seeds its RNG from its own index, so the summary is identical
/// whatever the thread count (including the serial fallback when the
/// `parallel` feature is disabled).
///
/// # Panics
///
/// Panics if `trials` is zero or a worker thread panics.
pub fn parallel_monte_carlo<F>(trials: usize, seed: u64, f: F) -> ErrorSummary
where
    F: Fn(usize, &mut StdRng) -> (f64, f64) + Sync,
{
    assert!(trials > 0, "at least one trial is required");
    let pairs = sc_core::parallel::parallel_map_range(trials, |index| {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(index as u64 * 0x9E37_79B9));
        f(index, &mut rng)
    });
    let observed: Vec<f64> = pairs.iter().map(|&(o, _)| o).collect();
    let reference: Vec<f64> = pairs.iter().map(|&(_, r)| r).collect();
    ErrorSummary::from_pairs(&observed, &reference)
}

fn draw_values(rng: &mut StdRng, count: usize, bound: f64) -> Vec<f64> {
    (0..count).map(|_| rng.gen_range(-bound..bound)).collect()
}

/// Table 1: absolute error of the OR-gate inner-product block.
///
/// Inputs and weights are drawn positive for the unipolar variant and in
/// `[-1, 1]` for the bipolar variant, matching the paper's observation that
/// bipolar OR addition cannot be rescued by pre-scaling.
pub fn or_inner_product_error(
    unipolar: bool,
    input_size: usize,
    stream_length: usize,
    trials: usize,
    seed: u64,
) -> ErrorSummary {
    parallel_monte_carlo(trials, seed, |index, rng| {
        let (inputs, weights): (Vec<f64>, Vec<f64>) = if unipolar {
            (
                (0..input_size).map(|_| rng.gen_range(0.0..1.0)).collect(),
                (0..input_size).map(|_| rng.gen_range(0.0..1.0)).collect(),
            )
        } else {
            (
                draw_values(rng, input_size, 1.0),
                draw_values(rng, input_size, 1.0),
            )
        };
        let block = OrInnerProduct::new(unipolar, seed ^ (index as u64) << 1);
        let observed = block
            .evaluate(&inputs, &weights, StreamLength::new(stream_length))
            .expect("valid inputs");
        (observed, reference_inner_product(&inputs, &weights))
    })
}

/// Table 2: absolute error of the MUX-based inner-product block.
pub fn mux_inner_product_error(
    input_size: usize,
    stream_length: usize,
    trials: usize,
    seed: u64,
) -> ErrorSummary {
    parallel_monte_carlo(trials, seed, |index, rng| {
        let inputs = draw_values(rng, input_size, 1.0);
        let weights = draw_values(rng, input_size, 1.0);
        let block = MuxInnerProduct::new(seed ^ (index as u64) << 1);
        let observed = block
            .evaluate(&inputs, &weights, StreamLength::new(stream_length))
            .expect("valid inputs");
        (observed, reference_inner_product(&inputs, &weights))
    })
}

/// Table 3: relative error of the APC-based inner-product block compared with
/// the exact (conventional accumulative) parallel counter.
///
/// The comparison is made on the accumulated one-counts (the raw output of
/// the counters), matching how the paper compares the two blocks: the
/// summary's `mean_relative` column corresponds to Table 3's entries.
pub fn apc_vs_exact_error(
    input_size: usize,
    stream_length: usize,
    trials: usize,
    seed: u64,
) -> ErrorSummary {
    parallel_monte_carlo(trials, seed, |index, rng| {
        let inputs = draw_values(rng, input_size, 1.0);
        let weights = draw_values(rng, input_size, 1.0);
        let length = StreamLength::new(stream_length);
        let block_seed = seed ^ (index as u64) << 1;
        let apc = ApcInnerProduct::new(block_seed)
            .evaluate_counts(&inputs, &weights, length)
            .expect("valid");
        let exact = ExactCounterInnerProduct::new(block_seed)
            .evaluate_counts(&inputs, &weights, length)
            .expect("valid");
        (apc.total() as f64, exact.total() as f64)
    })
}

/// Table 4: relative deviation of the hardware-oriented max pooling block
/// from the software max pooling baseline.
///
/// `input_size` is the number of candidate streams entering the pooling block
/// (the paper uses 4, 9 and 16).
pub fn hardware_max_pool_deviation(
    input_size: usize,
    stream_length: usize,
    segment_bits: usize,
    trials: usize,
    seed: u64,
) -> ErrorSummary {
    parallel_monte_carlo(trials, seed, |index, rng| {
        let length = StreamLength::new(stream_length);
        let values = draw_values(rng, input_size, 1.0);
        let streams: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(lane, &v)| {
                Sng::new(SngKind::Lfsr32, seed ^ ((index * 251 + lane) as u64))
                    .generate_bipolar(v, length)
                    .expect("in range")
            })
            .collect();
        let hw = HardwareMaxPooling::new(segment_bits)
            .expect("segment length > 0")
            .pool_streams(&streams)
            .expect("non-empty");
        let sw = SoftwareMaxPooling::new()
            .pool_streams(&streams)
            .expect("non-empty");
        // Deviations are reported relative to the unipolar (count) domain to
        // avoid dividing by near-zero bipolar values.
        (hw.unipolar_value(), sw.unipolar_value())
    })
}

/// Table 5 / Fig. 9: relative inaccuracy of Stanh(K, x) against tanh(K·x/2).
pub fn stanh_inaccuracy(
    states: usize,
    stream_length: usize,
    trials: usize,
    seed: u64,
) -> ErrorSummary {
    parallel_monte_carlo(trials, seed, |index, rng| {
        let x: f64 = rng.gen_range(-1.0..1.0);
        let mut sng = Sng::new(SngKind::Lfsr32, seed ^ (index as u64 * 31 + 7));
        let input = sng
            .generate_bipolar(x, StreamLength::new(stream_length))
            .expect("in range");
        let mut fsm = Stanh::new(states).expect("even state count");
        let observed = fsm.transform(&input).bipolar_value();
        (observed, fsm.reference(x))
    })
}

/// One point of the Stanh transfer curve (Fig. 9): the measured output for a
/// specific input value.
pub fn stanh_transfer_point(states: usize, stream_length: usize, x: f64, seed: u64) -> f64 {
    let mut sng = Sng::new(SngKind::Lfsr32, seed);
    let input = sng
        .generate_bipolar(x.clamp(-1.0, 1.0), StreamLength::new(stream_length))
        .expect("in range");
    let mut fsm = Stanh::new(states).expect("even state count");
    fsm.transform(&input).bipolar_value()
}

/// Fig. 14: average absolute inaccuracy of a feature extraction block.
///
/// Inputs are drawn uniformly from `[-1, 1]`; weights are drawn from
/// `[-2/√N, 2/√N]` so the inner products stay in the O(1) range a trained
/// convolution produces (Xavier-style scaling with the gain a tanh network
/// learns), keeping the reference activation exercised without permanent
/// saturation.
pub fn feature_block_inaccuracy(
    kind: FeatureBlockKind,
    input_size: usize,
    stream_length: usize,
    trials: usize,
    seed: u64,
) -> ErrorSummary {
    parallel_monte_carlo(trials, seed, |index, rng| {
        let block = FeatureBlock::new(
            kind,
            input_size,
            StreamLength::new(stream_length),
            seed ^ (index as u64) << 3,
        )
        .expect("valid configuration");
        let bound = 2.0 / (input_size as f64).sqrt();
        let fields: Vec<Vec<f64>> = (0..4).map(|_| draw_values(rng, input_size, 1.0)).collect();
        let weights = draw_values(rng, input_size, bound);
        let observed = block.evaluate(&fields, &weights).expect("valid shapes");
        let reference = block.reference(&fields, &weights).expect("valid shapes");
        (observed, reference)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_monte_carlo_is_deterministic() {
        let run = || {
            parallel_monte_carlo(64, 3, |_, rng| {
                let x: f64 = rng.gen_range(-1.0..1.0);
                (x * 0.9, x)
            })
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let _ = parallel_monte_carlo(0, 1, |_, _| (0.0, 0.0));
    }

    #[test]
    fn mux_error_decreases_with_stream_length() {
        let short = mux_inner_product_error(16, 256, 24, 11);
        let long = mux_inner_product_error(16, 2048, 24, 11);
        assert!(
            long.mean_absolute < short.mean_absolute,
            "longer streams should reduce MUX error ({} vs {})",
            long.mean_absolute,
            short.mean_absolute
        );
    }

    #[test]
    fn mux_error_grows_with_input_size() {
        let small = mux_inner_product_error(16, 1024, 24, 13);
        let large = mux_inner_product_error(64, 1024, 24, 13);
        assert!(
            large.mean_absolute > small.mean_absolute,
            "larger inputs should increase MUX error ({} vs {})",
            large.mean_absolute,
            small.mean_absolute
        );
    }

    #[test]
    fn apc_relative_error_is_small() {
        let summary = apc_vs_exact_error(32, 256, 16, 5);
        assert!(
            summary.mean_relative < 0.05,
            "APC relative error {}",
            summary.mean_relative
        );
    }

    #[test]
    fn bipolar_or_block_is_worse_than_unipolar() {
        let unipolar = or_inner_product_error(true, 16, 1024, 12, 9);
        let bipolar = or_inner_product_error(false, 16, 1024, 12, 9);
        assert!(bipolar.mean_absolute > unipolar.mean_absolute);
    }

    #[test]
    fn max_pool_deviation_is_moderate() {
        let summary = hardware_max_pool_deviation(4, 256, 16, 16, 3);
        assert!(
            summary.mean_relative < 0.3,
            "deviation {}",
            summary.mean_relative
        );
    }

    #[test]
    fn stanh_inaccuracy_is_bounded() {
        let summary = stanh_inaccuracy(10, 2048, 16, 7);
        assert!(summary.mean_relative < 0.5);
    }

    #[test]
    fn stanh_transfer_is_monotone_on_average() {
        let low = stanh_transfer_point(8, 4096, -0.8, 3);
        let high = stanh_transfer_point(8, 4096, 0.8, 3);
        assert!(high > low);
    }

    #[test]
    fn feature_block_inaccuracy_orders_designs() {
        let apc = feature_block_inaccuracy(FeatureBlockKind::ApcAvgBtanh, 16, 512, 8, 19);
        let mux = feature_block_inaccuracy(FeatureBlockKind::MuxAvgStanh, 16, 512, 8, 19);
        assert!(
            apc.mean_absolute < mux.mean_absolute,
            "APC ({}) should beat MUX-Avg ({})",
            apc.mean_absolute,
            mux.mean_absolute
        );
    }
}
