//! Gate inventories for the SC components used by SC-DCNN.
//!
//! Each function returns the [`GateCounts`] of one hardware component plus a
//! critical-path estimate, mirroring how the paper's blocks would be
//! assembled from standard cells before synthesis. The inventories follow the
//! structures described in Sections 3–4 of the paper (XNOR multiplier arrays,
//! MUX trees, approximate parallel counters built from full-adder trees,
//! FSM/counter-based activations, the segment-counter max pooling unit, and
//! LFSR+comparator SNGs).

use crate::cost::{HardwareCost, DEFAULT_ACTIVITY};
use crate::gates::{Gate, GateCounts};

fn log2_ceil(n: usize) -> usize {
    (usize::BITS - n.max(1).saturating_sub(1).leading_zeros()) as usize
}

/// XNOR multiplier array for `n` bipolar input/weight pairs.
pub fn xnor_array(n: usize) -> HardwareCost {
    let gates = GateCounts::new().with(Gate::Xnor2, n as f64);
    HardwareCost::from_gates(&gates, Gate::Xnor2.delay_ps(), DEFAULT_ACTIVITY)
}

/// n-to-1 MUX adder: `n − 1` two-input multiplexers arranged as a tree plus
/// the selector distribution buffers.
pub fn mux_adder(n: usize) -> HardwareCost {
    let n = n.max(2);
    let depth = log2_ceil(n);
    let gates = GateCounts::new()
        .with(Gate::Mux2, (n - 1) as f64)
        .with(Gate::Inv, depth as f64); // selector buffering
    let path = depth as f64 * Gate::Mux2.delay_ps();
    HardwareCost::from_gates(&gates, path, DEFAULT_ACTIVITY)
}

/// OR-gate adder over `n` streams (a tree of 2-input ORs).
pub fn or_adder(n: usize) -> HardwareCost {
    let n = n.max(2);
    let gates = GateCounts::new().with(Gate::Or2, (n - 1) as f64);
    let path = log2_ceil(n) as f64 * Gate::Or2.delay_ps();
    HardwareCost::from_gates(&gates, path, DEFAULT_ACTIVITY)
}

/// Exact (conventional accumulative) parallel counter over `n` inputs:
/// a full-adder tree with `n − log2(n)` adders plus an output register.
pub fn exact_parallel_counter(n: usize) -> HardwareCost {
    let n = n.max(2);
    let out_bits = log2_ceil(n + 1);
    let adders = (n as f64 - out_bits as f64).max(1.0);
    let gates = GateCounts::new()
        .with(Gate::FullAdder, adders)
        .with(Gate::Dff, out_bits as f64);
    let path = log2_ceil(n) as f64 * Gate::FullAdder.delay_ps() + Gate::Dff.delay_ps();
    HardwareCost::from_gates(&gates, path, DEFAULT_ACTIVITY)
}

/// Approximate parallel counter: the paper's reference reports ~40 % fewer
/// gates than the exact counter at the same depth.
pub fn approximate_parallel_counter(n: usize) -> HardwareCost {
    let exact = exact_parallel_counter(n);
    HardwareCost {
        area_um2: exact.area_um2 * 0.6,
        critical_path_ps: exact.critical_path_ps * 0.9,
        energy_per_cycle_fj: exact.energy_per_cycle_fj * 0.6,
        leakage_nw: exact.leakage_nw * 0.6,
    }
}

/// `K`-state Stanh FSM: a log2(K)-bit saturating up/down counter plus output
/// threshold compare.
pub fn stanh_fsm(states: usize) -> HardwareCost {
    let bits = log2_ceil(states.max(2));
    let gates = GateCounts::new()
        .with(Gate::Dff, bits as f64)
        .with(Gate::HalfAdder, bits as f64)
        .with(Gate::And2, bits as f64)
        .with(Gate::Or2, bits as f64)
        .with(Gate::Inv, 2.0);
    let path = bits as f64 * Gate::HalfAdder.delay_ps() + Gate::Dff.delay_ps();
    HardwareCost::from_gates(&gates, path, DEFAULT_ACTIVITY)
}

/// Btanh saturating counter for `states` states fed by a `count_bits`-wide
/// binary count: an adder/subtractor plus the state register and threshold.
pub fn btanh_counter(states: usize, count_bits: usize) -> HardwareCost {
    let state_bits = log2_ceil(states.max(2));
    let adder_bits = state_bits.max(count_bits) + 1;
    let gates = GateCounts::new()
        .with(Gate::FullAdder, adder_bits as f64)
        .with(Gate::Dff, state_bits as f64)
        .with(Gate::And2, state_bits as f64)
        .with(Gate::Or2, state_bits as f64);
    let path = adder_bits as f64 * Gate::FullAdder.delay_ps() * 0.35 + Gate::Dff.delay_ps();
    HardwareCost::from_gates(&gates, path, DEFAULT_ACTIVITY)
}

/// Stream-domain average pooling: a `window`-to-1 MUX.
pub fn average_pooling_stream(window: usize) -> HardwareCost {
    mux_adder(window.max(2))
}

/// Binary-domain average pooling: an adder tree over `window` counts of
/// `count_bits` bits each.
pub fn average_pooling_binary(window: usize, count_bits: usize) -> HardwareCost {
    let window = window.max(2);
    let gates = GateCounts::new()
        .with(Gate::FullAdder, ((window - 1) * (count_bits + 1)) as f64)
        .with(Gate::Dff, (count_bits + 2) as f64);
    let path = log2_ceil(window) as f64 * Gate::FullAdder.delay_ps() + Gate::Dff.delay_ps();
    HardwareCost::from_gates(&gates, path, DEFAULT_ACTIVITY)
}

/// Hardware-oriented max pooling over `window` stream candidates with
/// `counter_bits`-bit segment counters (Fig. 8): per-candidate counters, a
/// comparator tree, and the output MUX.
pub fn hardware_max_pooling_stream(window: usize, counter_bits: usize) -> HardwareCost {
    let window = window.max(2);
    let per_counter = GateCounts::new()
        .with(Gate::Dff, counter_bits as f64)
        .with(Gate::HalfAdder, counter_bits as f64);
    let comparators = GateCounts::new()
        .with(Gate::Xor2, ((window - 1) * counter_bits) as f64)
        .with(Gate::And2, ((window - 1) * counter_bits) as f64)
        .with(Gate::Or2, ((window - 1) * counter_bits) as f64);
    let mux = GateCounts::new().with(Gate::Mux2, (window - 1) as f64);
    let controller = GateCounts::new().with(Gate::Dff, log2_ceil(window) as f64);
    let mut gates = per_counter.scaled(window as f64);
    gates.merge(&comparators).merge(&mux).merge(&controller);
    let path = counter_bits as f64 * Gate::Xor2.delay_ps()
        + log2_ceil(window) as f64 * Gate::Mux2.delay_ps()
        + Gate::Dff.delay_ps();
    HardwareCost::from_gates(&gates, path, DEFAULT_ACTIVITY)
}

/// Hardware-oriented max pooling in the binary domain: the counters become
/// `accumulator_bits`-bit accumulators of the APC outputs.
pub fn hardware_max_pooling_binary(window: usize, accumulator_bits: usize) -> HardwareCost {
    let window = window.max(2);
    let per_accumulator = GateCounts::new()
        .with(Gate::Dff, accumulator_bits as f64)
        .with(Gate::FullAdder, accumulator_bits as f64);
    let comparators = GateCounts::new()
        .with(Gate::Xor2, ((window - 1) * accumulator_bits) as f64)
        .with(Gate::And2, ((window - 1) * accumulator_bits) as f64)
        .with(Gate::Or2, ((window - 1) * accumulator_bits) as f64);
    let mux = GateCounts::new().with(Gate::Mux2, ((window - 1) * accumulator_bits) as f64);
    let mut gates = per_accumulator.scaled(window as f64);
    gates.merge(&comparators).merge(&mux);
    let path = accumulator_bits as f64 * Gate::FullAdder.delay_ps() * 0.4
        + log2_ceil(window) as f64 * Gate::Mux2.delay_ps()
        + Gate::Dff.delay_ps();
    HardwareCost::from_gates(&gates, path, DEFAULT_ACTIVITY)
}

/// A stochastic number generator: an LFSR of `width` bits shared-ready plus a
/// `width`-bit comparator (Kim et al., ASP-DAC'16 style).
pub fn sng(width: usize) -> HardwareCost {
    let gates = GateCounts::new()
        .with(Gate::Dff, width as f64)
        .with(Gate::Xor2, (width / 4).max(1) as f64)
        .with(Gate::Xnor2, width as f64) // comparator bit-equality stage
        .with(Gate::And2, width as f64)
        .with(Gate::Or2, (width - 1) as f64);
    let path = Gate::Xnor2.delay_ps()
        + log2_ceil(width) as f64 * Gate::Or2.delay_ps()
        + Gate::Dff.delay_ps();
    HardwareCost::from_gates(&gates, path, DEFAULT_ACTIVITY)
}

/// The default SNG precision (bits) used when rolling up network costs.
pub const DEFAULT_SNG_BITS: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(16), 4);
        assert_eq!(log2_ceil(17), 5);
    }

    #[test]
    fn xnor_array_scales_linearly() {
        let small = xnor_array(16);
        let large = xnor_array(64);
        assert!((large.area_um2 / small.area_um2 - 4.0).abs() < 1e-9);
        assert_eq!(small.critical_path_ps, large.critical_path_ps);
    }

    #[test]
    fn mux_adder_is_smaller_than_apc() {
        for n in [16usize, 32, 64, 128, 256] {
            let mux = mux_adder(n);
            let apc = approximate_parallel_counter(n);
            assert!(
                mux.area_um2 < apc.area_um2,
                "MUX should be smaller than APC at n={n}"
            );
            assert!(mux.critical_path_ps < apc.critical_path_ps);
        }
    }

    #[test]
    fn apc_saves_area_over_exact_counter() {
        for n in [16usize, 64, 256] {
            let apc = approximate_parallel_counter(n);
            let exact = exact_parallel_counter(n);
            let saving = 1.0 - apc.area_um2 / exact.area_um2;
            assert!(
                (saving - 0.4).abs() < 1e-9,
                "expected 40% saving, got {saving}"
            );
        }
    }

    #[test]
    fn or_adder_is_cheapest() {
        let or = or_adder(64);
        let mux = mux_adder(64);
        assert!(or.area_um2 < mux.area_um2);
    }

    #[test]
    fn activation_blocks_grow_with_state_count() {
        assert!(stanh_fsm(32).area_um2 >= stanh_fsm(8).area_um2);
        assert!(btanh_counter(64, 7).area_um2 >= btanh_counter(8, 4).area_um2);
    }

    #[test]
    fn max_pooling_costs_more_than_average_pooling() {
        let avg = average_pooling_stream(4);
        let max = hardware_max_pooling_stream(4, 5);
        assert!(max.area_um2 > avg.area_um2);
        let avg_b = average_pooling_binary(4, 5);
        let max_b = hardware_max_pooling_binary(4, 8);
        assert!(max_b.area_um2 > avg_b.area_um2);
    }

    #[test]
    fn sng_cost_is_positive_and_grows_with_width() {
        assert!(sng(4).area_um2 > 0.0);
        assert!(sng(16).area_um2 > sng(8).area_um2);
    }
}
