//! # sc-hw
//!
//! Hardware cost model for SC-DCNN designs.
//!
//! The paper obtains area, path delay, power and energy by synthesizing each
//! block with Synopsys Design Compiler against the Nangate 45 nm open cell
//! library and by estimating SRAM with CACTI 5.3. Neither tool is available
//! to this reproduction, so this crate substitutes an analytic model that is
//! built the same way a synthesis netlist would be:
//!
//! 1. [`gates`] — a small standard-cell library with per-gate area, switching
//!    energy, leakage and delay constants calibrated to public 45 nm figures.
//! 2. [`components`] — gate inventories for every SC component the paper
//!    uses (XNOR arrays, MUX trees, approximate parallel counters, Stanh
//!    FSMs, Btanh counters, pooling units, SNGs).
//! 3. [`block_cost`] — feature-extraction-block costs as a function of input
//!    size and stream length (Fig. 15).
//! 4. [`sram`] — a CACTI-like SRAM area/power/energy model with the paper's
//!    weight-storage optimizations (Section 5).
//! 5. [`network_cost`] — roll-up of a full network configuration into the
//!    Table 6 / Table 7 metrics (area, power, delay, energy, throughput, area
//!    efficiency, energy efficiency).
//!
//! Absolute numbers from an analytic model will not match a signoff flow, but
//! the *relative* ordering of designs — which is all the paper's conclusions
//! rest on — is preserved because every block is costed from the same gate
//! inventory.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod block_cost;
pub mod components;
pub mod cost;
pub mod gates;
pub mod network_cost;
pub mod sram;

pub use block_cost::feature_block_cost;
pub use cost::HardwareCost;
pub use gates::{Gate, GateCounts};
pub use network_cost::{LayerSpec, NetworkConfig, NetworkCost};
pub use sram::{SramConfig, SramCost};
