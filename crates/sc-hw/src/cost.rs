//! Aggregated hardware cost figures.

use crate::gates::GateCounts;
use serde::{Deserialize, Serialize};

/// Default stochastic-logic switching activity used when converting gate
/// inventories to dynamic energy (SC datapaths toggle roughly every other
/// cycle because the streams are near 50 % density).
pub const DEFAULT_ACTIVITY: f64 = 0.5;

/// Aggregated cost of a hardware component or subsystem.
///
/// * `area_um2` — cell area in µm².
/// * `critical_path_ps` — longest combinational path through the component.
/// * `energy_per_cycle_fj` — dynamic switching energy per clock cycle.
/// * `leakage_nw` — static leakage power.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HardwareCost {
    /// Cell area in µm².
    pub area_um2: f64,
    /// Critical combinational path in ps.
    pub critical_path_ps: f64,
    /// Dynamic energy per clock cycle in fJ.
    pub energy_per_cycle_fj: f64,
    /// Leakage power in nW.
    pub leakage_nw: f64,
}

impl HardwareCost {
    /// A zero cost (identity for composition).
    pub fn zero() -> Self {
        Self::default()
    }

    /// Builds a cost from a gate inventory, a path depth expressed as the sum
    /// of gate delays along the critical path, and a switching activity.
    pub fn from_gates(gates: &GateCounts, critical_path_ps: f64, activity: f64) -> Self {
        Self {
            area_um2: gates.area_um2(),
            critical_path_ps,
            energy_per_cycle_fj: gates.switching_energy_fj(activity),
            leakage_nw: gates.leakage_nw(),
        }
    }

    /// Parallel composition: areas, energies and leakage add; the critical
    /// path is the maximum of the two (the components operate side by side).
    pub fn in_parallel_with(&self, other: &HardwareCost) -> HardwareCost {
        HardwareCost {
            area_um2: self.area_um2 + other.area_um2,
            critical_path_ps: self.critical_path_ps.max(other.critical_path_ps),
            energy_per_cycle_fj: self.energy_per_cycle_fj + other.energy_per_cycle_fj,
            leakage_nw: self.leakage_nw + other.leakage_nw,
        }
    }

    /// Serial composition: areas, energies and leakage add and the critical
    /// paths add (the second component consumes the first one's output in the
    /// same cycle).
    pub fn in_series_with(&self, other: &HardwareCost) -> HardwareCost {
        HardwareCost {
            area_um2: self.area_um2 + other.area_um2,
            critical_path_ps: self.critical_path_ps + other.critical_path_ps,
            energy_per_cycle_fj: self.energy_per_cycle_fj + other.energy_per_cycle_fj,
            leakage_nw: self.leakage_nw + other.leakage_nw,
        }
    }

    /// Replicates the component `count` times in parallel.
    pub fn replicated(&self, count: usize) -> HardwareCost {
        HardwareCost {
            area_um2: self.area_um2 * count as f64,
            critical_path_ps: self.critical_path_ps,
            energy_per_cycle_fj: self.energy_per_cycle_fj * count as f64,
            leakage_nw: self.leakage_nw * count as f64,
        }
    }

    /// Total power in mW when clocked with the given period.
    pub fn power_mw(&self, clock_ns: f64) -> f64 {
        // fJ per ns is a µW; divide by 1000 to express it in mW.
        let dynamic_mw = self.energy_per_cycle_fj / clock_ns * 1e-3;
        let leakage_mw = self.leakage_nw * 1e-6;
        dynamic_mw + leakage_mw
    }

    /// Energy in µJ to run for `cycles` cycles at the given clock period.
    pub fn energy_uj(&self, cycles: usize, clock_ns: f64) -> f64 {
        let dynamic_uj = self.energy_per_cycle_fj * cycles as f64 * 1e-9;
        let leakage_uj = self.leakage_nw * 1e-6 * (cycles as f64 * clock_ns) * 1e-9 * 1e3;
        dynamic_uj + leakage_uj
    }

    /// Area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.area_um2 * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::Gate;

    fn sample() -> HardwareCost {
        HardwareCost {
            area_um2: 100.0,
            critical_path_ps: 200.0,
            energy_per_cycle_fj: 50.0,
            leakage_nw: 500.0,
        }
    }

    #[test]
    fn zero_is_identity_for_parallel_composition() {
        let cost = sample();
        let combined = cost.in_parallel_with(&HardwareCost::zero());
        assert_eq!(combined, cost);
    }

    #[test]
    fn parallel_takes_max_path_serial_adds() {
        let a = sample();
        let b = HardwareCost {
            critical_path_ps: 300.0,
            ..sample()
        };
        assert_eq!(a.in_parallel_with(&b).critical_path_ps, 300.0);
        assert_eq!(a.in_series_with(&b).critical_path_ps, 500.0);
        assert_eq!(a.in_series_with(&b).area_um2, 200.0);
    }

    #[test]
    fn replication_scales_area_and_energy_not_delay() {
        let cost = sample().replicated(4);
        assert_eq!(cost.area_um2, 400.0);
        assert_eq!(cost.energy_per_cycle_fj, 200.0);
        assert_eq!(cost.critical_path_ps, 200.0);
    }

    #[test]
    fn power_and_energy_scale_with_clock_and_cycles() {
        let cost = sample();
        assert!(cost.power_mw(2.0) < cost.power_mw(1.0));
        assert!(cost.energy_uj(2048, 5.0) > cost.energy_uj(1024, 5.0));
        assert!(cost.energy_uj(1024, 5.0) > 0.0);
    }

    #[test]
    fn from_gates_uses_library_constants() {
        let gates = crate::gates::GateCounts::new().with(Gate::Xnor2, 10.0);
        let cost = HardwareCost::from_gates(&gates, 60.0, 0.5);
        assert!((cost.area_um2 - 15.96).abs() < 1e-9);
        assert!((cost.energy_per_cycle_fj - 6.0).abs() < 1e-9);
        assert_eq!(cost.critical_path_ps, 60.0);
    }

    #[test]
    fn area_mm2_conversion() {
        let cost = HardwareCost {
            area_um2: 2_000_000.0,
            ..HardwareCost::zero()
        };
        assert!((cost.area_mm2() - 2.0).abs() < 1e-12);
    }
}
