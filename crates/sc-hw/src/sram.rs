//! CACTI-style SRAM model and the paper's weight-storage optimizations.
//!
//! Section 5 of the paper reduces weight-storage cost three ways:
//!
//! 1. **Filter-aware SRAM sharing** — one local SRAM block per filter, shared
//!    by every inner-product block of the corresponding feature map, instead
//!    of per-block copies. Modelled by the `sharing_factor` of
//!    [`SramConfig`].
//! 2. **Low-precision weight storage** — storing `w`-bit fixed-point weights
//!    instead of 64-bit values (Fig. 13; ~10.3× area saving at `w = 7`).
//! 3. **Layer-wise precision** — e.g. 7-7-6 bits across LeNet-5's layers
//!    (12× area, 11.9× power savings versus the 64-bit baseline).
//!
//! The model is analytic: a per-bit cell area plus peripheral overhead that
//! grows with the square root of capacity, which is the same first-order
//! behaviour CACTI exhibits for small SRAM arrays.

use serde::{Deserialize, Serialize};

/// Bit width used by the high-precision weight-storage baseline.
pub const BASELINE_WEIGHT_BITS: usize = 64;

/// Per-bit SRAM cell area in µm² (6T cell in a 45 nm-class process).
const CELL_AREA_UM2: f64 = 0.35;

/// Peripheral (decoder / sense-amp / IO) area coefficient in µm² per √bit.
const PERIPHERY_AREA_UM2_PER_SQRT_BIT: f64 = 18.0;

/// Leakage per bit in nW.
const LEAKAGE_NW_PER_BIT: f64 = 0.012;

/// Dynamic read energy: a fixed word overhead plus a per-bit term, in fJ.
const READ_ENERGY_FJ_PER_BIT: f64 = 1.1;
const READ_ENERGY_FJ_FIXED: f64 = 45.0;

/// Configuration of a weight-storage subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramConfig {
    /// Number of weights that must be stored.
    pub weight_count: usize,
    /// Fixed-point precision (bits per weight).
    pub weight_bits: usize,
    /// How many inner-product blocks share each stored copy (filter-aware
    /// sharing). A factor of 1 means every block keeps its own copy.
    pub sharing_factor: usize,
}

impl SramConfig {
    /// Creates a configuration with no sharing (one copy per consumer).
    pub fn unshared(weight_count: usize, weight_bits: usize) -> Self {
        Self {
            weight_count,
            weight_bits,
            sharing_factor: 1,
        }
    }

    /// Creates a filter-aware shared configuration.
    pub fn shared(weight_count: usize, weight_bits: usize, sharing_factor: usize) -> Self {
        Self {
            weight_count,
            weight_bits,
            sharing_factor: sharing_factor.max(1),
        }
    }

    /// Total number of bits that must be physically stored.
    pub fn stored_bits(&self) -> f64 {
        (self.weight_count * self.weight_bits) as f64 / self.sharing_factor.max(1) as f64
    }
}

/// Cost of a weight-storage subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramCost {
    /// Total macro area in µm².
    pub area_um2: f64,
    /// Leakage power in mW.
    pub leakage_mw: f64,
    /// Energy per full-network weight read sweep in nJ.
    pub read_energy_nj: f64,
}

impl SramCost {
    /// Area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.area_um2 * 1e-6
    }
}

/// Evaluates the SRAM model for a configuration.
pub fn sram_cost(config: &SramConfig) -> SramCost {
    let bits = config.stored_bits().max(1.0);
    let area_um2 = bits * CELL_AREA_UM2 + bits.sqrt() * PERIPHERY_AREA_UM2_PER_SQRT_BIT;
    let leakage_mw = bits * LEAKAGE_NW_PER_BIT * 1e-6;
    let words = bits / config.weight_bits.max(1) as f64;
    let read_energy_nj =
        words * (READ_ENERGY_FJ_FIXED + config.weight_bits as f64 * READ_ENERGY_FJ_PER_BIT) * 1e-6;
    SramCost {
        area_um2,
        leakage_mw,
        read_energy_nj,
    }
}

/// The quantized value stored for a real-valued weight `x` at precision `w`:
/// `y = Int((x + 1)/2 · 2^w) / 2^w`, mapped back to `[-1, 1]` (Section 5.2).
pub fn quantize_weight(x: f64, bits: usize) -> f64 {
    let bits = bits.min(52);
    let scale = (1u64 << bits) as f64;
    let clamped = x.clamp(-1.0, 1.0);
    let stored = ((clamped + 1.0) / 2.0 * scale).floor() / scale;
    stored * 2.0 - 1.0
}

/// Area saving of a reduced-precision configuration relative to the 64-bit
/// baseline with identical sharing.
pub fn area_saving_vs_baseline(config: &SramConfig) -> f64 {
    let baseline = SramConfig {
        weight_bits: BASELINE_WEIGHT_BITS,
        ..*config
    };
    sram_cost(&baseline).area_um2 / sram_cost(config).area_um2
}

/// Power (leakage) saving of a reduced-precision configuration relative to
/// the 64-bit baseline with identical sharing.
pub fn power_saving_vs_baseline(config: &SramConfig) -> f64 {
    let baseline = SramConfig {
        weight_bits: BASELINE_WEIGHT_BITS,
        ..*config
    };
    sram_cost(&baseline).leakage_mw / sram_cost(config).leakage_mw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stored_bits_account_for_sharing() {
        let unshared = SramConfig::unshared(1000, 8);
        let shared = SramConfig::shared(1000, 8, 4);
        assert_eq!(unshared.stored_bits(), 8000.0);
        assert_eq!(shared.stored_bits(), 2000.0);
    }

    #[test]
    fn sharing_reduces_area() {
        let unshared = sram_cost(&SramConfig::unshared(10_000, 8));
        let shared = sram_cost(&SramConfig::shared(10_000, 8, 16));
        assert!(shared.area_um2 < unshared.area_um2);
        assert!(shared.leakage_mw < unshared.leakage_mw);
    }

    #[test]
    fn precision_reduction_saves_roughly_an_order_of_magnitude() {
        // The paper reports 10.3x area savings going from the 64-bit baseline
        // to 7-bit storage; the analytic model should land in that region.
        let config = SramConfig::unshared(430_500, 7);
        let saving = area_saving_vs_baseline(&config);
        assert!(
            (6.0..=12.0).contains(&saving),
            "expected roughly an order of magnitude, got {saving:.2}x"
        );
    }

    #[test]
    fn power_saving_tracks_bit_reduction() {
        let config = SramConfig::unshared(430_500, 7);
        let saving = power_saving_vs_baseline(&config);
        assert!(saving > 8.0, "leakage saving {saving:.2}x too small");
    }

    #[test]
    fn quantization_matches_formula() {
        // w = 2 bits: (0.3 + 1)/2 = 0.65 -> floor(0.65 * 4)/4 = 0.5 -> 0.0.
        assert!((quantize_weight(0.3, 2) - 0.0).abs() < 1e-12);
        // High precision reproduces the value closely.
        assert!((quantize_weight(0.3, 16) - 0.3).abs() < 1e-3);
        // Values outside [-1, 1] are clamped first.
        assert!(quantize_weight(2.0, 8) <= 1.0);
        assert!(quantize_weight(-2.0, 8) >= -1.0);
    }

    #[test]
    fn quantization_error_shrinks_with_precision() {
        let value = 0.123_456;
        let coarse = (quantize_weight(value, 3) - value).abs();
        let fine = (quantize_weight(value, 10) - value).abs();
        assert!(fine < coarse);
    }

    #[test]
    fn read_energy_positive_and_monotone_in_bits() {
        let low = sram_cost(&SramConfig::unshared(1000, 4));
        let high = sram_cost(&SramConfig::unshared(1000, 16));
        assert!(low.read_energy_nj > 0.0);
        assert!(high.read_energy_nj > low.read_energy_nj);
        assert!(high.area_mm2() > 0.0);
    }
}
