//! A 45 nm-style standard-cell library.
//!
//! The per-gate constants approximate the Nangate 45 nm Open Cell Library
//! figures the paper synthesizes against: areas are in µm², switching
//! energies in fJ per output toggle, leakage in nW per instance, and delays
//! in ps per stage. What matters for reproducing the paper's comparisons is
//! that all blocks are costed from the *same* library, so relative orderings
//! carry over even if the absolute values differ from a signoff flow.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A standard cell used by the SC component inventories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Gate {
    /// Inverter.
    Inv,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR (the bipolar multiplier).
    Xnor2,
    /// 2-to-1 multiplexer.
    Mux2,
    /// D flip-flop with clock enable.
    Dff,
    /// Full adder cell.
    FullAdder,
    /// Half adder cell.
    HalfAdder,
}

impl Gate {
    /// Every gate in the library.
    pub const ALL: [Gate; 11] = [
        Gate::Inv,
        Gate::Nand2,
        Gate::Nor2,
        Gate::And2,
        Gate::Or2,
        Gate::Xor2,
        Gate::Xnor2,
        Gate::Mux2,
        Gate::Dff,
        Gate::FullAdder,
        Gate::HalfAdder,
    ];

    /// Cell area in µm².
    pub fn area_um2(self) -> f64 {
        match self {
            Gate::Inv => 0.532,
            Gate::Nand2 => 0.798,
            Gate::Nor2 => 0.798,
            Gate::And2 => 1.064,
            Gate::Or2 => 1.064,
            Gate::Xor2 => 1.596,
            Gate::Xnor2 => 1.596,
            Gate::Mux2 => 1.862,
            Gate::Dff => 4.522,
            Gate::FullAdder => 6.384,
            Gate::HalfAdder => 3.192,
        }
    }

    /// Energy per output toggle in fJ.
    pub fn switching_energy_fj(self) -> f64 {
        match self {
            Gate::Inv => 0.35,
            Gate::Nand2 => 0.55,
            Gate::Nor2 => 0.55,
            Gate::And2 => 0.80,
            Gate::Or2 => 0.80,
            Gate::Xor2 => 1.20,
            Gate::Xnor2 => 1.20,
            Gate::Mux2 => 1.00,
            Gate::Dff => 1.80,
            Gate::FullAdder => 2.40,
            Gate::HalfAdder => 1.30,
        }
    }

    /// Leakage power in nW per instance.
    pub fn leakage_nw(self) -> f64 {
        match self {
            Gate::Inv => 9.0,
            Gate::Nand2 => 12.0,
            Gate::Nor2 => 12.0,
            Gate::And2 => 16.0,
            Gate::Or2 => 16.0,
            Gate::Xor2 => 24.0,
            Gate::Xnor2 => 24.0,
            Gate::Mux2 => 22.0,
            Gate::Dff => 55.0,
            Gate::FullAdder => 70.0,
            Gate::HalfAdder => 36.0,
        }
    }

    /// Propagation delay in ps per stage.
    pub fn delay_ps(self) -> f64 {
        match self {
            Gate::Inv => 18.0,
            Gate::Nand2 => 28.0,
            Gate::Nor2 => 30.0,
            Gate::And2 => 40.0,
            Gate::Or2 => 40.0,
            Gate::Xor2 => 60.0,
            Gate::Xnor2 => 60.0,
            Gate::Mux2 => 52.0,
            Gate::Dff => 95.0,
            Gate::FullAdder => 90.0,
            Gate::HalfAdder => 55.0,
        }
    }
}

/// A bag of gate counts describing a synthesized component.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GateCounts {
    counts: BTreeMap<Gate, f64>,
}

impl GateCounts {
    /// Creates an empty inventory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `count` instances of `gate`.
    pub fn add(&mut self, gate: Gate, count: f64) -> &mut Self {
        *self.counts.entry(gate).or_insert(0.0) += count;
        self
    }

    /// Builder-style variant of [`GateCounts::add`].
    pub fn with(mut self, gate: Gate, count: f64) -> Self {
        self.add(gate, count);
        self
    }

    /// Merges another inventory into this one.
    pub fn merge(&mut self, other: &GateCounts) -> &mut Self {
        for (&gate, &count) in &other.counts {
            self.add(gate, count);
        }
        self
    }

    /// Multiplies every count by `factor` (e.g. replicating a block).
    pub fn scaled(&self, factor: f64) -> GateCounts {
        let counts = self.counts.iter().map(|(&g, &c)| (g, c * factor)).collect();
        GateCounts { counts }
    }

    /// Number of instances of a particular gate.
    pub fn count(&self, gate: Gate) -> f64 {
        self.counts.get(&gate).copied().unwrap_or(0.0)
    }

    /// Total number of gate instances.
    pub fn total_gates(&self) -> f64 {
        self.counts.values().sum()
    }

    /// Total cell area in µm².
    pub fn area_um2(&self) -> f64 {
        self.counts.iter().map(|(g, c)| g.area_um2() * c).sum()
    }

    /// Total switching energy per cycle in fJ, assuming `activity` of the
    /// gates toggle each cycle (SC logic has high activity; 0.5 is typical).
    pub fn switching_energy_fj(&self, activity: f64) -> f64 {
        self.counts
            .iter()
            .map(|(g, c)| g.switching_energy_fj() * c)
            .sum::<f64>()
            * activity
    }

    /// Total leakage power in nW.
    pub fn leakage_nw(&self) -> f64 {
        self.counts.iter().map(|(g, c)| g.leakage_nw() * c).sum()
    }

    /// Iterator over `(gate, count)` pairs in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (Gate, f64)> + '_ {
        self.counts.iter().map(|(&g, &c)| (g, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_constants_are_positive() {
        for gate in Gate::ALL {
            assert!(gate.area_um2() > 0.0);
            assert!(gate.switching_energy_fj() > 0.0);
            assert!(gate.leakage_nw() > 0.0);
            assert!(gate.delay_ps() > 0.0);
        }
    }

    #[test]
    fn sequential_cells_are_larger_than_combinational() {
        assert!(Gate::Dff.area_um2() > Gate::Xnor2.area_um2());
        assert!(Gate::FullAdder.area_um2() > Gate::HalfAdder.area_um2());
        assert!(Gate::Xnor2.area_um2() > Gate::Nand2.area_um2());
    }

    #[test]
    fn gate_counts_accumulate() {
        let mut counts = GateCounts::new();
        counts
            .add(Gate::Xnor2, 16.0)
            .add(Gate::Xnor2, 4.0)
            .add(Gate::Dff, 2.0);
        assert_eq!(counts.count(Gate::Xnor2), 20.0);
        assert_eq!(counts.total_gates(), 22.0);
        assert!((counts.area_um2() - (20.0 * 1.596 + 2.0 * 4.522)).abs() < 1e-9);
    }

    #[test]
    fn merge_and_scale_compose() {
        let a = GateCounts::new().with(Gate::FullAdder, 3.0);
        let mut b = GateCounts::new()
            .with(Gate::FullAdder, 1.0)
            .with(Gate::Inv, 2.0);
        b.merge(&a);
        assert_eq!(b.count(Gate::FullAdder), 4.0);
        let doubled = b.scaled(2.0);
        assert_eq!(doubled.count(Gate::FullAdder), 8.0);
        assert_eq!(doubled.count(Gate::Inv), 4.0);
    }

    #[test]
    fn energy_scales_with_activity() {
        let counts = GateCounts::new().with(Gate::Xnor2, 10.0);
        assert!(counts.switching_energy_fj(1.0) > counts.switching_energy_fj(0.25));
        assert_eq!(counts.switching_energy_fj(0.0), 0.0);
    }

    #[test]
    fn iter_is_stable_and_complete() {
        let counts = GateCounts::new().with(Gate::Inv, 1.0).with(Gate::Dff, 2.0);
        let collected: Vec<_> = counts.iter().collect();
        assert_eq!(collected.len(), 2);
    }
}
