//! Network-level cost roll-up (Tables 6 and 7).
//!
//! A full SC-DCNN is described by a list of [`LayerSpec`]s — how many feature
//! extraction blocks (or fully-connected neurons) each layer instantiates,
//! their receptive-field size and configuration — plus the weight-storage
//! configuration and the shared random-number-generation overhead. The
//! roll-up produces the metrics the paper reports per design point: area,
//! power, per-image delay, per-image energy, throughput, area efficiency and
//! energy efficiency.

use crate::block_cost::{activation_cost, inner_product_cost, pooling_cost, CLOCK_NS};
use crate::components::{sng, DEFAULT_SNG_BITS};
use crate::cost::HardwareCost;
use crate::sram::{sram_cost, SramConfig};
use sc_blocks::feature_block::FeatureBlockKind;
use serde::{Deserialize, Serialize};

/// How aggressively stochastic number generators are shared across blocks.
///
/// The paper's peripheral circuitry shares RNGs between SNGs and re-uses
/// weight streams across the inner-product blocks of a feature map; a
/// sharing factor of `k` means one SNG serves `k` stream consumers.
pub const DEFAULT_SNG_SHARING: usize = 8;

/// Description of one SC-DCNN layer for cost purposes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Human-readable layer name (e.g. `"Layer0"`).
    pub name: String,
    /// Number of feature extraction blocks (pooling layers) or neurons
    /// (fully-connected layers) instantiated in parallel.
    pub unit_count: usize,
    /// Receptive-field size `N` of each inner-product block.
    pub input_size: usize,
    /// Feature-extraction-block configuration used by this layer.
    pub kind: FeatureBlockKind,
    /// Whether the layer pools 4 inner products per unit (convolution +
    /// pooling layers) or computes a single inner product per unit
    /// (fully-connected layers).
    pub has_pooling: bool,
    /// Number of distinct trained weights the layer must store.
    pub weight_count: usize,
    /// Stored weight precision in bits.
    pub weight_bits: usize,
    /// Filter-aware SRAM sharing factor (how many inner-product blocks share
    /// one stored filter).
    pub sharing_factor: usize,
    /// Number of distinct input signals entering the layer (drives SNG count).
    pub input_count: usize,
}

impl LayerSpec {
    /// Logic cost of the layer (inner products + pooling + activation),
    /// excluding SRAM and SNGs.
    pub fn logic_cost(&self, stream_length: usize) -> HardwareCost {
        let per_unit_inner = inner_product_cost(self.kind, self.input_size);
        let inner = if self.has_pooling {
            per_unit_inner.replicated(4)
        } else {
            per_unit_inner
        };
        let mut unit = inner;
        if self.has_pooling {
            unit = unit.in_series_with(&pooling_cost(self.kind, self.input_size));
        }
        unit = unit.in_series_with(&activation_cost(self.kind, self.input_size, stream_length));
        unit.replicated(self.unit_count)
    }

    /// SRAM cost of the layer's weight storage.
    pub fn sram_cost(&self) -> crate::sram::SramCost {
        sram_cost(&SramConfig::shared(
            self.weight_count,
            self.weight_bits,
            self.sharing_factor,
        ))
    }

    /// Cost of the stochastic number generators feeding the layer.
    pub fn sng_cost(&self, sng_sharing: usize) -> HardwareCost {
        let consumers = self.input_count + self.weight_count;
        let generators = consumers.div_ceil(sng_sharing.max(1));
        sng(DEFAULT_SNG_BITS).replicated(generators)
    }
}

/// A full SC-DCNN configuration (one row of Table 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Configuration label (e.g. `"No.11"`).
    pub name: String,
    /// Per-layer specifications.
    pub layers: Vec<LayerSpec>,
    /// Bit-stream length `L`.
    pub stream_length: usize,
    /// Clock period in ns (5 ns matches the paper's delay figures).
    pub clock_ns: f64,
    /// SNG sharing factor.
    pub sng_sharing: usize,
}

impl NetworkConfig {
    /// Creates a configuration with the default clock and SNG sharing.
    pub fn new(name: impl Into<String>, layers: Vec<LayerSpec>, stream_length: usize) -> Self {
        Self {
            name: name.into(),
            layers,
            stream_length,
            clock_ns: CLOCK_NS,
            sng_sharing: DEFAULT_SNG_SHARING,
        }
    }

    /// Rolls the configuration up into the Table 6 / Table 7 metrics.
    pub fn cost(&self) -> NetworkCost {
        let mut logic = HardwareCost::zero();
        let mut sram_area_um2 = 0.0;
        let mut sram_leakage_mw = 0.0;
        let mut sram_read_nj = 0.0;
        for layer in &self.layers {
            logic = logic.in_parallel_with(&layer.logic_cost(self.stream_length));
            logic = logic.in_parallel_with(&layer.sng_cost(self.sng_sharing));
            let sram = layer.sram_cost();
            sram_area_um2 += sram.area_um2;
            sram_leakage_mw += sram.leakage_mw;
            sram_read_nj += sram.read_energy_nj;
        }
        let area_mm2 = (logic.area_um2 + sram_area_um2) * 1e-6;
        let logic_power_w = logic.power_mw(self.clock_ns) * 1e-3;
        let power_w = logic_power_w + sram_leakage_mw * 1e-3;
        let delay_ns = self.stream_length as f64 * self.clock_ns;
        let logic_energy_uj = logic.energy_uj(self.stream_length, self.clock_ns);
        let energy_uj = logic_energy_uj + sram_read_nj * 1e-3;
        let throughput = 1e9 / delay_ns;
        NetworkCost {
            name: self.name.clone(),
            area_mm2,
            power_w,
            delay_ns,
            energy_uj,
            throughput_images_per_s: throughput,
            area_efficiency: throughput / area_mm2,
            energy_efficiency: throughput / power_w,
        }
    }
}

/// The Table 6 / Table 7 metrics for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkCost {
    /// Configuration label.
    pub name: String,
    /// Total area in mm² (logic + SNGs + SRAM).
    pub area_mm2: f64,
    /// Total power in W.
    pub power_w: f64,
    /// Per-image delay in ns (stream length × clock period).
    pub delay_ns: f64,
    /// Per-image energy in µJ.
    pub energy_uj: f64,
    /// Throughput in images per second (pipelined, one image per stream).
    pub throughput_images_per_s: f64,
    /// Area efficiency in images/s/mm².
    pub area_efficiency: f64,
    /// Energy efficiency in images/J.
    pub energy_efficiency: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_layer(kind: FeatureBlockKind, units: usize, n: usize) -> LayerSpec {
        LayerSpec {
            name: "test".to_string(),
            unit_count: units,
            input_size: n,
            kind,
            has_pooling: true,
            weight_count: units * n / 4,
            weight_bits: 7,
            sharing_factor: 4,
            input_count: units,
        }
    }

    #[test]
    fn layer_logic_cost_scales_with_units() {
        let small = simple_layer(FeatureBlockKind::ApcAvgBtanh, 100, 25);
        let large = simple_layer(FeatureBlockKind::ApcAvgBtanh, 200, 25);
        let ratio = large.logic_cost(1024).area_um2 / small.logic_cost(1024).area_um2;
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fully_connected_layer_is_cheaper_than_pooling_layer() {
        let mut fc = simple_layer(FeatureBlockKind::ApcAvgBtanh, 100, 25);
        fc.has_pooling = false;
        let pooled = simple_layer(FeatureBlockKind::ApcAvgBtanh, 100, 25);
        assert!(fc.logic_cost(1024).area_um2 < pooled.logic_cost(1024).area_um2);
    }

    #[test]
    fn sng_sharing_reduces_cost() {
        let layer = simple_layer(FeatureBlockKind::MuxAvgStanh, 100, 25);
        assert!(layer.sng_cost(16).area_um2 < layer.sng_cost(2).area_um2);
    }

    #[test]
    fn mux_network_is_cheaper_than_apc_network() {
        let mux = NetworkConfig::new(
            "mux",
            vec![simple_layer(FeatureBlockKind::MuxAvgStanh, 1000, 25)],
            1024,
        );
        let apc = NetworkConfig::new(
            "apc",
            vec![simple_layer(FeatureBlockKind::ApcAvgBtanh, 1000, 25)],
            1024,
        );
        let mux_cost = mux.cost();
        let apc_cost = apc.cost();
        assert!(mux_cost.area_mm2 < apc_cost.area_mm2);
        assert!(mux_cost.power_w < apc_cost.power_w);
        assert_eq!(mux_cost.delay_ns, apc_cost.delay_ns);
    }

    #[test]
    fn halving_stream_length_halves_delay_and_energy() {
        let layers = vec![simple_layer(FeatureBlockKind::ApcAvgBtanh, 500, 25)];
        let long = NetworkConfig::new("long", layers.clone(), 1024).cost();
        let short = NetworkConfig::new("short", layers, 512).cost();
        assert!((long.delay_ns / short.delay_ns - 2.0).abs() < 1e-9);
        assert!(long.energy_uj > short.energy_uj);
        assert!((short.throughput_images_per_s / long.throughput_images_per_s - 2.0).abs() < 1e-9);
        assert_eq!(long.area_mm2, short.area_mm2);
    }

    #[test]
    fn efficiency_metrics_are_consistent() {
        let config = NetworkConfig::new(
            "check",
            vec![simple_layer(FeatureBlockKind::ApcMaxBtanh, 800, 100)],
            256,
        );
        let cost = config.cost();
        assert!((cost.area_efficiency - cost.throughput_images_per_s / cost.area_mm2).abs() < 1e-6);
        assert!(
            (cost.energy_efficiency - cost.throughput_images_per_s / cost.power_w).abs() < 1e-6
        );
        assert!(cost.power_w > 0.0);
        assert!(cost.energy_uj > 0.0);
    }

    #[test]
    fn paper_delay_convention_holds() {
        let config = NetworkConfig::new(
            "delay",
            vec![simple_layer(FeatureBlockKind::MuxAvgStanh, 10, 16)],
            1024,
        );
        assert_eq!(config.cost().delay_ns, 5120.0);
    }
}
