//! Feature-extraction-block hardware costs (Fig. 15).
//!
//! A feature extraction block contains four inner-product blocks, one pooling
//! block and one activation block. This module assembles their gate
//! inventories per configuration and reports the area / path-delay / power /
//! energy numbers the paper sweeps against input size in Fig. 15.

use crate::components::{
    approximate_parallel_counter, average_pooling_binary, average_pooling_stream, btanh_counter,
    hardware_max_pooling_binary, hardware_max_pooling_stream, mux_adder, stanh_fsm, xnor_array,
};
use crate::cost::HardwareCost;
use sc_blocks::feature_block::FeatureBlockKind;
use sc_core::activation::{
    apc_avg_btanh_states, apc_max_btanh_states, mux_avg_stanh_states, mux_max_stanh_states,
};
use serde::{Deserialize, Serialize};

/// Number of inner-product blocks pooled by one feature extraction block
/// (2×2 pooling windows throughout the paper).
pub const POOL_WINDOW: usize = 4;

/// Clock period assumed when converting per-cycle figures into power/energy.
/// 5 ns matches the paper's delay figures (a 1024-bit stream takes 5120 ns).
pub const CLOCK_NS: f64 = 5.0;

fn log2_ceil(n: usize) -> usize {
    (usize::BITS - n.max(1).saturating_sub(1).leading_zeros()) as usize
}

/// Hardware cost of one inner-product block of the given family.
pub fn inner_product_cost(kind: FeatureBlockKind, input_size: usize) -> HardwareCost {
    let multipliers = xnor_array(input_size);
    match kind {
        FeatureBlockKind::MuxAvgStanh | FeatureBlockKind::MuxMaxStanh => {
            multipliers.in_series_with(&mux_adder(input_size))
        }
        FeatureBlockKind::ApcAvgBtanh | FeatureBlockKind::ApcMaxBtanh => {
            multipliers.in_series_with(&approximate_parallel_counter(input_size))
        }
    }
}

/// Hardware cost of the pooling block of the given configuration.
pub fn pooling_cost(kind: FeatureBlockKind, input_size: usize) -> HardwareCost {
    let count_bits = log2_ceil(input_size + 1);
    match kind {
        FeatureBlockKind::MuxAvgStanh => average_pooling_stream(POOL_WINDOW),
        FeatureBlockKind::MuxMaxStanh => hardware_max_pooling_stream(POOL_WINDOW, 5),
        FeatureBlockKind::ApcAvgBtanh => average_pooling_binary(POOL_WINDOW, count_bits),
        FeatureBlockKind::ApcMaxBtanh => hardware_max_pooling_binary(POOL_WINDOW, count_bits + 4),
    }
}

/// Hardware cost of the activation block of the given configuration.
pub fn activation_cost(
    kind: FeatureBlockKind,
    input_size: usize,
    stream_length: usize,
) -> HardwareCost {
    let count_bits = log2_ceil(input_size + 1);
    match kind {
        FeatureBlockKind::MuxAvgStanh => stanh_fsm(mux_avg_stanh_states(input_size, stream_length)),
        FeatureBlockKind::MuxMaxStanh => stanh_fsm(mux_max_stanh_states(input_size, stream_length)),
        FeatureBlockKind::ApcAvgBtanh => btanh_counter(
            apc_avg_btanh_states(input_size * POOL_WINDOW),
            count_bits + 2,
        ),
        FeatureBlockKind::ApcMaxBtanh => {
            btanh_counter(apc_max_btanh_states(input_size), count_bits)
        }
    }
}

/// Hardware cost of a complete feature extraction block.
///
/// The four inner-product blocks operate in parallel; the pooling and
/// activation blocks follow in series.
pub fn feature_block_cost(
    kind: FeatureBlockKind,
    input_size: usize,
    stream_length: usize,
) -> HardwareCost {
    let inner = inner_product_cost(kind, input_size).replicated(POOL_WINDOW);
    let pool = pooling_cost(kind, input_size);
    let act = activation_cost(kind, input_size, stream_length);
    inner.in_series_with(&pool).in_series_with(&act)
}

/// The Fig. 15 report row for one feature extraction block configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureBlockCostReport {
    /// Configuration the row describes.
    pub kind: FeatureBlockKind,
    /// Receptive-field size `N`.
    pub input_size: usize,
    /// Bit-stream length `L`.
    pub stream_length: usize,
    /// Cell area in µm².
    pub area_um2: f64,
    /// Critical combinational path in ns.
    pub path_delay_ns: f64,
    /// Total power in mW at the model clock.
    pub power_mw: f64,
    /// Energy to process one stream of `L` bits, in pJ.
    pub energy_pj: f64,
}

/// Builds the Fig. 15 report row for one configuration.
pub fn feature_block_report(
    kind: FeatureBlockKind,
    input_size: usize,
    stream_length: usize,
) -> FeatureBlockCostReport {
    let cost = feature_block_cost(kind, input_size, stream_length);
    let power_mw = cost.power_mw(CLOCK_NS);
    let energy_pj = cost.energy_uj(stream_length, CLOCK_NS) * 1e6;
    FeatureBlockCostReport {
        kind,
        input_size,
        stream_length,
        area_um2: cost.area_um2,
        path_delay_ns: cost.critical_path_ps / 1000.0,
        power_mw,
        energy_pj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mux_avg_is_the_cheapest_design() {
        for n in [16usize, 64, 256] {
            let mux_avg = feature_block_cost(FeatureBlockKind::MuxAvgStanh, n, 1024);
            for kind in [
                FeatureBlockKind::MuxMaxStanh,
                FeatureBlockKind::ApcAvgBtanh,
                FeatureBlockKind::ApcMaxBtanh,
            ] {
                let other = feature_block_cost(kind, n, 1024);
                assert!(
                    mux_avg.area_um2 <= other.area_um2,
                    "MUX-Avg should have the smallest area at n={n} (vs {kind:?})"
                );
                assert!(mux_avg.critical_path_ps <= other.critical_path_ps);
            }
        }
    }

    #[test]
    fn apc_max_has_the_highest_area() {
        for n in [16usize, 64, 256] {
            let apc_max = feature_block_cost(FeatureBlockKind::ApcMaxBtanh, n, 1024);
            for kind in [
                FeatureBlockKind::MuxAvgStanh,
                FeatureBlockKind::MuxMaxStanh,
                FeatureBlockKind::ApcAvgBtanh,
            ] {
                let other = feature_block_cost(kind, n, 1024);
                assert!(
                    apc_max.area_um2 >= other.area_um2,
                    "APC-Max should have the largest area at n={n} (vs {kind:?})"
                );
            }
        }
    }

    #[test]
    fn area_grows_with_input_size() {
        for kind in FeatureBlockKind::ALL {
            let small = feature_block_cost(kind, 16, 1024);
            let large = feature_block_cost(kind, 256, 1024);
            assert!(
                large.area_um2 > small.area_um2,
                "{kind:?} area must grow with N"
            );
        }
    }

    #[test]
    fn apc_paths_are_longer_than_mux_paths() {
        let mux = feature_block_cost(FeatureBlockKind::MuxMaxStanh, 64, 1024);
        let apc = feature_block_cost(FeatureBlockKind::ApcAvgBtanh, 64, 1024);
        assert!(apc.critical_path_ps > mux.critical_path_ps);
    }

    #[test]
    fn energy_grows_with_stream_length() {
        let short = feature_block_report(FeatureBlockKind::ApcAvgBtanh, 64, 256);
        let long = feature_block_report(FeatureBlockKind::ApcAvgBtanh, 64, 1024);
        assert!(long.energy_pj > short.energy_pj);
        assert_eq!(short.area_um2, long.area_um2);
    }

    #[test]
    fn report_fields_are_consistent_with_cost() {
        let report = feature_block_report(FeatureBlockKind::MuxMaxStanh, 32, 512);
        let cost = feature_block_cost(FeatureBlockKind::MuxMaxStanh, 32, 512);
        assert_eq!(report.area_um2, cost.area_um2);
        assert!(report.power_mw > 0.0);
        assert!(report.path_delay_ns > 0.0);
    }
}
