//! Std-only TCP admin endpoint serving a [`MetricsRegistry`].
//!
//! A minimal HTTP/1.0 responder — enough for `curl`, a Prometheus scraper,
//! or the loadgen examples; no external HTTP stack. Two paths:
//!
//! * `GET /metrics` — Prometheus text exposition format
//!   (`text/plain; version=0.0.4`)
//! * `GET /metrics.json` — the same samples as a JSON document
//!
//! Anything else answers `404`. Connections are handled one at a time with
//! short read/write timeouts: a scrape is a few kilobytes and the registry
//! gather is cheap, so a single-threaded accept loop cannot be starved in
//! any way that matters, and a stalled scraper cannot pin the listener.

use crate::obs::MetricsRegistry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection socket timeout; a scrape either completes quickly or the
/// connection is dropped.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A running admin listener. Dropping the handle without calling
/// [`AdminHandle::shutdown`] leaks the accept thread until process exit —
/// call `shutdown` in anything that outlives a test.
#[derive(Debug)]
pub struct AdminHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl AdminHandle {
    /// The bound admin address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

/// Spawns the admin endpoint on `listener`, serving `registry`.
pub fn spawn_admin(listener: TcpListener, registry: Arc<MetricsRegistry>) -> AdminHandle {
    let addr = listener
        .local_addr()
        .expect("admin listener has no address");
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("sc-admin".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // Serve inline; see module docs for why one-at-a-time is fine.
                let _ = serve_connection(stream, &registry);
            }
        })
        .expect("spawn admin thread");
    AdminHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
    }
}

/// Reads one request line, writes one response, closes.
fn serve_connection(mut stream: TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let path = read_request_path(&mut stream)?;
    let (status, content_type, body) = match path.as_deref() {
        Some("/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            registry.render_prometheus(),
        ),
        Some("/metrics.json") => ("200 OK", "application/json", registry.render_json()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "try /metrics or /metrics.json\n".to_string(),
        ),
    };
    let header = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Parses the path out of an HTTP request line (`GET /metrics HTTP/1.1`).
/// Drains the whole header block (up to the blank line) so closing the
/// socket after the response sends FIN, not RST — a close with unread bytes
/// in the receive buffer resets the connection under the scraper.
fn read_request_path(stream: &mut TcpStream) -> std::io::Result<Option<String>> {
    let mut header = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while header.len() < 8192 && !header.ends_with(b"\r\n\r\n") && !header.ends_with(b"\n\n") {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => header.push(byte[0]),
            Err(e) => return Err(e),
        }
    }
    let header = String::from_utf8_lossy(&header);
    let line = header.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let method = parts.next();
    let path = parts.next();
    if method != Some("GET") {
        return Ok(None);
    }
    Ok(path.map(|p| p.to_string()))
}

/// Fetches `path` from the admin endpoint at `addr` and returns the response
/// body. A plain-TCP HTTP/1.0 client for tests, examples, and the loadgen —
/// the production scraper is whatever speaks Prometheus.
///
/// # Errors
///
/// Propagates connection/read errors; a non-`200` status is an
/// [`std::io::ErrorKind::InvalidData`] error.
pub fn scrape(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.write_all(format!("GET {path} HTTP/1.0\r\nHost: sc-admin\r\n\r\n").as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let Some((head, body)) = response.split_once("\r\n\r\n") else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed admin response",
        ));
    };
    let status_line = head.lines().next().unwrap_or("");
    if !status_line.contains("200") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("admin returned {status_line}"),
        ));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::Sample;

    fn registry_with_gauge() -> Arc<MetricsRegistry> {
        let registry = Arc::new(MetricsRegistry::new());
        registry.register(|out| out.push(Sample::gauge("admin_test_gauge", vec![], 42.0)));
        registry
    }

    #[test]
    fn serves_prometheus_and_json() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = spawn_admin(listener, registry_with_gauge());
        let text = scrape(handle.addr(), "/metrics").unwrap();
        assert!(
            text.contains("# TYPE admin_test_gauge gauge\nadmin_test_gauge 42\n"),
            "{text}"
        );
        let json = scrape(handle.addr(), "/metrics.json").unwrap();
        assert!(json.contains("\"name\":\"admin_test_gauge\""), "{json}");
        assert!(json.contains("\"value\":42"), "{json}");
        handle.shutdown();
    }

    #[test]
    fn unknown_path_is_an_error_and_listener_survives() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = spawn_admin(listener, registry_with_gauge());
        let err = scrape(handle.addr(), "/nope").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // A garbage request must not take the listener down either.
        {
            let mut stream = TcpStream::connect(handle.addr()).unwrap();
            stream.write_all(b"BOGUS\r\n\r\n").unwrap();
        }
        let text = scrape(handle.addr(), "/metrics").unwrap();
        assert!(text.contains("admin_test_gauge"));
        handle.shutdown();
    }
}
