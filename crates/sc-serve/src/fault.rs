//! Deterministic fault injection for the serving plane.
//!
//! Chaos testing a router/replica stack needs faults that are *repeatable*:
//! a flake that only appears on one machine's timing is a debugging tax,
//! not a test. This module provides two seeded, deterministic tools:
//!
//! * [`FaultyStream`] — a `Read`/`Write` wrapper applying a [`FaultKind`]
//!   to the bytes flowing through it (unit-testable without sockets).
//! * [`FaultProxy`] — a TCP proxy that fronts one backend and applies a
//!   [`FaultKind`] to the *backend → client* byte stream: response delays,
//!   mid-frame stalls, connection drops/truncations, and frame corruption.
//!   The client → backend direction is relayed verbatim, so requests always
//!   arrive intact and every observed failure is attributable to the
//!   injected response fault.
//!
//! The corruption faults are frame-aware. [`FaultKind::Corrupt`] flips the
//! top bit of the first payload byte (the tag/status byte) of every Nth
//! length-prefixed frame — detectable by any receiver, checksummed or not.
//! [`FaultKind::CorruptPayload`] flips a seeded-random bit of a
//! seeded-random payload byte (the CRC32 trailer included), which only a
//! checksummed protocol can detect: since every frame carries a CRC32
//! trailer, the receiver reports `InvalidData` and the router fails over
//! instead of silently serving altered logits — the contract the chaos
//! tests assert for both fault kinds. Arbitrary-position corruption safety
//! (no panic, no hang, no wild allocation) is covered by the fuzz-style
//! tests in [`crate::proto`].

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// SplitMix64: a tiny, high-quality 64-bit mixing function.
///
/// Used wherever the serving plane needs deterministic pseudo-randomness —
/// fault scheduling here, retry jitter in [`crate::router`] — so chaos runs
/// and backoff patterns replay identically from the same seeds.
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded SplitMix64 sequence.
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    state: u64,
}

impl DeterministicRng {
    /// Creates a generator whose output depends only on `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(1);
        splitmix64(self.state)
    }
}

/// One injectable fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Sleep this long before relaying each chunk (a uniformly slow link).
    Delay(Duration),
    /// Relay `after` bytes, then go silent — socket held open, no more
    /// bytes — for `limit`, then close. Models a hung replica; `limit`
    /// bounds the fault so test suites stay finite.
    Stall {
        /// Bytes relayed before the stall. Choose a value inside a frame to
        /// stall mid-frame.
        after: usize,
        /// How long the silence lasts before the connection closes.
        limit: Duration,
    },
    /// Relay `after` bytes, then close the connection. `after` inside a
    /// frame is the mid-frame truncation class; `after = 0` drops the
    /// response entirely.
    Drop {
        /// Bytes relayed before the close.
        after: usize,
    },
    /// Flip the tag/status byte of every `every_frames`-th length-prefixed
    /// frame (1 = every frame), making the frame reliably invalid to its
    /// receiver.
    Corrupt {
        /// Corruption period in frames (floored at one).
        every_frames: u32,
    },
    /// Flip one seeded-random bit of one seeded-random payload byte (the
    /// CRC32 trailer included) of every `every_frames`-th frame — the
    /// bit-rot class only a checksummed protocol can detect.
    CorruptPayload {
        /// Corruption period in frames (floored at one).
        every_frames: u32,
    },
}

/// Which payload byte of a selected frame gets flipped.
#[derive(Debug, Clone, Copy)]
enum CorruptMode {
    /// The first payload byte (the tag/status byte): invalid to any
    /// receiver, checksummed or not.
    Tag,
    /// A seeded-random byte anywhere in the payload, CRC trailer included:
    /// detected only because frames carry a CRC32 trailer.
    AnyByte,
}

/// Tracks length-prefixed frame boundaries in a byte stream so corruption
/// can target a chosen payload byte of chosen frames.
#[derive(Debug, Default)]
struct FrameTracker {
    header: [u8; 4],
    header_filled: usize,
    payload_len: usize,
    payload_remaining: usize,
    frames_seen: u64,
    /// `(payload offset, xor mask)` of the flip in the current frame, if
    /// this frame was selected.
    flip: Option<(usize, u8)>,
}

impl FrameTracker {
    /// Advances over `chunk`, flipping one byte of every `every_frames`-th
    /// frame in place. The flip target is chosen at header completion —
    /// once per frame regardless of how the stream is chunked — so the
    /// mutation is deterministic under any read fragmentation.
    fn corrupt(
        &mut self,
        chunk: &mut [u8],
        every_frames: u64,
        mode: CorruptMode,
        rng: &mut DeterministicRng,
    ) {
        for byte in chunk.iter_mut() {
            if self.payload_remaining == 0 {
                self.header[self.header_filled] = *byte;
                self.header_filled += 1;
                if self.header_filled == 4 {
                    self.header_filled = 0;
                    self.payload_len = u32::from_le_bytes(self.header) as usize;
                    self.payload_remaining = self.payload_len;
                    self.frames_seen += 1;
                    self.flip = (self.payload_len > 0
                        && self.frames_seen.is_multiple_of(every_frames))
                    .then(|| match mode {
                        CorruptMode::Tag => (0, 0x80),
                        CorruptMode::AnyByte => {
                            let offset = (rng.next_u64() % self.payload_len as u64) as usize;
                            let mask = 1u8 << (rng.next_u64() % 8);
                            (offset, mask)
                        }
                    });
                }
            } else {
                let offset = self.payload_len - self.payload_remaining;
                if let Some((target, mask)) = self.flip {
                    if offset == target {
                        *byte ^= mask;
                    }
                }
                self.payload_remaining -= 1;
            }
        }
    }
}

/// What [`FaultyStream::apply_read_fault`] decided about a chunk.
enum Verdict {
    /// Relay the (possibly mutated) chunk.
    Forward,
    /// Relay only the first `n` bytes, then end the stream.
    CutAfter(usize),
}

/// A `Read`/`Write` wrapper applying a [`FaultKind`] to the read side.
///
/// The wrapper is deterministic: the same seed, fault, and byte stream
/// produce the same mutations. Writes pass through untouched.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    fault: FaultKind,
    enabled: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    rng: DeterministicRng,
    tracker: FrameTracker,
    relayed: usize,
    done: bool,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner`, applying `fault` to every read while `enabled` holds
    /// true (flip the flag to turn the stream healthy mid-test). `stop`
    /// aborts a `Stall` sleep early so shutdown is never blocked on an
    /// injected fault.
    pub fn new(
        inner: S,
        fault: FaultKind,
        seed: u64,
        enabled: Arc<AtomicBool>,
        stop: Arc<AtomicBool>,
    ) -> Self {
        Self {
            inner,
            fault,
            enabled,
            stop,
            rng: DeterministicRng::new(seed),
            tracker: FrameTracker::default(),
            relayed: 0,
            done: false,
        }
    }

    /// Sleeps `total` in short slices, returning early if `stop` is set.
    fn interruptible_sleep(&self, total: Duration) {
        let mut remaining = total;
        while !remaining.is_zero() && !self.stop.load(Ordering::Relaxed) {
            let slice = remaining.min(Duration::from_millis(20));
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }

    /// Applies the configured fault to a chunk of `n` freshly read bytes.
    fn apply_read_fault(&mut self, chunk: &mut [u8]) -> Verdict {
        if !self.enabled.load(Ordering::Relaxed) {
            return Verdict::Forward;
        }
        match self.fault {
            FaultKind::Delay(delay) => {
                // Deterministic ±25% spread around the base delay keeps
                // chunks from marching in lockstep while staying replayable.
                let jitter =
                    delay.mul_f64((self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 / 4.0);
                self.interruptible_sleep(delay + jitter);
                Verdict::Forward
            }
            FaultKind::Stall { after, limit } => {
                if self.relayed + chunk.len() <= after {
                    return Verdict::Forward;
                }
                let allowed = after.saturating_sub(self.relayed);
                self.interruptible_sleep(limit);
                Verdict::CutAfter(allowed)
            }
            FaultKind::Drop { after } => {
                if self.relayed + chunk.len() <= after {
                    return Verdict::Forward;
                }
                Verdict::CutAfter(after.saturating_sub(self.relayed))
            }
            FaultKind::Corrupt { every_frames } => {
                self.tracker.corrupt(
                    chunk,
                    u64::from(every_frames.max(1)),
                    CorruptMode::Tag,
                    &mut self.rng,
                );
                Verdict::Forward
            }
            FaultKind::CorruptPayload { every_frames } => {
                self.tracker.corrupt(
                    chunk,
                    u64::from(every_frames.max(1)),
                    CorruptMode::AnyByte,
                    &mut self.rng,
                );
                Verdict::Forward
            }
        }
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.done {
            return Ok(0);
        }
        let n = self.inner.read(buf)?;
        if n == 0 {
            return Ok(0);
        }
        match self.apply_read_fault(&mut buf[..n]) {
            Verdict::Forward => {
                self.relayed += n;
                Ok(n)
            }
            Verdict::CutAfter(allowed) => {
                // Everything past `allowed` is swallowed and the stream ends
                // (EOF on the next read) — the truncation/stall classes.
                self.done = true;
                self.relayed += allowed;
                Ok(allowed)
            }
        }
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A TCP proxy injecting one [`FaultKind`] into the backend→client stream.
///
/// Point a router at [`FaultProxy::addr`] instead of the real backend and
/// every response byte stream runs through a [`FaultyStream`]. The fault
/// can be toggled at runtime with [`FaultProxy::set_enabled`] (e.g. to test
/// circuit-breaker recovery after a fault clears). Each accepted connection
/// applies the fault independently, seeded from the proxy seed and a
/// per-connection counter, so multi-connection runs are still replayable.
pub struct FaultProxy {
    addr: SocketAddr,
    enabled: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    state: Arc<ProxyState>,
}

#[derive(Default)]
struct ProxyState {
    /// Live sockets, shut down to unblock pump threads on proxy shutdown.
    sockets: Mutex<Vec<TcpStream>>,
    /// Pump threads to join on shutdown.
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl FaultProxy {
    /// Starts a proxy on a fresh loopback port forwarding to `target`.
    ///
    /// # Errors
    ///
    /// Propagates listener-creation failures.
    pub fn spawn(target: SocketAddr, fault: FaultKind, seed: u64) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let enabled = Arc::new(AtomicBool::new(true));
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::new(ProxyState::default());
        let accept_thread = {
            let enabled = Arc::clone(&enabled);
            let stop = Arc::clone(&stop);
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                let mut connection: u64 = 0;
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(client) = stream else { continue };
                    connection += 1;
                    let conn_seed = splitmix64(seed ^ connection);
                    if let Err(_error) =
                        relay_connection(client, target, fault, conn_seed, &enabled, &stop, &state)
                    {
                        // Upstream dial failed: the client socket just
                        // dropped, which the router sees as a refused/broken
                        // exchange — itself a fault worth routing around.
                        continue;
                    }
                }
            })
        };
        Ok(Self {
            addr,
            enabled,
            stop,
            accept_thread: Some(accept_thread),
            state,
        })
    }

    /// The proxy's listening address (give this to the router as the
    /// backend address).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Turns the fault on or off for *future* traffic; in-flight stalls run
    /// to completion.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::SeqCst);
    }

    /// Stops accepting, closes every proxied connection, and joins all
    /// proxy threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throw-away connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        for socket in self.state.sockets.lock().expect("proxy sockets").drain(..) {
            let _ = socket.shutdown(Shutdown::Both);
        }
        let threads: Vec<JoinHandle<()>> = self
            .state
            .threads
            .lock()
            .expect("proxy threads")
            .drain(..)
            .collect();
        for thread in threads {
            let _ = thread.join();
        }
    }
}

/// Sets up the two pump threads for one proxied connection.
fn relay_connection(
    client: TcpStream,
    target: SocketAddr,
    fault: FaultKind,
    seed: u64,
    enabled: &Arc<AtomicBool>,
    stop: &Arc<AtomicBool>,
    state: &Arc<ProxyState>,
) -> io::Result<()> {
    let upstream = TcpStream::connect_timeout(&target, Duration::from_secs(2))?;
    {
        let mut sockets = state.sockets.lock().expect("proxy sockets");
        if let Ok(socket) = client.try_clone() {
            sockets.push(socket);
        }
        if let Ok(socket) = upstream.try_clone() {
            sockets.push(socket);
        }
    }
    // Client → upstream: verbatim relay (requests always arrive intact).
    let forward = {
        let client = client.try_clone()?;
        let upstream = upstream.try_clone()?;
        std::thread::spawn(move || pump(client, upstream))
    };
    // Upstream → client: through the fault.
    let backward = {
        let faulty =
            FaultyStream::new(upstream, fault, seed, Arc::clone(enabled), Arc::clone(stop));
        std::thread::spawn(move || pump(faulty, client))
    };
    let mut threads = state.threads.lock().expect("proxy threads");
    threads.push(forward);
    threads.push(backward);
    Ok(())
}

/// Copies bytes until EOF or error, then shuts the destination down so the
/// peer observes the stream ending instead of a half-open hang.
fn pump(mut from: impl Read, mut to: TcpStream) {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{read_response, write_response, Response};

    fn frame_bytes() -> Vec<u8> {
        let mut wire = Vec::new();
        write_response(
            &mut wire,
            &Response::Ok {
                id: 3,
                argmax: 1,
                logits: vec![0.5, -0.25],
            },
        )
        .unwrap();
        wire
    }

    fn flags() -> (Arc<AtomicBool>, Arc<AtomicBool>) {
        (
            Arc::new(AtomicBool::new(true)),
            Arc::new(AtomicBool::new(false)),
        )
    }

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
        let mut rng = DeterministicRng::new(7);
        let mut replay = DeterministicRng::new(7);
        for _ in 0..16 {
            assert_eq!(rng.next_u64(), replay.next_u64());
        }
    }

    #[test]
    fn drop_fault_truncates_the_stream_at_the_cut() {
        let wire = frame_bytes();
        let (enabled, stop) = flags();
        // Cut mid-frame: 7 bytes of a much longer frame.
        let mut faulty =
            FaultyStream::new(&wire[..], FaultKind::Drop { after: 7 }, 1, enabled, stop);
        let mut received = Vec::new();
        faulty.read_to_end(&mut received).unwrap();
        assert_eq!(received, wire[..7].to_vec());
        // The truncated stream is a clean error/EOF for the proto reader,
        // never a hang.
        assert!(read_response(&mut received.as_slice()).is_err());
    }

    #[test]
    fn corrupt_fault_flips_exactly_the_tag_byte_of_selected_frames() {
        let mut wire = frame_bytes();
        wire.extend_from_slice(&frame_bytes());
        let frame_len = wire.len() / 2;
        let (enabled, stop) = flags();
        let mut faulty = FaultyStream::new(
            &wire[..],
            FaultKind::Corrupt { every_frames: 2 },
            1,
            enabled,
            stop,
        );
        let mut received = Vec::new();
        faulty.read_to_end(&mut received).unwrap();
        assert_eq!(received.len(), wire.len());
        // Frame 1 intact, frame 2's tag byte (offset 4 of the frame) flipped.
        assert_eq!(received[..frame_len], wire[..frame_len]);
        assert_eq!(received[frame_len + 4], wire[frame_len + 4] ^ 0x80);
        assert_eq!(received[frame_len + 5..], wire[frame_len + 5..]);
        // The corrupted frame is *detected*, not silently misparsed.
        let mut reader = &received[..];
        assert!(read_response(&mut reader).unwrap().is_some(), "frame 1 ok");
        assert!(read_response(&mut reader).is_err(), "frame 2 detected");
    }

    #[test]
    fn corrupt_payload_flips_one_seeded_bit_and_the_crc_catches_it() {
        let mut wire = frame_bytes();
        wire.extend_from_slice(&frame_bytes());
        let frame_len = wire.len() / 2;
        let (enabled, stop) = flags();
        let mut faulty = FaultyStream::new(
            &wire[..],
            FaultKind::CorruptPayload { every_frames: 2 },
            1,
            enabled,
            stop,
        );
        let mut received = Vec::new();
        faulty.read_to_end(&mut received).unwrap();
        assert_eq!(received.len(), wire.len());
        // Frame 1 intact; frame 2 differs in exactly one bit of one
        // payload byte (never the length header).
        assert_eq!(received[..frame_len], wire[..frame_len]);
        assert_eq!(
            received[frame_len..frame_len + 4],
            wire[frame_len..frame_len + 4]
        );
        let flipped: Vec<usize> = (frame_len..wire.len())
            .filter(|&i| received[i] != wire[i])
            .collect();
        assert_eq!(flipped.len(), 1, "exactly one byte must differ");
        let i = flipped[0];
        assert_eq!((received[i] ^ wire[i]).count_ones(), 1, "exactly one bit");
        // The CRC trailer makes the corruption a typed detection, wherever
        // the bit landed (payload or the trailer itself).
        let mut reader = &received[..];
        assert!(read_response(&mut reader).unwrap().is_some(), "frame 1 ok");
        assert!(read_response(&mut reader).is_err(), "frame 2 detected");
        // Same seed, same stream → same flip: the fault is replayable.
        let (enabled, stop) = flags();
        let mut replay = FaultyStream::new(
            &wire[..],
            FaultKind::CorruptPayload { every_frames: 2 },
            1,
            enabled,
            stop,
        );
        let mut again = Vec::new();
        replay.read_to_end(&mut again).unwrap();
        assert_eq!(again, received);
    }

    #[test]
    fn disabled_fault_is_a_passthrough() {
        let wire = frame_bytes();
        let (enabled, stop) = flags();
        enabled.store(false, Ordering::SeqCst);
        let mut faulty =
            FaultyStream::new(&wire[..], FaultKind::Drop { after: 0 }, 1, enabled, stop);
        let mut received = Vec::new();
        faulty.read_to_end(&mut received).unwrap();
        assert_eq!(received, wire);
    }

    #[test]
    fn stall_fault_is_interruptible_by_stop() {
        let wire = frame_bytes();
        let (enabled, stop) = flags();
        stop.store(true, Ordering::SeqCst);
        let mut faulty = FaultyStream::new(
            &wire[..],
            FaultKind::Stall {
                after: 2,
                limit: Duration::from_secs(3600),
            },
            1,
            enabled,
            stop,
        );
        let start = std::time::Instant::now();
        let mut received = Vec::new();
        faulty.read_to_end(&mut received).unwrap();
        assert_eq!(received, wire[..2].to_vec());
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "a set stop flag must abort the stall sleep"
        );
    }
}
