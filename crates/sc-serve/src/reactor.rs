//! Readiness-driven I/O core (std-only) for the event-loop serving front.
//!
//! Both tiers of the serving plane — `serve`'s client front and `route`'s
//! client + backend channels — run their sockets through one of these
//! reactors: every socket is switched to nonblocking mode, registered with a
//! [`Poller`] under a caller-chosen token, and a single I/O thread waits for
//! readiness events instead of parking one or two OS threads per connection.
//! Compute stays on the existing worker pool; workers hand results back
//! through a completion queue and kick the I/O thread awake with a
//! [`Waker`].
//!
//! Two poller backends, selected at [`Poller::new`]:
//!
//! * **epoll** (Linux): O(ready) readiness via direct `epoll_create1` /
//!   `epoll_ctl` / `epoll_wait` system calls, declared here with a minimal
//!   `extern "C"` block — std already links libc on every unix target, so
//!   this adds no dependency. Level-triggered, which keeps the state
//!   machines simple: unfinished reads are simply re-reported.
//! * **scan** (portable fallback, and forceable for tests): reports every
//!   registered token as ready after a short tick sleep. Correct against
//!   nonblocking sockets — handlers treat `WouldBlock` as a no-op — at the
//!   cost of O(connections) work per tick, which is exactly the trade the
//!   fallback exists to accept.
//!
//! The reactor is deliberately tiny: tokens are bare `u64`s, there are no
//! callbacks, and timers stay in the event loops that own the deadlines.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::io::AsRawFd;

/// What readiness a registration asks for. Level-triggered in both backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Readable only (the steady state of an idle connection).
    Read,
    /// Writable only (a lame-duck connection flushing its final replies
    /// after its read side closed).
    Write,
    /// Readable and writable (a connection with pending output).
    ReadWrite,
}

impl Interest {
    fn wants_read(self) -> bool {
        matches!(self, Interest::Read | Interest::ReadWrite)
    }

    fn wants_write(self) -> bool {
        matches!(self, Interest::Write | Interest::ReadWrite)
    }
}

/// One readiness event from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the socket was registered under.
    pub token: u64,
    /// The socket has bytes (or a pending accept, or an EOF) to read.
    pub readable: bool,
    /// The socket can accept more output.
    pub writable: bool,
}

/// A readiness poller over nonblocking sockets.
#[derive(Debug)]
pub struct Poller {
    backend: Backend,
}

#[derive(Debug)]
enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    Scan(Scan),
}

impl Poller {
    /// The platform's best backend: epoll on Linux, the scan fallback
    /// elsewhere.
    pub fn new() -> io::Result<Self> {
        #[cfg(target_os = "linux")]
        {
            return Ok(Self {
                backend: Backend::Epoll(epoll::Epoll::new()?),
            });
        }
        #[allow(unreachable_code)]
        Self::scan()
    }

    /// The portable scan backend, explicitly — used by tests to prove the
    /// serving plane is correct without epoll.
    pub fn scan() -> io::Result<Self> {
        Ok(Self {
            backend: Backend::Scan(Scan::default()),
        })
    }

    /// Registers a socket under `token`. One registration per socket; use
    /// [`reregister`](Self::reregister) to change interest.
    #[cfg(unix)]
    pub fn register<S: AsRawFd>(
        &mut self,
        source: &S,
        token: u64,
        interest: Interest,
    ) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(epoll) => {
                epoll.control(epoll::Op::Add, source.as_raw_fd(), token, interest)
            }
            Backend::Scan(scan) => scan.register(token, interest),
        }
    }

    /// Registers a socket under `token` (portable fallback: tokens only).
    #[cfg(not(unix))]
    pub fn register<S>(&mut self, _source: &S, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            Backend::Scan(scan) => scan.register(token, interest),
        }
    }

    /// Updates the interest of an existing registration.
    #[cfg(unix)]
    pub fn reregister<S: AsRawFd>(
        &mut self,
        source: &S,
        token: u64,
        interest: Interest,
    ) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(epoll) => {
                epoll.control(epoll::Op::Modify, source.as_raw_fd(), token, interest)
            }
            Backend::Scan(scan) => scan.register(token, interest),
        }
    }

    /// Updates the interest of an existing registration.
    #[cfg(not(unix))]
    pub fn reregister<S>(&mut self, _source: &S, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            Backend::Scan(scan) => scan.register(token, interest),
        }
    }

    /// Removes a registration. Call before closing the socket; a vanished
    /// registration is not an error (the kernel drops epoll entries with the
    /// last close anyway).
    #[cfg(unix)]
    pub fn deregister<S: AsRawFd>(&mut self, source: &S, token: u64) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(epoll) => epoll.remove(source.as_raw_fd()),
            Backend::Scan(scan) => scan.deregister(token),
        }
    }

    /// Removes a registration.
    #[cfg(not(unix))]
    pub fn deregister<S>(&mut self, _source: &S, token: u64) -> io::Result<()> {
        match &mut self.backend {
            Backend::Scan(scan) => scan.deregister(token),
        }
    }

    /// Blocks until at least one registered socket is ready or `timeout`
    /// elapses (`None` blocks indefinitely), filling `events`. Spurious
    /// wake-ups and empty event sets are normal.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(epoll) => epoll.wait(events, timeout),
            Backend::Scan(scan) => scan.wait(events, timeout),
        }
    }
}

/// Portable fallback backend: every registered token reports ready after a
/// short tick, and the nonblocking handlers discover the truth themselves.
#[derive(Debug, Default)]
struct Scan {
    registered: HashMap<u64, Interest>,
}

impl Scan {
    /// Tick length — the latency floor this backend accepts for portability.
    const TICK: Duration = Duration::from_millis(1);

    fn register(&mut self, token: u64, interest: Interest) -> io::Result<()> {
        self.registered.insert(token, interest);
        Ok(())
    }

    fn deregister(&mut self, token: u64) -> io::Result<()> {
        self.registered.remove(&token);
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let tick = timeout.map_or(Self::TICK, |t| t.min(Self::TICK));
        if !tick.is_zero() {
            std::thread::sleep(tick);
        }
        events.extend(self.registered.iter().map(|(&token, &interest)| Event {
            token,
            readable: interest.wants_read(),
            writable: interest.wants_write(),
        }));
        Ok(())
    }
}

#[cfg(target_os = "linux")]
mod epoll {
    //! Minimal direct epoll bindings. std links libc on unix, so these
    //! declarations resolve against the symbols already in the process.

    use super::{Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// `struct epoll_event`; packed on x86-64, natural layout elsewhere —
    /// matching the kernel ABI.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    #[derive(Debug)]
    pub(super) enum Op {
        Add,
        Modify,
    }

    #[derive(Debug)]
    pub(super) struct Epoll {
        epfd: RawFd,
        /// Reused kernel-side event buffer.
        buffer: Vec<EpollEvent>,
    }

    impl std::fmt::Debug for EpollEvent {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let events = self.events;
            let data = self.data;
            write!(f, "EpollEvent {{ events: {events:#x}, data: {data} }}")
        }
    }

    impl Epoll {
        pub(super) fn new() -> io::Result<Self> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self {
                epfd,
                buffer: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn mask(interest: Interest) -> u32 {
            match interest {
                Interest::Read => EPOLLIN,
                Interest::Write => EPOLLOUT,
                Interest::ReadWrite => EPOLLIN | EPOLLOUT,
            }
        }

        pub(super) fn control(
            &mut self,
            op: Op,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            let mut event = EpollEvent {
                events: Self::mask(interest),
                data: token,
            };
            let op = match op {
                Op::Add => EPOLL_CTL_ADD,
                Op::Modify => EPOLL_CTL_MOD,
            };
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut event) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn remove(&mut self, fd: RawFd) -> io::Result<()> {
            let mut event = EpollEvent { events: 0, data: 0 };
            if unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut event) } < 0 {
                let error = io::Error::last_os_error();
                // Already gone (closed elsewhere) is fine.
                if error.raw_os_error() != Some(2) && error.raw_os_error() != Some(9) {
                    return Err(error);
                }
            }
            Ok(())
        }

        pub(super) fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            // Round a sub-millisecond timeout up, not down to a busy loop.
            let timeout_ms = match timeout {
                None => -1,
                Some(t) if t.is_zero() => 0,
                Some(t) => i32::try_from(t.as_millis().max(1)).unwrap_or(i32::MAX),
            };
            let count = loop {
                let count = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buffer.as_mut_ptr(),
                        self.buffer.len() as i32,
                        timeout_ms,
                    )
                };
                if count >= 0 {
                    break count as usize;
                }
                let error = io::Error::last_os_error();
                if error.kind() != io::ErrorKind::Interrupted {
                    return Err(error);
                }
            };
            for raw in &self.buffer[..count] {
                let bits = raw.events;
                events.push(Event {
                    token: raw.data,
                    // Errors and hang-ups surface as readability: the next
                    // read returns the error or EOF and the state machine
                    // tears the connection down through its normal path.
                    readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            if count == self.buffer.len() {
                // Saturated: grow so a 1k-connection stampede doesn't take
                // multiple wait calls to report.
                self.buffer
                    .resize(self.buffer.len() * 2, EpollEvent { events: 0, data: 0 });
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

/// Cross-thread wake-up for a [`Poller`]: workers finishing compute (or a
/// shutdown request) must interrupt a blocked `wait`. std has no pipe or
/// eventfd, so the waker is a loopback TCP pair — the read half lives in the
/// poller under a reserved token, the write half is shared by producers.
#[derive(Debug)]
pub struct Waker {
    writer: Mutex<TcpStream>,
}

/// The poller-side read half of a [`Waker`] pair.
#[derive(Debug)]
pub struct WakeReceiver {
    reader: TcpStream,
}

impl Waker {
    /// Builds a connected waker pair on the loopback interface.
    pub fn pair() -> io::Result<(Waker, WakeReceiver)> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let writer = TcpStream::connect(listener.local_addr()?)?;
        let (reader, _) = listener.accept()?;
        writer.set_nonblocking(true)?;
        writer.set_nodelay(true)?;
        reader.set_nonblocking(true)?;
        Ok((
            Waker {
                writer: Mutex::new(writer),
            },
            WakeReceiver { reader },
        ))
    }

    /// Interrupts the poller. Cheap and coalescing: if the wake byte is
    /// still unread (receiver already pending), the extra byte either lands
    /// in the socket buffer or the buffer is full — both mean the receiver
    /// will wake, which is all that matters.
    pub fn wake(&self) {
        let mut writer = self.writer.lock().expect("waker lock");
        // WouldBlock means megabytes of unread wake bytes: the poller is
        // guaranteed awake; any other error means it is gone. Neither needs
        // handling here.
        let _ = writer.write(&[1]);
    }
}

impl WakeReceiver {
    /// The socket to register under the event loop's wake token.
    pub fn socket(&self) -> &TcpStream {
        &self.reader
    }

    /// Consumes pending wake bytes so a level-triggered poller stops
    /// reporting them.
    pub fn drain(&mut self) {
        let mut sink = [0u8; 256];
        while matches!(self.reader.read(&mut sink), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn poller_kinds() -> Vec<(&'static str, Poller)> {
        let mut kinds = vec![("scan", Poller::scan().unwrap())];
        if cfg!(target_os = "linux") {
            kinds.push(("native", Poller::new().unwrap()));
        }
        kinds
    }

    #[test]
    fn reports_readable_when_bytes_arrive() {
        for (kind, mut poller) in poller_kinds() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();
            poller.register(&server, 7, Interest::Read).unwrap();

            client.write_all(b"x").unwrap();
            let mut events = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(5);
            let seen = loop {
                poller
                    .wait(&mut events, Some(Duration::from_millis(50)))
                    .unwrap();
                if let Some(event) = events.iter().find(|e| e.token == 7) {
                    break *event;
                }
                assert!(Instant::now() < deadline, "{kind}: no readable event");
            };
            assert!(seen.readable, "{kind}");
            poller.deregister(&server, 7).unwrap();
        }
    }

    #[test]
    fn writable_interest_is_toggleable() {
        for (kind, mut poller) in poller_kinds() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();
            poller.register(&server, 3, Interest::ReadWrite).unwrap();

            let mut events = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                poller
                    .wait(&mut events, Some(Duration::from_millis(50)))
                    .unwrap();
                if events.iter().any(|e| e.token == 3 && e.writable) {
                    break;
                }
                assert!(Instant::now() < deadline, "{kind}: no writable event");
            }
            // Dropping write interest stops writable reports (epoll); the
            // scan backend honors the recorded interest the same way.
            poller.reregister(&server, 3, Interest::Read).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(
                events.iter().all(|e| e.token != 3 || !e.writable),
                "{kind}: writable after downgrade"
            );
        }
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        for (kind, mut poller) in poller_kinds() {
            let (waker, mut receiver) = Waker::pair().unwrap();
            poller
                .register(receiver.socket(), 0, Interest::Read)
                .unwrap();
            let waker = std::sync::Arc::new(waker);
            let remote = std::sync::Arc::clone(&waker);
            let kicker = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                remote.wake();
            });
            let mut events = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                poller
                    .wait(&mut events, Some(Duration::from_millis(100)))
                    .unwrap();
                if events.iter().any(|e| e.token == 0 && e.readable) {
                    break;
                }
                assert!(Instant::now() < deadline, "{kind}: wake never seen");
            }
            receiver.drain();
            kicker.join().unwrap();
            // Coalesced wakes collapse into the drained socket: after a
            // drain with no new wake, epoll reports nothing for the token.
            if kind == "native" {
                poller
                    .wait(&mut events, Some(Duration::from_millis(20)))
                    .unwrap();
                assert!(events.iter().all(|e| e.token != 0), "{kind}: stale wake");
            }
        }
    }
}
