//! The compiled SC inference engine.
//!
//! [`Engine::compile`] lowers a trained network plus an SC configuration
//! into an immutable execution plan and pre-generates everything that does
//! not depend on the input:
//!
//! * **Weight bit-streams** are generated once per filter (convolution) or
//!   per unit (fully-connected) through the batched SNG and cached for the
//!   engine's lifetime. The per-call path regenerates them on every single
//!   block evaluation; the filter-aware sharing the paper applies to SRAM
//!   (one filter serves every inner-product block of a feature map, see
//!   `sc_dcnn::weight_storage`) maps directly onto this cache: one set of
//!   streams per filter serves all of its pooled positions.
//! * **Input bit-streams** are memoized in a per-session
//!   [`sc_core::cache::StreamCache`]: a stream is a pure function of its
//!   `(lane seed, comparator threshold)` pair, all units of a layer share
//!   their SNG wiring, and decoded layer outputs are quantized to `L + 1`
//!   levels, so the same keys recur constantly — across the units of a
//!   fully-connected layer, across pooling windows, and across the requests
//!   of a batch.
//!
//! Evaluation then runs [`FeatureBlock::evaluate_prepared`], the stream-level
//! twin of the per-call path, which applies the same fused kernels with the
//! same seeds. The engine is therefore **bit-exact** with the
//! [`crate::interpreter::Interpreter`]; `verify_against_interpreter`
//! (an [`EngineOptions`] flag or the standalone [`Engine::verify`] call)
//! proves it at runtime.
//!
//! [`FeatureBlock::evaluate_prepared`]: sc_blocks::feature_block::FeatureBlock::evaluate_prepared

use crate::error::ServeError;
use crate::interpreter::{Inference, Interpreter};
use crate::plan::{lower, Plan, PlanLayer, PlanOptions};
use sc_blocks::feature_block::FeatureBlock;
use sc_core::arena::{ArenaStats, StreamArena};
use sc_core::bitstream::BitStream;
use sc_core::cache::{CacheStats, StreamCache};
use sc_core::encoding::{Bipolar, Encoding};
use sc_core::parallel::{parallel_map_with, parallel_map_with_state};
use sc_core::sng::{probability_threshold, BatchSng, SngBank, SngKind};
use sc_core::ScError;
use sc_dcnn::config::ScNetworkConfig;
use sc_nn::network::Network;
use sc_nn::tensor::Tensor;
use std::sync::Arc;

/// Options controlling compilation and engine behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Lowering options (input shape, seed scheme).
    pub plan: PlanOptions,
    /// Maximum number of memoized input streams per session.
    pub cache_capacity: usize,
    /// When set, every [`Engine::infer`] also runs the per-call interpreter
    /// and fails loudly unless the logits are bit-identical. Expensive —
    /// meant for tests, bring-up, and canary replicas.
    pub verify_against_interpreter: bool,
    /// Evaluate each plan stage through the layer-fused path
    /// ([`FeatureBlock::evaluate_layer_prepared`]): all units of a stage
    /// share operand streams, MUX selector plans, and batched activation
    /// walks. Off reproduces the unit-at-a-time engine (kept as the
    /// benchmark baseline); outputs are bit-identical either way.
    ///
    /// [`FeatureBlock::evaluate_layer_prepared`]: sc_blocks::feature_block::FeatureBlock::evaluate_layer_prepared
    pub fuse_layers: bool,
    /// Fan the units of a *single* request across `sc_core::parallel`
    /// workers (per-worker sessions with their own stream caches). Cuts
    /// single-request latency on multi-core machines; batched inference
    /// already parallelizes across requests, and nested fan-outs degrade to
    /// serial, so the two compose safely. Results are bit-identical
    /// regardless of the thread budget.
    pub parallel_units: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            plan: PlanOptions::default(),
            cache_capacity: 1 << 16,
            verify_against_interpreter: false,
            fuse_layers: true,
            parallel_units: true,
        }
    }
}

/// Per-worker mutable state: the stream arena and the input-stream memo.
///
/// Sessions are cheap to create but profit from living long: a warm cache
/// carries hit rates across requests. The serving runtime keeps one session
/// per worker thread.
#[derive(Debug)]
pub struct Session {
    arena: StreamArena,
    cache: StreamCache,
    /// Batched SNG shared by every cache miss of this session: one
    /// staged-recurrence scratch serves all lanes of all layers, so misses
    /// allocate nothing beyond the (arena-pooled) stream buffer.
    sng: BatchSng,
    /// Warm sub-sessions handed to single-request unit fan-out workers and
    /// collected back afterwards, so their caches survive across layers and
    /// requests instead of being rebuilt cold per fan-out.
    workers: Vec<Session>,
    /// Warm arenas handed to dense-layer fan-out chunk workers and collected
    /// back afterwards (the chunk workers share the session's input streams
    /// and need no cache of their own — only pooled buffers).
    chunk_arenas: Vec<StreamArena>,
    /// Whether this session participates in single-request unit fan-out at
    /// all (see [`Session::set_unit_fan_out`]).
    unit_fan_out: bool,
    /// Nanoseconds spent in input-stream cache lookup/fill since the last
    /// [`Session::take_cache_fill`] — the serving runtime drains this per
    /// request into the `cache_fill` stage histogram.
    cache_fill_ns: u64,
}

impl Session {
    /// Input-stream cache counters of this session, aggregated over its
    /// warm fan-out worker sessions (with unit fan-out active, most conv
    /// input-stream traffic flows through those workers — stats that
    /// ignored them would report near-zero activity on multi-core runs).
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = self.cache.stats();
        for worker in &self.workers {
            stats.merge(&worker.cache_stats());
        }
        stats
    }

    /// Stream/count buffer reuse counters of this session's arena,
    /// aggregated over its warm fan-out worker sessions. In steady state the
    /// fused inference path takes every buffer from the pool: the
    /// `stream_allocs` delta between two snapshots of a warm session is
    /// zero.
    pub fn arena_stats(&self) -> ArenaStats {
        let mut stats = self.arena.stats();
        for arena in &self.chunk_arenas {
            stats.merge(&arena.stats());
        }
        for worker in &self.workers {
            stats.merge(&worker.arena_stats());
        }
        stats
    }

    /// Enables or disables single-request unit fan-out for inferences run
    /// through this session (default: enabled, subject to
    /// [`EngineOptions::parallel_units`]).
    ///
    /// The engine's "nested fan-outs degrade to serial" guarantee only
    /// covers `sc_core::parallel` workers; a caller that runs many sessions
    /// on its *own* threads — like the TCP runtime's per-worker loops —
    /// should disable fan-out to avoid oversubscribing the machine with
    /// `workers × threads` scoped threads. Results are bit-identical either
    /// way.
    pub fn set_unit_fan_out(&mut self, enabled: bool) {
        self.unit_fan_out = enabled;
    }

    /// Drains the time spent in input-stream cache lookup/fill since the
    /// last call, aggregated over this session's warm fan-out workers (where
    /// most conv input-stream traffic flows on multi-core runs). The serving
    /// runtime calls this once per request to attribute the `cache_fill`
    /// stage span; resetting keeps successive requests independent.
    pub fn take_cache_fill(&mut self) -> std::time::Duration {
        let mut total = std::mem::take(&mut self.cache_fill_ns);
        for worker in &mut self.workers {
            total += worker.take_cache_fill().as_nanos() as u64;
        }
        std::time::Duration::from_nanos(total)
    }
}

/// Pre-generated weight streams of one layer: `[row][field][lane]`, where a
/// row is a convolution filter or a fully-connected unit.
type LayerWeightStreams = Vec<Vec<Vec<BitStream>>>;

/// Pre-generates every layer's weight bit-streams from the plan's block
/// seeds (shared by [`Engine::compile`] and [`Engine::from_plan`]; the
/// streams are a pure function of the plan, which is what lets the plan
/// store omit them).
fn generate_weight_streams(plan: &Plan) -> Result<Vec<LayerWeightStreams>, ServeError> {
    plan.layers
        .iter()
        .map(|layer| match layer {
            PlanLayer::Conv(conv) => conv
                .filters
                .iter()
                .map(|filter| conv.block.weight_streams(filter))
                .collect::<Result<LayerWeightStreams, _>>(),
            PlanLayer::Dense(dense) => dense
                .units
                .iter()
                .map(|unit| dense.block.weight_streams(unit))
                .collect::<Result<LayerWeightStreams, _>>(),
        })
        .collect::<Result<Vec<_>, _>>()
        .map_err(ServeError::from)
}

/// A compiled, immutable SC inference engine.
///
/// The engine itself is `Sync`: all mutable state lives in [`Session`]s, so
/// one engine can be shared by any number of worker threads.
#[derive(Debug)]
pub struct Engine {
    plan: Arc<Plan>,
    weights: Vec<LayerWeightStreams>,
    interpreter: Interpreter,
    options: EngineOptions,
}

impl Engine {
    /// Compiles a trained network and an SC configuration into an engine.
    ///
    /// # Errors
    ///
    /// Propagates lowering errors (see [`lower`]) and encoding errors from
    /// weight-stream pre-generation.
    pub fn compile(
        network: &Network,
        config: &ScNetworkConfig,
        options: EngineOptions,
    ) -> Result<Self, ServeError> {
        let plan = lower(network, config, &options.plan)?;
        Self::from_plan(plan, options)
    }

    /// Builds an engine directly from an already-lowered [`Plan`] — the
    /// cold-start path of [`crate::plan_store`], which skips training and
    /// lowering entirely. Weight bit-streams are regenerated here from the
    /// plan's block seeds, so the resulting engine is bit-exact with one
    /// [`Engine::compile`] produced from the same network and options.
    ///
    /// `options.plan` is recorded for introspection but does not influence
    /// the build (the plan is already lowered); pass the values the plan was
    /// originally lowered under, e.g. via
    /// [`crate::plan_store::LoadedPlan::engine_options`].
    ///
    /// # Errors
    ///
    /// Propagates encoding errors from weight-stream pre-generation.
    pub fn from_plan(plan: Plan, options: EngineOptions) -> Result<Self, ServeError> {
        let plan = Arc::new(plan);
        let weights = generate_weight_streams(&plan)?;
        Ok(Self {
            interpreter: Interpreter::new(Arc::clone(&plan)),
            plan,
            weights,
            options,
        })
    }

    /// The compiled plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Name of the configuration this engine was compiled from — the label
    /// a multi-model server lists its registry under.
    pub fn model_name(&self) -> &str {
        &self.plan.config_name
    }

    /// The engine's options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// The SC kernel backend every fused layer kernel under this engine
    /// dispatches to (process-wide; see `sc_core::word`). All backends are
    /// bit-identical, so this only affects throughput, never outputs.
    pub fn kernel_backend(&self) -> sc_core::Backend {
        sc_core::active_backend()
    }

    /// Total number of pre-generated weight streams held by the engine.
    pub fn cached_weight_streams(&self) -> usize {
        self.weights
            .iter()
            .flat_map(|layer| layer.iter())
            .map(|row| row.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Creates a fresh per-worker session.
    pub fn new_session(&self) -> Session {
        Session {
            arena: StreamArena::new(),
            cache: StreamCache::new(self.options.cache_capacity),
            sng: BatchSng::new(SngKind::Lfsr32),
            workers: Vec::new(),
            chunk_arenas: Vec::new(),
            unit_fan_out: true,
            cache_fill_ns: 0,
        }
    }

    /// Runs one compiled SC inference.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Invalid`] for a wrong input size, propagates
    /// kernel errors, and — with `verify_against_interpreter` set — fails if
    /// the compiled output ever deviates from the per-call path.
    pub fn infer(&self, session: &mut Session, image: &Tensor) -> Result<Inference, ServeError> {
        self.plan.validate_input(image)?;
        let mut values = self.plan.input_values(image);
        for (layer, weights) in self.plan.layers.iter().zip(self.weights.iter()) {
            values = self.eval_layer(session, layer, weights, &values)?;
        }
        let result = Inference::from_logits(values);
        if self.options.verify_against_interpreter {
            let reference = self.interpreter.infer(image)?;
            if reference != result {
                return Err(ServeError::Invalid(format!(
                    "compiled engine diverged from the interpreter: {:?} vs {:?}",
                    result.logits, reference.logits
                )));
            }
        }
        Ok(result)
    }

    /// Runs a batch of inferences, fanning the requests across
    /// `sc_core::parallel` workers (each worker gets its own session). With
    /// one worker the provided session is used for the whole batch, keeping
    /// its cache warm.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::infer`]; the first error wins.
    pub fn infer_batch(
        &self,
        session: &mut Session,
        images: &[Tensor],
    ) -> Result<Vec<Inference>, ServeError> {
        if sc_core::parallel::max_threads() <= 1 || images.len() <= 1 {
            return images
                .iter()
                .map(|image| self.infer(session, image))
                .collect();
        }
        parallel_map_with(
            images,
            || self.new_session(),
            |session, _, image| self.infer(session, image),
        )
        .into_iter()
        .collect()
    }

    /// Proves bit-exactness against the per-call interpreter on a set of
    /// images.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Invalid`] naming the first diverging image, or
    /// propagates evaluation errors.
    pub fn verify(&self, session: &mut Session, images: &[Tensor]) -> Result<(), ServeError> {
        for (index, image) in images.iter().enumerate() {
            let compiled = self.infer(session, image)?;
            let reference = self.interpreter.infer(image)?;
            if compiled != reference {
                return Err(ServeError::Invalid(format!(
                    "image {index}: compiled logits {:?} != interpreter logits {:?}",
                    compiled.logits, reference.logits
                )));
            }
        }
        Ok(())
    }

    /// The per-call interpreter over the same plan (the verification and
    /// benchmarking baseline).
    pub fn interpreter(&self) -> &Interpreter {
        &self.interpreter
    }

    /// Whether single-request unit fan-out is active for a layer of
    /// `independent_items` independent work items evaluated through
    /// `session`.
    fn fan_out_units(&self, session: &Session, independent_items: usize) -> bool {
        self.options.parallel_units
            && session.unit_fan_out
            && independent_items > 1
            && sc_core::parallel::max_threads() > 1
    }

    fn eval_layer(
        &self,
        session: &mut Session,
        layer: &PlanLayer,
        weights: &LayerWeightStreams,
        values: &[f64],
    ) -> Result<Vec<f64>, ServeError> {
        if !self.options.fuse_layers {
            return self.eval_layer_per_unit(session, layer, weights, values);
        }
        match layer {
            PlanLayer::Conv(conv) => {
                let [filters, pooled_h, pooled_w] = conv.out_shape;
                let positions = pooled_h * pooled_w;
                let unit_refs: Vec<&[Vec<BitStream>]> = weights
                    .iter()
                    .take(filters)
                    .map(|row| row.as_slice())
                    .collect();
                // Selector plans depend only on the block's seeds and the
                // stream length: one set serves every position and every
                // fan-out worker of this layer.
                let selectors = conv
                    .block
                    .prepare_selectors(self.plan.stream_length.bits())?;
                // One fused call per pooled position evaluates every filter:
                // the position's input streams are generated (or cache-hit)
                // once instead of once per filter.
                let eval_position =
                    |session: &mut Session, position: usize| -> Result<Vec<f64>, ServeError> {
                        let (py, px) = (position / pooled_w, position % pooled_w);
                        let fields = conv.gather_fields(values, py, px);
                        let inputs = self.gather_input_streams(session, &conv.block, &fields)?;
                        let outputs = conv.block.evaluate_layer_prepared_with(
                            &selectors,
                            &inputs,
                            &unit_refs,
                            &mut session.arena,
                        );
                        for field in inputs {
                            session.arena.recycle_all(field);
                        }
                        let outputs = outputs?;
                        let values = outputs.iter().map(BitStream::bipolar_value).collect();
                        session.arena.recycle_all(outputs);
                        Ok(values)
                    };
                let per_position: Vec<Result<Vec<f64>, ServeError>> =
                    if self.fan_out_units(session, positions) {
                        // Positions are independent; per-worker sessions keep
                        // their own caches/arenas. Outputs depend only on the
                        // position index, so the fan-out is bit-deterministic.
                        // Workers draw warm sessions from the caller's pool
                        // and return them afterwards, so the per-worker
                        // caches carry hit rates across layers and requests.
                        let pool = std::sync::Mutex::new(std::mem::take(&mut session.workers));
                        let (results, states) = parallel_map_with_state(
                            &(0..positions).collect::<Vec<usize>>(),
                            || {
                                pool.lock()
                                    .expect("session pool")
                                    .pop()
                                    .unwrap_or_else(|| self.new_session())
                            },
                            |worker_session, _, &position| eval_position(worker_session, position),
                        );
                        let mut workers = pool.into_inner().expect("session pool");
                        workers.extend(states);
                        session.workers = workers;
                        results
                    } else {
                        (0..positions)
                            .map(|position| eval_position(session, position))
                            .collect()
                    };
                // Transpose position-major results into the plan's
                // filter-major output order.
                let mut outputs = vec![0.0f64; filters * positions];
                for (position, result) in per_position.into_iter().enumerate() {
                    for (filter, value) in result?.into_iter().enumerate() {
                        outputs[filter * positions + position] = value;
                    }
                }
                Ok(outputs)
            }
            PlanLayer::Dense(dense) => {
                // All units of a fully-connected layer share one receptive
                // field: its streams are generated once for the whole layer.
                let field = vec![values.to_vec()];
                let inputs = self.gather_input_streams(session, &dense.block, &field)?;
                let unit_refs: Vec<&[Vec<BitStream>]> =
                    weights.iter().map(|row| row.as_slice()).collect();
                // One selector-plan set for the whole layer, shared by every
                // fan-out chunk (rebuilding it per chunk would repeat the
                // draw + bit-slice pass once per thread).
                let selectors = dense
                    .block
                    .prepare_selectors(self.plan.stream_length.bits())?;
                let decoded = if self.fan_out_units(session, unit_refs.len()) {
                    let threads = sc_core::parallel::max_threads();
                    let chunk_size = unit_refs.len().div_ceil(threads).max(1);
                    let chunks: Vec<&[&[Vec<BitStream>]]> = unit_refs.chunks(chunk_size).collect();
                    // Fan-out workers draw warm arenas from the session pool
                    // and return them afterwards (mirroring the conv path's
                    // worker-session pool), so dense fan-out stays zero-alloc
                    // in steady state and the buffers remain visible to
                    // `Session::arena_stats`.
                    let pool = std::sync::Mutex::new(std::mem::take(&mut session.chunk_arenas));
                    let (per_chunk, states) = parallel_map_with_state(
                        &chunks,
                        || pool.lock().expect("arena pool").pop().unwrap_or_default(),
                        |arena, _, chunk| {
                            // Decode inside the worker and recycle the output
                            // buffers into the arena they were taken from:
                            // take and recycle stay paired per worker, so no
                            // arena net-drains (and then re-allocates) under
                            // uneven chunk sizes or scheduling.
                            dense
                                .block
                                .evaluate_layer_prepared_with(&selectors, &inputs, chunk, arena)
                                .map(|streams| {
                                    let decoded: Vec<f64> =
                                        streams.iter().map(BitStream::bipolar_value).collect();
                                    arena.recycle_all(streams);
                                    decoded
                                })
                        },
                    );
                    let mut arenas = pool.into_inner().expect("arena pool");
                    arenas.extend(states);
                    session.chunk_arenas = arenas;
                    let mut decoded = Vec::with_capacity(unit_refs.len());
                    let mut error = None;
                    for chunk in per_chunk {
                        match chunk {
                            Ok(chunk_values) => decoded.extend(chunk_values),
                            Err(e) if error.is_none() => error = Some(e),
                            Err(_) => {}
                        }
                    }
                    match error {
                        None => Ok(decoded),
                        Some(e) => Err(e),
                    }
                } else {
                    dense
                        .block
                        .evaluate_layer_prepared_with(
                            &selectors,
                            &inputs,
                            &unit_refs,
                            &mut session.arena,
                        )
                        .map(|streams| {
                            let decoded = streams.iter().map(BitStream::bipolar_value).collect();
                            session.arena.recycle_all(streams);
                            decoded
                        })
                };
                for field_streams in inputs {
                    session.arena.recycle_all(field_streams);
                }
                Ok(decoded?)
            }
        }
    }

    /// The pre-fusion unit-at-a-time evaluation path (the
    /// `fuse_layers: false` baseline the fused path is benchmarked and
    /// property-tested against).
    fn eval_layer_per_unit(
        &self,
        session: &mut Session,
        layer: &PlanLayer,
        weights: &LayerWeightStreams,
        values: &[f64],
    ) -> Result<Vec<f64>, ServeError> {
        match layer {
            PlanLayer::Conv(conv) => {
                let [filters, pooled_h, pooled_w] = conv.out_shape;
                let positions = pooled_h * pooled_w;
                let mut outputs = Vec::with_capacity(filters * positions);
                for filter_weights in weights.iter().take(filters) {
                    for position in 0..positions {
                        let (py, px) = (position / pooled_w, position % pooled_w);
                        let fields = conv.gather_fields(values, py, px);
                        outputs.push(self.eval_unit(
                            session,
                            &conv.block,
                            &fields,
                            filter_weights,
                        )?);
                    }
                }
                Ok(outputs)
            }
            PlanLayer::Dense(dense) => {
                let field = vec![values.to_vec()];
                (0..dense.units.len())
                    .map(|unit| self.eval_unit(session, &dense.block, &field, &weights[unit]))
                    .collect()
            }
        }
    }

    /// Generates (or serves from the session cache) the input streams of
    /// every pool-window field, in the block's published seed scheme. The
    /// returned buffers are arena-backed; recycle them after use.
    fn gather_input_streams(
        &self,
        session: &mut Session,
        block: &FeatureBlock,
        fields: &[Vec<f64>],
    ) -> Result<Vec<Vec<BitStream>>, ServeError> {
        let started = std::time::Instant::now();
        let length = self.plan.stream_length;
        let Session {
            arena, cache, sng, ..
        } = session;
        let mut inputs: Vec<Vec<BitStream>> = Vec::with_capacity(fields.len());
        for (field_index, field) in fields.iter().enumerate() {
            let (input_base, _) = block.operand_bank_seeds(field_index);
            let mut streams = Vec::with_capacity(field.len());
            for (lane, &value) in field.iter().enumerate() {
                let lane_seed = SngBank::lane_seed(input_base, lane);
                let probability = Bipolar::to_probability(value)?;
                let threshold = probability_threshold(probability)?;
                let stream =
                    cache.get_or_generate((lane_seed, threshold), length, arena, |arena| {
                        let mut fresh = arena.take_zeroed(length);
                        sng.fill_probability(lane_seed, probability, &mut fresh)?;
                        Ok::<_, ScError>(fresh)
                    })?;
                streams.push(stream);
            }
            inputs.push(streams);
        }
        session.cache_fill_ns += started.elapsed().as_nanos() as u64;
        Ok(inputs)
    }

    /// Evaluates one feature-extraction block: cached input streams plus
    /// pre-generated weight streams through the prepared (fused) pipeline.
    fn eval_unit(
        &self,
        session: &mut Session,
        block: &FeatureBlock,
        fields: &[Vec<f64>],
        weight_streams: &[Vec<BitStream>],
    ) -> Result<f64, ServeError> {
        let inputs = self.gather_input_streams(session, block, fields)?;
        let output = block.evaluate_prepared(&inputs, weight_streams);
        for field in inputs {
            session.arena.recycle_all(field);
        }
        Ok(output?.bipolar_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_blocks::feature_block::FeatureBlockKind;
    use sc_nn::lenet::PoolingStyle;

    fn small_network(seed: u64) -> Network {
        let mut network = Network::new("small");
        network.push(Box::new(sc_nn::layers::Conv2d::new(1, 2, 3, seed)));
        network.push(Box::new(sc_nn::layers::MaxPool2::new()));
        network.push(Box::new(sc_nn::layers::Tanh::new()));
        network.push(Box::new(sc_nn::layers::Dense::new(2 * 3 * 3, 4, seed + 1)));
        network
    }

    fn options() -> EngineOptions {
        EngineOptions {
            plan: PlanOptions {
                input_shape: [1, 8, 8],
                base_seed: 21,
            },
            ..EngineOptions::default()
        }
    }

    fn image(seed: u32) -> Tensor {
        Tensor::from_fn(&[1, 8, 8], |i| {
            (((i as u32).wrapping_mul(seed.wrapping_mul(2_654_435_761) | 1) >> 16) % 255) as f32
                / 255.0
        })
    }

    /// `sc_core::parallel::set_thread_limit` is process-global; tests that
    /// mutate it (or assert on stats that depend on it) serialize here so a
    /// concurrent test cannot flip the limit mid-assertion. Result-based
    /// tests don't need it — outputs are bit-identical at any limit.
    static THREAD_LIMIT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn engine_matches_interpreter_bit_for_bit() {
        let network = small_network(3);
        let config = ScNetworkConfig::new(
            "c",
            vec![FeatureBlockKind::ApcMaxBtanh; 2],
            128,
            PoolingStyle::Max,
        );
        let engine = Engine::compile(&network, &config, options()).unwrap();
        let mut session = engine.new_session();
        let images: Vec<Tensor> = (1..4).map(image).collect();
        engine.verify(&mut session, &images).unwrap();
        assert!(engine.cached_weight_streams() > 0);
        // The dense layer guarantees cache hits (shared inputs across units).
        assert!(session.cache_stats().hits > 0);
    }

    /// End-to-end kernel-backend bit-exactness: the scalar reference and
    /// the widest available backend (the portable super-word without the
    /// `simd` feature, AVX2/NEON with it) must serve bit-identical
    /// inferences through the full fused path — SNG comparator fills, fused
    /// XNOR/count and MUX-plan kernels, CSA compression, and the batch
    /// activation walks — for every feature-block family. `force_backend`
    /// is process-global, but all backends are bit-identical, so concurrent
    /// tests cannot observe a behaviour change.
    #[test]
    fn kernel_backends_serve_bit_identical_inferences() {
        let best = sc_core::word::best_available_backend();
        let images: Vec<Tensor> = (1..5).map(image).collect();
        let mut per_backend: Vec<Vec<Inference>> = Vec::new();
        for backend in [sc_core::Backend::Scalar, best] {
            assert!(sc_core::force_backend(backend));
            let mut outputs = Vec::new();
            // Both max-pooling families (the helper network pools with
            // MaxPool2): between them they drive every widened kernel —
            // MUX plans + Stanh, APC/CSA counts + Btanh, plus the shared
            // SNG fills and popcounts.
            for kind in [FeatureBlockKind::ApcMaxBtanh, FeatureBlockKind::MuxMaxStanh] {
                let network = small_network(3);
                let config = ScNetworkConfig::new("c", vec![kind; 2], 128, PoolingStyle::Max);
                let engine = Engine::compile(&network, &config, options()).unwrap();
                assert_eq!(engine.kernel_backend(), backend);
                let mut session = engine.new_session();
                for image in &images {
                    outputs.push(engine.infer(&mut session, image).unwrap());
                }
            }
            per_backend.push(outputs);
        }
        assert!(sc_core::force_backend(best));
        assert_eq!(
            per_backend[0], per_backend[1],
            "scalar and {best} backends disagree"
        );
    }

    #[test]
    fn verify_flag_checks_every_inference() {
        let network = small_network(5);
        let config = ScNetworkConfig::new(
            "c",
            vec![FeatureBlockKind::MuxMaxStanh; 2],
            100,
            PoolingStyle::Max,
        );
        let engine = Engine::compile(
            &network,
            &config,
            EngineOptions {
                verify_against_interpreter: true,
                ..options()
            },
        )
        .unwrap();
        let mut session = engine.new_session();
        let result = engine.infer(&mut session, &image(7)).unwrap();
        assert_eq!(result.logits.len(), 4);
    }

    #[test]
    fn batch_matches_sequential_inference() {
        let network = small_network(9);
        let config = ScNetworkConfig::new(
            "c",
            vec![FeatureBlockKind::ApcAvgBtanh; 2],
            64,
            PoolingStyle::Average,
        );
        // Average pooling network variant.
        let mut network_avg = Network::new("small-avg");
        network_avg.push(Box::new(sc_nn::layers::Conv2d::new(1, 2, 3, 1)));
        network_avg.push(Box::new(sc_nn::layers::AvgPool2::new()));
        network_avg.push(Box::new(sc_nn::layers::Dense::new(2 * 3 * 3, 4, 2)));
        let _ = network;
        let engine = Engine::compile(&network_avg, &config, options()).unwrap();
        let mut session = engine.new_session();
        let images: Vec<Tensor> = (1..5).map(image).collect();
        let batched = engine.infer_batch(&mut session, &images).unwrap();
        let sequential: Vec<_> = images
            .iter()
            .map(|img| engine.infer(&mut session, img).unwrap())
            .collect();
        assert_eq!(batched, sequential);
    }

    #[test]
    fn fused_engine_matches_per_unit_engine_bit_for_bit() {
        for (kind, pooling, length) in [
            (FeatureBlockKind::ApcMaxBtanh, PoolingStyle::Max, 127),
            (FeatureBlockKind::MuxMaxStanh, PoolingStyle::Max, 100),
        ] {
            let network = small_network(21);
            let config = ScNetworkConfig::new("c", vec![kind; 2], length, pooling);
            let fused = Engine::compile(&network, &config, options()).unwrap();
            let per_unit = Engine::compile(
                &network,
                &config,
                EngineOptions {
                    fuse_layers: false,
                    parallel_units: false,
                    ..options()
                },
            )
            .unwrap();
            let mut fused_session = fused.new_session();
            let mut per_unit_session = per_unit.new_session();
            for seed in 1..4 {
                let image = image(seed);
                assert_eq!(
                    fused.infer(&mut fused_session, &image).unwrap(),
                    per_unit.infer(&mut per_unit_session, &image).unwrap(),
                    "{kind} L={length} image {seed}"
                );
            }
        }
    }

    #[test]
    fn single_request_fan_out_is_schedule_independent() {
        let network = small_network(33);
        let config = ScNetworkConfig::new(
            "c",
            vec![FeatureBlockKind::ApcMaxBtanh; 2],
            100,
            PoolingStyle::Max,
        );
        let engine = Engine::compile(&network, &config, options()).unwrap();
        let image = image(11);
        let _guard = THREAD_LIMIT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        sc_core::parallel::set_thread_limit(1);
        let serial = engine.infer(&mut engine.new_session(), &image).unwrap();
        sc_core::parallel::set_thread_limit(4);
        let fanned = engine.infer(&mut engine.new_session(), &image).unwrap();
        sc_core::parallel::set_thread_limit(0);
        assert_eq!(serial, fanned);
    }

    #[test]
    fn repeated_frames_hit_the_cache_exactly() {
        // Quantized inputs → deterministic cache keys: replaying a frame
        // must be served entirely from the warm cache (zero new misses).
        let network = small_network(7);
        let config = ScNetworkConfig::new(
            "c",
            vec![FeatureBlockKind::ApcMaxBtanh; 2],
            128,
            PoolingStyle::Max,
        );
        let engine = Engine::compile(
            &network,
            &config,
            EngineOptions {
                parallel_units: false, // keep all traffic in one session
                ..options()
            },
        )
        .unwrap();
        let mut session = engine.new_session();
        let frame = image(5);
        engine.infer(&mut session, &frame).unwrap();
        let cold = session.cache_stats();
        engine.infer(&mut session, &frame).unwrap();
        let warm = session.cache_stats();
        assert_eq!(
            warm.misses, cold.misses,
            "a repeated frame must not generate any stream"
        );
        assert!(warm.hits > cold.hits);
    }

    #[test]
    fn steady_state_inference_allocates_no_stream_buffers() {
        // Once the session arena is warm, fused inference must serve every
        // stream and count buffer from the pool — the per-unit path's
        // zero-alloc property, restored for the fused path by threading the
        // session arena through `evaluate_layer_prepared_with`.
        for kind in [FeatureBlockKind::ApcMaxBtanh, FeatureBlockKind::MuxMaxStanh] {
            let network = small_network(13);
            let config = ScNetworkConfig::new("c", vec![kind; 2], 128, PoolingStyle::Max);
            let engine = Engine::compile(
                &network,
                &config,
                EngineOptions {
                    parallel_units: false, // keep all traffic in one arena
                    ..options()
                },
            )
            .unwrap();
            let mut session = engine.new_session();
            let frames: Vec<Tensor> = (1..4).map(image).collect();
            // Warm-up: populate the arena pool and the stream cache.
            for frame in &frames {
                engine.infer(&mut session, frame).unwrap();
            }
            let warm = session.arena_stats();
            for frame in &frames {
                engine.infer(&mut session, frame).unwrap();
            }
            let steady = session.arena_stats();
            assert_eq!(
                steady.total_allocs(),
                warm.total_allocs(),
                "{kind:?}: steady-state inference must not allocate buffers"
            );
            assert!(steady.stream_reuses > warm.stream_reuses);
        }
    }

    #[test]
    fn fanned_out_inference_keeps_the_arena_pool_bounded() {
        // With unit fan-out active, dense-layer chunk workers draw warm
        // arenas from the session pool and output buffers return to them:
        // steady state must neither allocate fresh buffers nor grow the
        // pools (buffers leaking from the chunk arenas into the session
        // arena would do both, one dense layer's worth per request).
        let network = small_network(17);
        let config = ScNetworkConfig::new(
            "c",
            vec![FeatureBlockKind::ApcMaxBtanh; 2],
            64,
            PoolingStyle::Max,
        );
        let engine = Engine::compile(&network, &config, options()).unwrap();
        let mut session = engine.new_session();
        let frame = image(3);
        let _guard = THREAD_LIMIT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        sc_core::parallel::set_thread_limit(4);
        for _ in 0..3 {
            engine.infer(&mut session, &frame).unwrap();
        }
        let warm = session.arena_stats();
        for _ in 0..3 {
            engine.infer(&mut session, &frame).unwrap();
        }
        let steady = session.arena_stats();
        sc_core::parallel::set_thread_limit(0);
        assert_eq!(
            steady.total_allocs(),
            warm.total_allocs(),
            "steady-state fan-out inference must not allocate buffers"
        );
        assert_eq!(
            steady.pooled_streams, warm.pooled_streams,
            "steady-state fan-out inference must not grow the buffer pools"
        );
    }

    #[test]
    fn tiny_cache_capacity_stays_correct() {
        let network = small_network(11);
        let config = ScNetworkConfig::new(
            "c",
            vec![FeatureBlockKind::ApcMaxBtanh; 2],
            64,
            PoolingStyle::Max,
        );
        let engine = Engine::compile(
            &network,
            &config,
            EngineOptions {
                cache_capacity: 8,
                ..options()
            },
        )
        .unwrap();
        let mut session = engine.new_session();
        let images: Vec<Tensor> = (1..3).map(image).collect();
        engine.verify(&mut session, &images).unwrap();
        assert!(session.cache_stats().flushes > 0);
    }
}
