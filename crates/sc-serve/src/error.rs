//! Error type of the serving crate.

use sc_core::ScError;
use std::fmt;

/// Errors produced while compiling or serving an SC network.
#[derive(Debug)]
pub enum ServeError {
    /// An underlying stochastic-computing primitive rejected its inputs.
    Sc(ScError),
    /// The network contains a structure the SC lowering does not support.
    Unsupported(String),
    /// A request or configuration was malformed.
    Invalid(String),
    /// An I/O failure in the serving runtime.
    Io(std::io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Sc(error) => write!(f, "stochastic-computing error: {error}"),
            ServeError::Unsupported(message) => write!(f, "unsupported network: {message}"),
            ServeError::Invalid(message) => write!(f, "invalid request: {message}"),
            ServeError::Io(error) => write!(f, "i/o error: {error}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Sc(error) => Some(error),
            ServeError::Io(error) => Some(error),
            _ => None,
        }
    }
}

impl From<ScError> for ServeError {
    fn from(error: ScError) -> Self {
        ServeError::Sc(error)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(error: std::io::Error) -> Self {
        ServeError::Io(error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let sc = ServeError::from(ScError::EmptyInput);
        assert!(sc.to_string().contains("stochastic"));
        assert!(std::error::Error::source(&sc).is_some());
        let io = ServeError::from(std::io::Error::other("x"));
        assert!(io.to_string().contains("i/o"));
        assert!(ServeError::Unsupported("layer".into())
            .to_string()
            .contains("unsupported"));
        assert!(ServeError::Invalid("bad".into())
            .to_string()
            .contains("invalid"));
    }
}
