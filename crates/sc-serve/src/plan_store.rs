//! A versioned, CRC-guarded on-disk format for compiled [`Plan`]s.
//!
//! A cold replica start without this module is a *recompile*: train (or
//! reload) the network, lower it, and regenerate every weight bit-stream.
//! The expensive part of that pipeline is entirely deterministic — weight
//! streams are a pure function of `(layer seed, weight value, stream
//! length)` — so the store keeps only the irreducible inputs:
//!
//! * the seed scheme (`base_seed`; per-layer seeds derive via
//!   [`crate::plan::layer_seed`]),
//! * the structural shapes (layer kinds, conv/dense geometry), and
//! * the clamped, quantized weights themselves.
//!
//! Bulk bit-streams are **not** stored: [`crate::engine::Engine::from_plan`]
//! regenerates them bit-identically on load, which is still several times
//! faster than the full train+lower+generate pipeline and keeps store files
//! small.
//!
//! ## File format (version 1)
//!
//! ```text
//! store   := magic body crc32(magic body):u32
//! magic   := "SCP1"
//! body    := base_seed:u64 stream_bits:u32 input_shape:u32[3]
//!            name_len:u16 name:bytes layer_count:u16 layer*
//! layer   := 0x01 kind:u8 conv | 0x02 kind:u8 dense
//! conv    := in_shape:u32[3] out_shape:u32[3] kernel:u32
//!            filters:u16 weights_per_filter:u32 weight:f64bits[...]
//! dense   := input_size:u32 units:u16 weights_per_unit:u32
//!            weight:f64bits[...]
//! ```
//!
//! All integers are little-endian; weights travel as IEEE-754 bit patterns.
//! The trailing CRC-32 (same vendored [`crate::crc32`] the wire protocol
//! uses) guards the whole file including the magic, so truncation and bit
//! flips both surface as typed [`ServeError::Invalid`] errors — never a
//! panic, never a garbage engine. Decoding validates every count against the
//! bytes actually present *before* allocating, mirroring the
//! [`crate::proto`] parser's discipline, and re-checks the structural
//! invariants the lowering guarantees (shape chaining, weight ranges) so a
//! logically-corrupt file that happens to checksum cleanly is still
//! rejected.

use crate::engine::EngineOptions;
use crate::error::ServeError;
use crate::plan::{layer_seed, ConvPlanLayer, DensePlanLayer, Plan, PlanLayer, PlanOptions};
use sc_blocks::feature_block::{FeatureBlock, FeatureBlockKind};
use sc_core::bitstream::StreamLength;
use std::path::Path;

/// Magic + version prefix of a store file ("SCP" + format version digit).
pub const MAGIC: [u8; 4] = *b"SCP1";

/// Layer tag for a lowered convolution group.
const TAG_CONV: u8 = 1;
/// Layer tag for a lowered fully-connected group.
const TAG_DENSE: u8 = 2;

/// Caps a store's structural counts so a corrupt-but-checksummed file (or a
/// hand-crafted hostile one) cannot demand absurd allocations.
const MAX_NAME_BYTES: usize = 1024;
const MAX_LAYERS: usize = 1024;
const MAX_ROWS: usize = 1 << 16;
const MAX_WEIGHTS_PER_ROW: usize = 1 << 20;

/// A plan deserialized from a store file, together with the seed scheme it
/// was compiled under.
#[derive(Debug, Clone)]
pub struct LoadedPlan {
    /// The reconstructed execution plan (blocks rebuilt from the stored
    /// seeds, bit-identical to the original lowering's).
    pub plan: Plan,
    /// The base seed the plan's per-layer block seeds derive from.
    pub base_seed: u64,
}

impl LoadedPlan {
    /// Engine options whose lowering fields match this plan — the natural
    /// companion for [`crate::engine::Engine::from_plan`], which records
    /// them for introspection (`engine.options().plan.base_seed`).
    pub fn engine_options(&self) -> EngineOptions {
        EngineOptions {
            plan: PlanOptions {
                input_shape: self.plan.input_shape,
                base_seed: self.base_seed,
            },
            ..EngineOptions::default()
        }
    }
}

/// Serializes a plan (plus the base seed it was lowered under) into the
/// store format, CRC trailer included.
pub fn encode_plan(plan: &Plan, base_seed: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&base_seed.to_le_bytes());
    out.extend_from_slice(&(plan.stream_length.bits() as u32).to_le_bytes());
    for dim in plan.input_shape {
        out.extend_from_slice(&(dim as u32).to_le_bytes());
    }
    let name = plan.config_name.as_bytes();
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(&(plan.layers.len() as u16).to_le_bytes());
    for layer in &plan.layers {
        match layer {
            PlanLayer::Conv(conv) => {
                out.push(TAG_CONV);
                out.push(kind_code(conv.block.kind()));
                for dim in conv.in_shape.iter().chain(conv.out_shape.iter()) {
                    out.extend_from_slice(&(*dim as u32).to_le_bytes());
                }
                out.extend_from_slice(&(conv.kernel as u32).to_le_bytes());
                push_rows(&mut out, &conv.filters);
            }
            PlanLayer::Dense(dense) => {
                out.push(TAG_DENSE);
                out.push(kind_code(dense.block.kind()));
                out.extend_from_slice(&(dense.input_size as u32).to_le_bytes());
                push_rows(&mut out, &dense.units);
            }
        }
    }
    let crc = crate::crc32::checksum(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Writes [`encode_plan`]'s bytes to `path` (via a same-directory temporary
/// file + rename, so a crash mid-write never leaves a torn store behind).
///
/// # Errors
///
/// Returns [`ServeError::Io`] on filesystem failures.
pub fn save_plan(path: &Path, plan: &Plan, base_seed: u64) -> Result<(), ServeError> {
    let bytes = encode_plan(plan, base_seed);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Parses a store file's bytes back into a plan.
///
/// # Errors
///
/// Returns [`ServeError::Invalid`] for anything structurally wrong — bad
/// magic, unsupported version, CRC mismatch, truncation, counts that don't
/// match the bytes present, out-of-range weights, or layer shapes that don't
/// chain — and [`ServeError::Sc`] for an unusable stream length.
pub fn decode_plan(bytes: &[u8]) -> Result<LoadedPlan, ServeError> {
    if bytes.len() < MAGIC.len() + 4 {
        return Err(invalid("file too short to be a plan store"));
    }
    if bytes[..3] != MAGIC[..3] {
        return Err(invalid("bad magic (not a plan store file)"));
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(invalid("unsupported plan store version"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().expect("4-byte CRC trailer"));
    let computed = crate::crc32::checksum(body);
    if stored != computed {
        return Err(invalid(&format!(
            "checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
        )));
    }
    let mut reader = Reader {
        bytes: &body[MAGIC.len()..],
    };
    let base_seed = reader.u64()?;
    let stream_bits = reader.u32()? as usize;
    let stream_length = StreamLength::try_new(stream_bits).map_err(ServeError::from)?;
    let input_shape = reader.shape3()?;
    let name_len = reader.u16()? as usize;
    if name_len > MAX_NAME_BYTES {
        return Err(invalid("configuration name too long"));
    }
    let name = reader.bytes(name_len)?;
    let config_name =
        String::from_utf8(name.to_vec()).map_err(|_| invalid("configuration name is not UTF-8"))?;
    let layer_count = reader.u16()? as usize;
    if layer_count == 0 || layer_count > MAX_LAYERS {
        return Err(invalid("layer count out of range"));
    }
    let mut layers = Vec::with_capacity(layer_count);
    // Element count flowing out of the previous layer; the store must chain
    // exactly the way `lower` built it.
    let mut flow: usize = input_shape.iter().product();
    for index in 0..layer_count {
        let tag = reader.u8()?;
        let kind = decode_kind(reader.u8()?)?;
        let seed = layer_seed(base_seed, index);
        let layer = match tag {
            TAG_CONV => {
                let conv = decode_conv(&mut reader, kind, stream_length, seed, index, flow)?;
                flow = conv.out_shape.iter().product();
                PlanLayer::Conv(conv)
            }
            TAG_DENSE => {
                let dense = decode_dense(&mut reader, kind, stream_length, seed, index, flow)?;
                flow = dense.units.len();
                PlanLayer::Dense(dense)
            }
            other => return Err(invalid(&format!("unknown layer tag {other}"))),
        };
        layers.push(layer);
    }
    if reader.remaining() != 0 {
        return Err(invalid("trailing bytes after the last layer"));
    }
    Ok(LoadedPlan {
        plan: Plan {
            layers,
            stream_length,
            input_shape,
            config_name,
        },
        base_seed,
    })
}

/// Reads and parses a store file.
///
/// # Errors
///
/// Returns [`ServeError::Io`] on read failures plus everything
/// [`decode_plan`] rejects.
pub fn load_plan(path: &Path) -> Result<LoadedPlan, ServeError> {
    let bytes = std::fs::read(path)?;
    decode_plan(&bytes)
}

fn invalid(message: &str) -> ServeError {
    ServeError::Invalid(format!("plan store: {message}"))
}

/// Stable on-disk code of a block kind (its index in
/// [`FeatureBlockKind::ALL`], the paper's order).
fn kind_code(kind: FeatureBlockKind) -> u8 {
    FeatureBlockKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("every kind is in ALL") as u8
}

fn decode_kind(code: u8) -> Result<FeatureBlockKind, ServeError> {
    FeatureBlockKind::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| invalid(&format!("unknown feature-block kind code {code}")))
}

/// Appends a rectangular `rows × weights_per_row` weight table.
fn push_rows(out: &mut Vec<u8>, rows: &[Vec<f64>]) {
    out.extend_from_slice(&(rows.len() as u16).to_le_bytes());
    let per_row = rows.first().map_or(0, Vec::len);
    out.extend_from_slice(&(per_row as u32).to_le_bytes());
    for row in rows {
        debug_assert_eq!(row.len(), per_row, "weight tables are rectangular");
        for &weight in row {
            out.extend_from_slice(&weight.to_bits().to_le_bytes());
        }
    }
}

/// Reads a weight table back, validating counts against the bytes present
/// *before* allocating and every weight against the bipolar range.
fn read_rows(reader: &mut Reader<'_>, layer: usize) -> Result<Vec<Vec<f64>>, ServeError> {
    let rows = reader.u16()? as usize;
    let per_row = reader.u32()? as usize;
    if rows == 0 || rows > MAX_ROWS {
        return Err(invalid(&format!("layer {layer}: row count out of range")));
    }
    if per_row == 0 || per_row > MAX_WEIGHTS_PER_ROW {
        return Err(invalid(&format!(
            "layer {layer}: weights-per-row out of range"
        )));
    }
    let needed = rows
        .checked_mul(per_row)
        .and_then(|w| w.checked_mul(8))
        .ok_or_else(|| invalid(&format!("layer {layer}: weight table size overflows")))?;
    if needed > reader.remaining() {
        return Err(invalid(&format!(
            "layer {layer}: weight table larger than the bytes remaining"
        )));
    }
    (0..rows)
        .map(|_| {
            (0..per_row)
                .map(|_| {
                    let weight = f64::from_bits(reader.u64()?);
                    if !weight.is_finite() || !(-1.0..=1.0).contains(&weight) {
                        return Err(invalid(&format!(
                            "layer {layer}: weight {weight} outside the bipolar range"
                        )));
                    }
                    Ok(weight)
                })
                .collect()
        })
        .collect()
}

fn decode_conv(
    reader: &mut Reader<'_>,
    kind: FeatureBlockKind,
    stream_length: StreamLength,
    seed: u64,
    layer: usize,
    flow: usize,
) -> Result<ConvPlanLayer, ServeError> {
    let in_shape = reader.shape3()?;
    let out_shape = reader.shape3()?;
    let kernel = reader.u32()? as usize;
    let [channels, height, width] = in_shape;
    if channels * height * width != flow {
        return Err(invalid(&format!(
            "layer {layer}: input shape {in_shape:?} does not chain from the previous layer"
        )));
    }
    if kernel == 0 || height < kernel || width < kernel {
        return Err(invalid(&format!(
            "layer {layer}: kernel {kernel} does not fit a {height}x{width} input"
        )));
    }
    // The lowering only emits 2x2-poolable geometries; re-derive and compare.
    let (pre_h, pre_w) = (height - kernel + 1, width - kernel + 1);
    if pre_h % 2 != 0 || pre_w % 2 != 0 || out_shape[1] != pre_h / 2 || out_shape[2] != pre_w / 2 {
        return Err(invalid(&format!(
            "layer {layer}: output shape {out_shape:?} inconsistent with input {in_shape:?} \
             and kernel {kernel}"
        )));
    }
    let filters = read_rows(reader, layer)?;
    if filters.len() != out_shape[0] {
        return Err(invalid(&format!(
            "layer {layer}: {} filters but output shape claims {}",
            filters.len(),
            out_shape[0]
        )));
    }
    if filters[0].len() != channels * kernel * kernel {
        return Err(invalid(&format!(
            "layer {layer}: filter length {} does not match {channels} channels x {kernel}^2",
            filters[0].len()
        )));
    }
    let block =
        FeatureBlock::with_pool_window(kind, channels * kernel * kernel, 4, stream_length, seed)?;
    Ok(ConvPlanLayer {
        block,
        in_shape,
        out_shape,
        kernel,
        filters,
    })
}

fn decode_dense(
    reader: &mut Reader<'_>,
    kind: FeatureBlockKind,
    stream_length: StreamLength,
    seed: u64,
    layer: usize,
    flow: usize,
) -> Result<DensePlanLayer, ServeError> {
    let input_size = reader.u32()? as usize;
    if input_size != flow {
        return Err(invalid(&format!(
            "layer {layer}: dense input size {input_size} does not chain from the previous layer"
        )));
    }
    let units = read_rows(reader, layer)?;
    if units[0].len() != input_size {
        return Err(invalid(&format!(
            "layer {layer}: unit length {} does not match input size {input_size}",
            units[0].len()
        )));
    }
    let block = FeatureBlock::with_pool_window(kind, input_size, 1, stream_length, seed)?;
    Ok(DensePlanLayer {
        block,
        input_size,
        units,
    })
}

/// Bounds-checked little-endian reader over the store body (the local twin
/// of the wire parser's cursor: every primitive read is a typed error on
/// truncation, never a slice panic).
struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len()
    }

    fn bytes(&mut self, count: usize) -> Result<&'a [u8], ServeError> {
        if self.bytes.len() < count {
            return Err(invalid("truncated (field extends past the end)"));
        }
        let (taken, rest) = self.bytes.split_at(count);
        self.bytes = rest;
        Ok(taken)
    }

    fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ServeError> {
        Ok(u16::from_le_bytes(
            self.bytes(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn shape3(&mut self) -> Result<[usize; 3], ServeError> {
        let mut shape = [0usize; 3];
        for dim in &mut shape {
            let value = self.u32()? as usize;
            if value == 0 || value > u32::MAX as usize {
                return Err(invalid("zero shape dimension"));
            }
            *dim = value;
        }
        Ok(shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use sc_dcnn::config::ScNetworkConfig;
    use sc_nn::lenet::PoolingStyle;
    use sc_nn::network::Network;
    use sc_nn::tensor::Tensor;

    /// A conv+pool(+tanh)+dense network matching `kind`'s pooling style.
    fn network_for(kind: FeatureBlockKind, seed: u64) -> Network {
        let mut network = Network::new("store-test");
        network.push(Box::new(sc_nn::layers::Conv2d::new(1, 2, 3, seed)));
        if kind.uses_max_pooling() {
            network.push(Box::new(sc_nn::layers::MaxPool2::new()));
        } else {
            network.push(Box::new(sc_nn::layers::AvgPool2::new()));
        }
        network.push(Box::new(sc_nn::layers::Tanh::new()));
        network.push(Box::new(sc_nn::layers::Dense::new(2 * 3 * 3, 4, seed + 1)));
        network
    }

    fn compile(kind: FeatureBlockKind, seed: u64) -> Engine {
        let pooling = if kind.uses_max_pooling() {
            PoolingStyle::Max
        } else {
            PoolingStyle::Average
        };
        let config = ScNetworkConfig::new("store", vec![kind; 2], 64, pooling);
        let options = EngineOptions {
            plan: PlanOptions {
                input_shape: [1, 8, 8],
                base_seed: 29,
            },
            ..EngineOptions::default()
        };
        Engine::compile(&network_for(kind, seed), &config, options).unwrap()
    }

    fn image(seed: u32) -> Tensor {
        Tensor::from_fn(&[1, 8, 8], |i| {
            (((i as u32).wrapping_mul(seed.wrapping_mul(2_654_435_761) | 1) >> 16) % 255) as f32
                / 255.0
        })
    }

    #[test]
    fn round_trip_serves_bit_exactly_for_every_block_kind() {
        for kind in FeatureBlockKind::ALL {
            let fresh = compile(kind, 5);
            let bytes = encode_plan(fresh.plan(), fresh.options().plan.base_seed);
            let loaded = decode_plan(&bytes).unwrap();
            assert_eq!(loaded.base_seed, 29);
            assert_eq!(loaded.plan.config_name, fresh.plan().config_name);
            let cold = Engine::from_plan(loaded.plan.clone(), loaded.engine_options()).unwrap();
            let mut fresh_session = fresh.new_session();
            let mut cold_session = cold.new_session();
            for seed in 1..4 {
                let image = image(seed);
                assert_eq!(
                    fresh.infer(&mut fresh_session, &image).unwrap(),
                    cold.infer(&mut cold_session, &image).unwrap(),
                    "{kind} image {seed}: deserialized plan must serve bit-exactly"
                );
            }
        }
    }

    #[test]
    fn file_round_trip_through_save_and_load() {
        let engine = compile(FeatureBlockKind::ApcMaxBtanh, 9);
        let dir = std::env::temp_dir().join(format!("sc-plan-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.scp");
        save_plan(&path, engine.plan(), 29).unwrap();
        let loaded = load_plan(&path).unwrap();
        assert_eq!(loaded.base_seed, 29);
        assert_eq!(loaded.plan.layers.len(), engine.plan().layers.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_at_every_byte_is_a_clean_typed_error() {
        let engine = compile(FeatureBlockKind::MuxMaxStanh, 7);
        let bytes = encode_plan(engine.plan(), 29);
        for len in 0..bytes.len() {
            match decode_plan(&bytes[..len]) {
                Err(ServeError::Invalid(_)) | Err(ServeError::Sc(_)) => {}
                other => panic!("truncation to {len} bytes must be typed, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let engine = compile(FeatureBlockKind::ApcAvgBtanh, 3);
        let bytes = encode_plan(engine.plan(), 29);
        for offset in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[offset] ^= 1 << bit;
                match decode_plan(&corrupt) {
                    Err(ServeError::Invalid(_)) | Err(ServeError::Sc(_)) => {}
                    other => panic!("flip at byte {offset} bit {bit} must be typed, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn logically_corrupt_but_checksummed_files_are_rejected() {
        let engine = compile(FeatureBlockKind::ApcMaxBtanh, 11);
        // Re-checksum a body whose layer count was inflated: the CRC passes,
        // the structural validation must still refuse it.
        let bytes = encode_plan(engine.plan(), 29);
        let mut body = bytes[..bytes.len() - 4].to_vec();
        // layer_count lives right after magic + seed + bits + shape + name.
        let name_len = engine.plan().config_name.len();
        let layer_count_at = 4 + 8 + 4 + 12 + 2 + name_len;
        body[layer_count_at] = 0xFF;
        let crc = crate::crc32::checksum(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(decode_plan(&body), Err(ServeError::Invalid(_))));
    }

    #[test]
    fn wrong_magic_and_version_are_distinct_errors() {
        let engine = compile(FeatureBlockKind::ApcMaxBtanh, 13);
        let mut bytes = encode_plan(engine.plan(), 29);
        bytes[0] = b'X';
        let magic = decode_plan(&bytes).unwrap_err().to_string();
        assert!(magic.contains("magic"), "{magic}");
        let mut versioned = encode_plan(engine.plan(), 29);
        versioned[3] = b'9';
        // Keep the CRC honest so the version check is what fires.
        let end = versioned.len() - 4;
        let crc = crate::crc32::checksum(&versioned[..end]);
        versioned[end..].copy_from_slice(&crc.to_le_bytes());
        let version = decode_plan(&versioned).unwrap_err().to_string();
        assert!(version.contains("version"), "{version}");
    }
}
